//! Quickstart: evaluate a layer, search a mapping, search an accelerator.
//!
//! ```text
//! cargo run -p naas-examples --release --bin quickstart
//! ```
//!
//! Walks the three layers of the NAAS stack bottom-up:
//! 1. cost-model evaluation of one convolution on Eyeriss;
//! 2. per-layer mapping search (the inner loop);
//! 3. a small accelerator search within the Eyeriss resource envelope
//!    (the outer loop), warm-started from Eyeriss itself.

use naas::prelude::*;
use naas::{search_layer_mapping, MappingSearchConfig};

fn main() {
    // --- 1. One layer, one design, one mapping ------------------------
    let model = CostModel::new();
    let eyeriss = baselines::eyeriss();
    let layer =
        ConvSpec::conv2d("demo", 64, 128, (56, 56), (3, 3), 1, 1).expect("static shapes are valid");

    let heuristic = Mapping::balanced(&layer, &eyeriss);
    let cost = model
        .evaluate(&layer, &eyeriss, &heuristic)
        .expect("heuristic mapping fits Eyeriss");
    println!("== one layer on Eyeriss (heuristic mapping) ==");
    println!("  {layer}");
    println!(
        "  cycles {:>12}   energy {:>10.1} nJ   EDP {:.3e}   util {:.1}%",
        cost.cycles,
        cost.energy_pj / 1000.0,
        cost.edp(),
        cost.utilization * 100.0
    );

    // --- 2. Inner loop: mapping search --------------------------------
    let map_cfg = MappingSearchConfig {
        population: 16,
        iterations: 6,
        seed: 7,
        ..MappingSearchConfig::default()
    };
    let searched =
        search_layer_mapping(&model, &layer, &eyeriss, &map_cfg).expect("a valid mapping exists");
    println!("\n== mapping search on the same layer ==");
    println!("  heuristic EDP {:.3e}", cost.edp());
    println!(
        "  searched  EDP {:.3e}  ({:.2}x better, {} evaluations)",
        searched.cost.edp(),
        cost.edp() / searched.cost.edp(),
        searched.evaluations
    );
    println!("  best mapping:\n{}", indent(&searched.mapping.to_string()));

    // --- 3. Outer loop: accelerator search ----------------------------
    let envelope = ResourceConstraint::from_design(&eyeriss);
    let net = models::mobilenet_v2(224);
    let cfg = AccelSearchConfig {
        population: 10,
        iterations: 6,
        mapping: map_cfg,
        seed: 7,
        ..AccelSearchConfig::paper(7)
    };
    let result = search_accelerator_seeded(
        &model,
        std::slice::from_ref(&net),
        &envelope,
        &cfg,
        std::slice::from_ref(&eyeriss),
    );
    println!("\n== accelerator search: MobileNetV2 within {envelope} ==");
    println!("{}", result.best.accelerator.design_card());
    println!(
        "  geomean EDP {:.3e} after {} candidate evaluations",
        result.best.reward, result.evaluations
    );
}

fn indent(s: &str) -> String {
    s.lines()
        .map(|l| format!("    {l}"))
        .collect::<Vec<_>>()
        .join("\n")
}
