//! Mapping explorer: dissect how loop order and tiling move latency,
//! energy and buffer traffic for one layer on one design — the paper's
//! §II-B intuition, numerically.
//!
//! ```text
//! cargo run -p naas-examples --release --bin mapping_explorer
//! ```
//!
//! Shows (a) the same layer under three hand-built mappings with
//! different loop orders, (b) the searched mapping, and (c) the
//! MAESTRO-format rendering of the winner.

use naas::prelude::*;
use naas::{search_layer_mapping, MappingSearchConfig};
use naas_cost::Tensor;
use naas_ir::{DimVec, DIMS};
use naas_mapping::{maestro, LevelSpec};

fn main() {
    let model = CostModel::new();
    let accel = baselines::nvdla_256();
    let layer = ConvSpec::conv2d("conv3_1", 128, 256, (28, 28), (3, 3), 1, 1)
        .expect("static shapes are valid");
    println!("layer : {layer}");
    println!("design: {accel}\n");

    // Three mappings sharing the same tiling, differing only in the
    // level-0 loop order: weights-stationary, output-stationary and a
    // deliberately bad order (weights refetched by an outer spatial loop).
    // Tiled so the per-PE slice fits NVDLA's 64 B private buffer.
    let mut trips = DimVec::splat(1u64);
    trips[Dim::K] = 16;
    trips[Dim::C] = 8;
    trips[Dim::Y] = 28;
    trips[Dim::X] = 14;

    let orders: [(&str, [Dim; 6]); 3] = [
        (
            "weights-stationary (K,C outer)",
            [Dim::K, Dim::C, Dim::Y, Dim::X, Dim::R, Dim::S],
        ),
        (
            "output-stationary (Y,X outer)",
            [Dim::Y, Dim::X, Dim::K, Dim::C, Dim::R, Dim::S],
        ),
        (
            "psum-thrashing (C innermost)",
            [Dim::Y, Dim::X, Dim::R, Dim::S, Dim::K, Dim::C],
        ),
    ];

    println!(
        "{:<34} {:>12} {:>12} {:>12} {:>12}",
        "mapping", "cycles", "energy nJ", "DRAM MB", "EDP"
    );
    for (name, order) in orders {
        let mapping = Mapping::new(vec![LevelSpec { order, trips }, LevelSpec::unit()], DIMS);
        match model.evaluate(&layer, &accel, &mapping) {
            Ok(cost) => println!(
                "{:<34} {:>12} {:>12.1} {:>12.2} {:>12.3e}",
                name,
                cost.cycles,
                cost.energy_pj / 1000.0,
                cost.traffic.dram_total() / 1e6,
                cost.edp()
            ),
            Err(e) => println!("{name:<34} invalid: {e}"),
        }
    }

    // Searched mapping.
    let cfg = MappingSearchConfig {
        population: 24,
        iterations: 10,
        seed: 3,
        ..MappingSearchConfig::default()
    };
    let best = search_layer_mapping(&model, &layer, &accel, &cfg).expect("layer is mappable");
    println!(
        "{:<34} {:>12} {:>12.1} {:>12.2} {:>12.3e}",
        "searched (evolution)",
        best.cost.cycles,
        best.cost.energy_pj / 1000.0,
        best.cost.traffic.dram_total() / 1e6,
        best.cost.edp()
    );

    println!("\nper-tensor traffic of the searched mapping (bytes):");
    for t in [Tensor::Weights, Tensor::Inputs, Tensor::Outputs] {
        let tr = best.cost.traffic.tensor(t);
        println!(
            "  {:<8}  DRAM {:>12.3e}   L2 {:>12.3e}   NoC {:>12.3e}   L1 {:>12.3e}",
            t.to_string(),
            tr.dram_bytes,
            tr.l2_bytes,
            tr.noc_bytes,
            tr.l1_bytes
        );
    }

    println!("\nMAESTRO-format description of the searched mapping:\n");
    println!(
        "{}",
        maestro::render(&layer, accel.connectivity(), &best.mapping)
    );
}
