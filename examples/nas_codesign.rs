//! Joint neural-accelerator-compiler co-search (the paper's §II-C /
//! Fig. 10 workflow): find a matched (subnet, accelerator, mapping)
//! tuple with guaranteed accuracy and minimal EDP.
//!
//! ```text
//! cargo run -p naas-examples --release --bin nas_codesign [-- <accuracy_floor>]
//! ```

use naas::baselines::baseline_network_cost;
use naas::prelude::*;
use naas::{search_joint, JointConfig, MappingSearchConfig};
use naas_nas::{AccuracyModel, NasConfig, Subnet};

fn main() {
    let floor: f64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("accuracy floor must be a number"))
        .unwrap_or(77.0);

    let model = CostModel::new();
    let accuracy_model = AccuracyModel::default();
    let eyeriss = baselines::eyeriss();
    let envelope = ResourceConstraint::from_design(&eyeriss);

    // Reference point: ResNet-50 on Eyeriss.
    let base_subnet = Subnet::resnet50_baseline();
    let base_net = base_subnet.to_network();
    let map_cfg = MappingSearchConfig {
        population: 12,
        iterations: 4,
        seed: 11,
        ..MappingSearchConfig::default()
    };
    let base_cost = baseline_network_cost(&model, &base_net, &eyeriss, &map_cfg)
        .expect("Eyeriss runs ResNet-50");
    println!(
        "reference: ResNet-50 on Eyeriss — {:.1}% top-1 (surrogate), EDP {:.3e}",
        accuracy_model.predict(&base_subnet),
        base_cost.edp()
    );
    println!("accuracy floor for the co-search: {floor:.1}%\n");

    let cfg = JointConfig {
        accel: AccelSearchConfig {
            population: 8,
            iterations: 5,
            mapping: map_cfg,
            seed: 11,
            ..AccelSearchConfig::paper(11)
        },
        nas: NasConfig {
            population: 10,
            generations: 4,
            accuracy_floor: floor,
            seed: 11,
            ..NasConfig::default()
        },
    };
    match search_joint(&model, &envelope, &accuracy_model, &cfg) {
        Some(result) => {
            println!(
                "matched tuple found after {} subnet evaluations:",
                result.evaluations
            );
            println!("{}", result.accelerator.design_card());
            let s = result.subnet;
            println!(
                "  Subnet     : width x{:.2}, depths {:?}, ratios {:?}, {}px",
                s.width(),
                s.depths,
                s.ratios(),
                s.resolution
            );
            println!(
                "  Accuracy   : {:.1}% ({:+.1} vs ResNet-50)",
                result.accuracy,
                result.accuracy - accuracy_model.predict(&base_subnet)
            );
            println!(
                "  EDP        : {:.3e} ({:.2}x reduction vs Eyeriss+ResNet-50)",
                result.edp,
                base_cost.edp() / result.edp
            );
        }
        None => {
            println!("no subnet meets the {floor:.1}% floor inside this budget — try a lower floor")
        }
    }
}
