//! Edge co-design scenario: specialize an accelerator for a suite of
//! mobile CNNs under a tight resource envelope — the paper's Fig. 5
//! workflow on the mobile benchmark set.
//!
//! ```text
//! cargo run -p naas-examples --release --bin edge_codesign [-- <max_pes> <onchip_kb>]
//! ```
//!
//! Compares three designs for {MobileNetV2, SqueezeNet, MNasNet}:
//! the Eyeriss baseline, the NAAS-searched design inside Eyeriss's
//! envelope, and (optionally) a custom envelope from the command line.

use naas::baselines::baseline_network_cost;
use naas::prelude::*;
use naas::{geomean, search_accelerator_seeded};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let model = CostModel::new();
    let nets = models::mobile_benchmarks();
    let eyeriss = baselines::eyeriss();

    let envelope = match args.as_slice() {
        [pes, kb, ..] => {
            let pes: u64 = pes.parse().expect("max_pes must be an integer");
            let kb: u64 = kb.parse().expect("onchip_kb must be an integer");
            ResourceConstraint::new("custom", pes, kb * 1024, 16.0, 4.0)
        }
        _ => ResourceConstraint::from_design(&eyeriss),
    };
    println!("envelope: {envelope}\n");

    let cfg = AccelSearchConfig {
        population: 12,
        iterations: 8,
        seed: 42,
        ..AccelSearchConfig::paper(42)
    };
    let result = search_accelerator_seeded(
        &model,
        &nets,
        &envelope,
        &cfg,
        std::slice::from_ref(&eyeriss),
    );
    println!(
        "searched design:\n{}\n",
        result.best.accelerator.design_card()
    );

    println!(
        "{:<18} {:>14} {:>14} {:>10}",
        "network", "Eyeriss EDP", "NAAS EDP", "reduction"
    );
    let mut reductions = Vec::new();
    for (net, naas_cost) in nets.iter().zip(&result.best.per_network) {
        let base = baseline_network_cost(&model, net, &eyeriss, &cfg.mapping)
            .expect("Eyeriss runs the mobile set");
        let reduction = base.edp() / naas_cost.edp();
        reductions.push(reduction);
        println!(
            "{:<18} {:>14.3e} {:>14.3e} {:>9.2}x",
            net.name(),
            base.edp(),
            naas_cost.edp(),
            reduction
        );
    }
    println!(
        "\ngeomean EDP reduction vs Eyeriss: {:.2}x",
        geomean(&reductions)
    );
}
