//! In-repo stand-in for the `rand` crate (offline build).
//!
//! Provides exactly the surface this workspace uses:
//!
//! * [`rngs::SmallRng`] — xoshiro256++ with SplitMix64 seed expansion,
//!   matching the real `SmallRng`'s algorithm family on 64-bit targets.
//!   Deterministic, portable, `Clone`, and serde-serializable so search
//!   checkpoints can freeze and restore generator state bit-exactly.
//! * [`SeedableRng::seed_from_u64`].
//! * [`RngExt::random_range`] over integer and float ranges (the rand-0.9
//!   spelling of `gen_range`).
//!
//! Statistical quality matches xoshiro256++ (passes BigCrush); modulo
//! reduction for integer ranges introduces bias below 2⁻³² for every
//! range in this repository, which is irrelevant for search sampling.

use serde::{Deserialize, Serialize};

/// Low-level generator interface: a source of 64 random bits.
pub trait RngCore {
    /// Produces the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface; only the convenience `u64` entry point is needed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling extension; blanket-implemented for every [`RngCore`].
pub trait RngExt: RngCore {
    /// Samples uniformly from a range (`lo..hi` or `lo..=hi`).
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

impl<T: RngCore + ?Sized> RngExt for T {}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as u128 - lo as u128) + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span as u64) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + (rng.next_u64() % span as u64) as i128) as $t
            }
        }
    )*};
}
impl_signed_range!(i8, i16, i32, i64, isize);

/// 53-bit uniform in `[0, 1)`.
fn unit_open(rng: &mut (impl RngCore + ?Sized)) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// 53-bit uniform in `[0, 1]`.
fn unit_closed(rng: &mut (impl RngCore + ?Sized)) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64)
}

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let (lo, hi) = (self.start as f64, self.end as f64);
                let v = lo + unit_open(rng) * (hi - lo);
                // Guard against round-up to the excluded endpoint.
                if v >= hi { lo as $t } else { v as $t }
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start() as f64, *self.end() as f64);
                assert!(lo <= hi, "empty range");
                (lo + unit_closed(rng) * (hi - lo)) as $t
            }
        }
    )*};
}
impl_float_range!(f32, f64);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::*;

    /// xoshiro256++ — the small, fast, high-quality generator family the
    /// real `SmallRng` uses on 64-bit platforms.
    #[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
    pub struct SmallRng {
        state: [u64; 4],
    }

    impl SmallRng {
        /// The raw 256-bit state (exposed for diagnostics).
        pub fn state(&self) -> [u64; 4] {
            self.state
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical way to seed xoshiro.
            let mut s = seed;
            let mut next = || {
                s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = s;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            SmallRng {
                state: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.state;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let (xa, xb, xc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.random_range(3u64..17);
            assert!((3..17).contains(&x));
            let y = rng.random_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&y));
            let z = rng.random_range(0.0f64..=1.0);
            assert!((0.0..=1.0).contains(&z));
            let w = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn closed_unit_range_reaches_both_ends_region() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..20_000 {
            let v = rng.random_range(0.0f64..=1.0);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        assert!(lo < 0.001 && hi > 0.999);
    }

    #[test]
    fn state_roundtrips_through_serde() {
        let mut rng = SmallRng::seed_from_u64(42);
        rng.next_u64();
        let v = serde::Serialize::serialize(&rng);
        let mut back: SmallRng = serde::Deserialize::deserialize(&v).unwrap();
        assert_eq!(back, rng);
        assert_eq!(back.next_u64(), rng.next_u64());
    }

    #[test]
    fn works_through_unsized_refs() {
        fn sample(rng: &mut (impl RngExt + ?Sized)) -> f64 {
            rng.random_range(f64::MIN_POSITIVE..1.0)
        }
        let mut rng = SmallRng::seed_from_u64(3);
        let v = sample(&mut rng);
        assert!(v > 0.0 && v < 1.0);
    }
}
