//! In-repo stand-in for [serde](https://serde.rs) (offline build).
//!
//! The real serde abstracts over data formats with `Serializer` /
//! `Deserializer` visitors; this workspace only ever round-trips through
//! JSON, so the shim collapses the whole pipeline to one self-describing
//! [`Value`] tree:
//!
//! * [`Serialize`] — convert `&self` into a [`Value`];
//! * [`Deserialize`] — reconstruct `Self` from a [`Value`];
//! * `#[derive(Serialize, Deserialize)]` — provided by the sibling
//!   `serde_derive` proc-macro crate and re-exported here, covering named
//!   structs, tuple structs (including generics) and fieldless enums —
//!   the only shapes this repository uses.
//!
//! The `serde_json` shim layers JSON text encoding/decoding on top.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A JSON-shaped document tree: the single interchange format of the shim.
///
/// Unsigned and signed integers are kept apart from floats so `u64`
/// round-trips bit-exactly (checkpoint files must restore RNG state and
/// cycle counts losslessly).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON `true` / `false`.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object; insertion order is preserved for readable output.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks a key up in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric payload widened to `f64` (accepts any number variant).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::U64(n) => Some(n as f64),
            Value::I64(n) => Some(n as f64),
            Value::F64(n) => Some(n),
            _ => None,
        }
    }

    /// Unsigned payload, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(n) => Some(n),
            Value::I64(n) => u64::try_from(n).ok(),
            Value::F64(n) if n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64 => Some(n as u64),
            _ => None,
        }
    }

    /// Signed payload, if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::U64(n) => i64::try_from(n).ok(),
            Value::I64(n) => Some(n),
            Value::F64(n)
                if n.fract() == 0.0 && (i64::MIN as f64..=i64::MAX as f64).contains(&n) =>
            {
                Some(n as i64)
            }
            _ => None,
        }
    }

    /// Boolean payload.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Array payload.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// A short label for error messages.
    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization/deserialization error: a plain message, like
/// `serde_json::Error` in spirit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Builds an error from anything displayable.
    pub fn msg(m: impl fmt::Display) -> Self {
        Error(m.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types convertible into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a document tree.
    fn serialize(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a document tree.
    fn deserialize(v: &Value) -> Result<Self, Error>;
}

fn type_error<T>(expected: &str, got: &Value) -> Result<T, Error> {
    Err(Error(format!("expected {expected}, found {}", got.kind())))
}

// --- primitive impls ---------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64().ok_or_else(|| Error(format!(
                    "expected unsigned integer, found {}", v.kind()
                )))?;
                <$t>::try_from(n).map_err(|_| Error(format!(
                    "integer {n} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64().ok_or_else(|| Error(format!(
                    "expected integer, found {}", v.kind()
                )))?;
                <$t>::try_from(n).map_err(|_| Error(format!(
                    "integer {n} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let x = *self as f64;
                if x.is_finite() {
                    Value::F64(x)
                } else if x.is_nan() {
                    Value::Str("NaN".to_string())
                } else if x > 0.0 {
                    Value::Str("inf".to_string())
                } else {
                    Value::Str("-inf".to_string())
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Str(s) => match s.as_str() {
                        "NaN" => Ok(<$t>::NAN),
                        "inf" => Ok(<$t>::INFINITY),
                        "-inf" => Ok(<$t>::NEG_INFINITY),
                        _ => Err(Error(format!("expected number, found string {s:?}"))),
                    },
                    _ => v
                        .as_f64()
                        .map(|x| x as $t)
                        .ok_or_else(|| Error(format!("expected number, found {}", v.kind()))),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_bool()
            .ok_or_else(|| Error(format!("expected bool, found {}", v.kind())))
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => type_error("string", v),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let s = v
            .as_str()
            .ok_or_else(|| Error("expected single-char string".into()))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error(format!("expected single-char string, found {s:?}"))),
        }
    }
}

// --- container impls ---------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        T::deserialize(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(x) => x.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            _ => type_error("array", v),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::deserialize(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| Error(format!("expected array of length {N}, found {len}")))
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident : $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let items = v.as_array().ok_or_else(|| Error(format!(
                    "expected tuple array, found {}", v.kind()
                )))?;
                let expect = [$(stringify!($idx)),+].len();
                if items.len() != expect {
                    return Err(Error(format!(
                        "expected tuple of {expect} elements, found {}", items.len()
                    )));
                }
                Ok(($($t::deserialize(&items[$idx])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.serialize(), v.serialize()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let pairs: Vec<(K, V)> = Vec::deserialize(v)?;
        Ok(pairs.into_iter().collect())
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn serialize(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.serialize(), v.serialize()]))
                .collect(),
        )
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

/// Support code for the derive macros — not public API.
#[doc(hidden)]
pub mod __private {
    use super::{Deserialize, Error, Value};

    /// Extracts and deserializes one named field of an object. A missing
    /// key deserializes from `null`, which lets `Option` fields default to
    /// `None` while any other type reports the absence.
    pub fn field<T: Deserialize>(v: &Value, name: &str) -> Result<T, Error> {
        match v {
            Value::Object(_) => {
                let slot = v.get(name).unwrap_or(&Value::Null);
                T::deserialize(slot).map_err(|e| Error(format!("field `{name}`: {}", e.0)))
            }
            other => Err(Error(format!("expected object, found {}", other.kind()))),
        }
    }

    /// Checks that `v` is an array of exactly `n` elements (tuple structs).
    pub fn seq(v: &Value, n: usize) -> Result<&[Value], Error> {
        let items = v
            .as_array()
            .ok_or_else(|| Error(format!("expected array, found {}", v.kind())))?;
        if items.len() != n {
            return Err(Error(format!(
                "expected {n} elements, found {}",
                items.len()
            )));
        }
        Ok(items)
    }

    /// Extracts the variant name of a fieldless enum encoding.
    pub fn variant(v: &Value) -> Result<&str, Error> {
        v.as_str()
            .ok_or_else(|| Error(format!("expected variant string, found {}", v.kind())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_none_from_null() {
        assert_eq!(<Option<u32>>::deserialize(&Value::Null).unwrap(), None);
        assert_eq!(<Option<u32>>::deserialize(&Value::U64(7)).unwrap(), Some(7));
    }

    #[test]
    fn u64_roundtrips_exactly() {
        let x = u64::MAX - 3;
        assert_eq!(u64::deserialize(&x.serialize()).unwrap(), x);
    }

    #[test]
    fn nonfinite_floats_roundtrip() {
        assert_eq!(
            f64::deserialize(&f64::INFINITY.serialize()).unwrap(),
            f64::INFINITY
        );
        assert_eq!(
            f64::deserialize(&f64::NEG_INFINITY.serialize()).unwrap(),
            f64::NEG_INFINITY
        );
        assert!(f64::deserialize(&f64::NAN.serialize()).unwrap().is_nan());
    }

    #[test]
    fn arrays_check_length() {
        let v = vec![1u8, 2, 3].serialize();
        assert!(<[u8; 3]>::deserialize(&v).is_ok());
        assert!(<[u8; 4]>::deserialize(&v).is_err());
    }

    #[test]
    fn missing_nonoption_field_errors() {
        let obj = Value::Object(vec![]);
        assert!(__private::field::<u32>(&obj, "x").is_err());
        assert_eq!(__private::field::<Option<u32>>(&obj, "x").unwrap(), None);
    }
}
