//! JSON text layer for the in-repo serde shim.
//!
//! API mirrors the `serde_json` functions this workspace uses:
//! [`to_string`], [`to_string_pretty`], [`from_str`], [`to_value`],
//! [`from_value`]. Numbers keep their `u64`/`i64`/`f64` identity through
//! a round-trip (floats are written with Rust's shortest-roundtrip
//! formatting), which is what makes JSON checkpoints restore searches
//! bit-exactly.

pub use serde::{Error, Value};

/// Serializes a value to its JSON tree.
pub fn to_value<T: serde::Serialize>(value: &T) -> Value {
    value.serialize()
}

/// Reconstructs a typed value from a JSON tree.
pub fn from_value<T: serde::Deserialize>(value: &Value) -> Result<T, Error> {
    T::deserialize(value)
}

/// Serializes a value to compact JSON text.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0);
    Ok(out)
}

/// Serializes a value to human-readable, two-space-indented JSON text.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text directly into its [`Value`] tree.
///
/// This is the allocation-minimal entry point: [`from_str`] goes through
/// `T::deserialize`, which for `T = Value` would deep-clone the freshly
/// parsed tree — a real cost on service-sized documents (a batched
/// request carrying a whole population). Callers that want the tree
/// itself use this and skip the copy.
pub fn parse_str(text: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", parser.pos)));
    }
    Ok(value)
}

/// Parses JSON text into a typed value.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    T::deserialize(&parse_str(text)?)
}

// --- writer ------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        // Debug formatting of f64 is the shortest representation that
        // parses back to the same bits, and always keeps a float marker
        // (`1.0`, not `1`).
        Value::F64(x) => out.push_str(&format!("{x:?}")),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => write_seq(
            out,
            items.iter(),
            items.len(),
            indent,
            level,
            write_value,
            '[',
            ']',
        ),
        Value::Object(fields) => write_seq(
            out,
            fields.iter(),
            fields.len(),
            indent,
            level,
            |out, (k, val), ind, lvl| {
                write_string(out, k);
                out.push(':');
                if ind.is_some() {
                    out.push(' ');
                }
                write_value(out, val, ind, lvl);
            },
            '{',
            '}',
        ),
    }
}

#[allow(clippy::too_many_arguments)] // internal writer plumbing
fn write_seq<T>(
    out: &mut String,
    items: impl Iterator<Item = T>,
    len: usize,
    indent: Option<usize>,
    level: usize,
    mut write_item: impl FnMut(&mut String, T, Option<usize>, usize),
    open: char,
    close: char,
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (level + 1)));
        }
        write_item(out, item, indent, level + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * level));
    }
    out.push(close);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- parser ------------------------------------------------------------

/// Maximum container nesting the parser will descend into. The parser
/// is recursive-descent, so nesting depth is stack depth: without a
/// bound, a line of a few tens of thousands of `[` bytes overflows the
/// thread stack and aborts the whole process — fatal for a server that
/// promises to answer every line of an untrusted stream with an error
/// at worst. 128 is far beyond anything the wire protocol produces.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}, found `{:?}`",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        if self.depth >= MAX_DEPTH {
            return Err(Error(format!(
                "nesting deeper than {MAX_DEPTH} at byte {}",
                self.pos
            )));
        }
        self.depth += 1;
        let value = self.parse_value_inner();
        self.depth -= 1;
        value
    }

    fn parse_value_inner(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => {
                            return Err(Error(format!("expected `,` or `]` at byte {}", self.pos)))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    fields.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => {
                            return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos)))
                        }
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let code = self.parse_hex4()?;
                            // Surrogate pairs (non-BMP chars).
                            let c = if (0xd800..0xdc00).contains(&code) {
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let low = self.parse_hex4()?;
                                let combined =
                                    0x10000 + ((code - 0xd800) << 10) + (low.wrapping_sub(0xdc00));
                                char::from_u32(combined)
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| Error("invalid \\u escape".into()))?);
                        }
                        other => {
                            return Err(Error(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                // ASCII fast path — and the guarantee that per-character
                // work is O(1): validating UTF-8 from here to the end of
                // the document (as a naive `from_utf8(rest)` would) made
                // string parsing quadratic in document size, which is
                // what a batched service request is.
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one multi-byte UTF-8 character: validate at
                    // most the 4-byte window that can contain it.
                    let rest = &self.bytes[self.pos..];
                    let window = &rest[..rest.len().min(4)];
                    let valid = match std::str::from_utf8(window) {
                        Ok(s) => s,
                        // The window may cut a *following* character in
                        // half; everything up to the cut is valid and
                        // contains our character.
                        Err(e) if e.valid_up_to() > 0 => {
                            std::str::from_utf8(&window[..e.valid_up_to()])
                                .expect("prefix validated by valid_up_to")
                        }
                        Err(_) => return Err(Error("invalid UTF-8 in string".into())),
                    };
                    let c = valid.chars().next().expect("non-empty valid prefix");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error("truncated \\u escape".into()));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error("invalid \\u escape".into()))?;
        self.pos = end;
        u32::from_str_radix(hex, 16).map_err(|_| Error("invalid \\u escape".into()))
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let mut is_float = false;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error(format!("invalid number `{text}` at byte {start}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("eyeriss \"v2\"\n".into())),
            ("pes".into(), Value::U64(168)),
            ("edp".into(), Value::F64(1.25e-3)),
            (
                "tags".into(),
                Value::Array(vec![Value::Null, Value::Bool(true)]),
            ),
            ("big".into(), Value::U64(u64::MAX)),
            ("neg".into(), Value::I64(-42)),
        ]);
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let back: Value = from_str(&text).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn float_identity_is_preserved() {
        let text = to_string(&vec![1.0f64, 0.1, 3.0]).unwrap();
        assert_eq!(text, "[1.0,0.1,3.0]");
        let back: Vec<f64> = from_str(&text).unwrap();
        assert_eq!(back, vec![1.0, 0.1, 3.0]);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("{\"a\":}").is_err());
    }

    #[test]
    fn unicode_escapes() {
        let v: Value = from_str(r#""é😀""#).unwrap();
        assert_eq!(v, Value::Str("é😀".into()));
    }

    #[test]
    fn multibyte_sequences_survive_windowed_decoding() {
        // Adjacent multi-byte characters whose 4-byte decode window cuts
        // the *next* character in half (é = 2 bytes, € = 3 bytes), plus
        // a 4-byte character flush against the closing quote.
        for s in ["é€", "€é", "éé繁😀", "😀"] {
            let text = format!("\"{s}\"");
            let v: Value = from_str(&text).unwrap();
            assert_eq!(v, Value::Str(s.into()), "for {s:?}");
        }
    }

    #[test]
    fn pathological_nesting_is_an_error_not_a_stack_overflow() {
        // Regression: unbounded recursion on `[[[[…` aborted the whole
        // process. Depth within the bound still parses.
        assert!(parse_str(&"[".repeat(50_000)).is_err());
        let balanced = format!(
            "{}0{}",
            "[".repeat(MAX_DEPTH + 1),
            "]".repeat(MAX_DEPTH + 1)
        );
        assert!(parse_str(&balanced).is_err());
        let shallow = format!(
            "{}0{}",
            "[".repeat(MAX_DEPTH - 1),
            "]".repeat(MAX_DEPTH - 1)
        );
        assert!(parse_str(&shallow).is_ok());
    }

    #[test]
    fn parse_str_equals_from_str_value() {
        let text = r#"{"a": [1, 2.5, "é"], "b": null}"#;
        let direct = parse_str(text).unwrap();
        let via_deserialize: Value = from_str(text).unwrap();
        assert_eq!(direct, via_deserialize);
        assert!(parse_str("{oops").is_err());
    }
}
