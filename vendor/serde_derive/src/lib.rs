//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the in-repo
//! serde shim.
//!
//! Implemented directly on `proc_macro::TokenStream` (the offline build
//! has no `syn`/`quote`). Supported item shapes — the ones this workspace
//! actually derives on:
//!
//! * structs with named fields;
//! * tuple structs, including simple type generics (`struct W<T>([T; 6])`);
//! * fieldless enums (unit variants, optionally with discriminants and
//!   attributes such as `#[default]`).
//!
//! Anything else produces a `compile_error!` naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the shim's `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Direction::Serialize)
}

/// Derives the shim's `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Direction::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Direction {
    Serialize,
    Deserialize,
}

enum Shape {
    /// Struct with named fields.
    Named(Vec<String>),
    /// Tuple struct with `n` fields.
    Tuple(usize),
    /// Unit struct.
    Unit,
    /// Enum whose variants are unit or newtype (one unnamed field).
    Enum(Vec<(String, VariantKind)>),
}

enum VariantKind {
    Unit,
    Newtype,
}

struct Item {
    name: String,
    generics: Vec<String>,
    shape: Shape,
}

fn expand(input: TokenStream, dir: Direction) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => return format!("compile_error!({msg:?});").parse().unwrap(),
    };
    let code = match dir {
        Direction::Serialize => gen_serialize(&item),
        Direction::Deserialize => gen_deserialize(&item),
    };
    code.parse().unwrap()
}

// --- parsing -----------------------------------------------------------

fn is_punct(t: &TokenTree, c: char) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == c)
}

fn is_ident(t: &TokenTree, s: &str) -> bool {
    matches!(t, TokenTree::Ident(i) if i.to_string() == s)
}

/// Advances past a run of `#[...]` attributes starting at `i`.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() && is_punct(&tokens[i], '#') {
        i += 2; // '#' + bracket group
    }
    i
}

/// Advances past an optional `pub` / `pub(...)` visibility at `i`.
fn skip_visibility(tokens: &[TokenTree], mut i: usize) -> usize {
    if i < tokens.len() && is_ident(&tokens[i], "pub") {
        i += 1;
        if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }
    i
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&tokens, 0);
    i = skip_visibility(&tokens, i);

    let is_enum = if is_ident(&tokens[i], "struct") {
        false
    } else if is_ident(&tokens[i], "enum") {
        true
    } else {
        return Err(format!(
            "serde shim derive: expected struct or enum, found `{}`",
            tokens[i]
        ));
    };
    i += 1;

    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => {
            return Err(format!(
                "serde shim derive: expected item name, found `{other}`"
            ))
        }
    };
    i += 1;

    // Generic parameter list: collect type-parameter idents, drop bounds.
    let mut generics = Vec::new();
    if i < tokens.len() && is_punct(&tokens[i], '<') {
        let mut depth = 1usize;
        let mut expecting_param = true;
        let mut in_lifetime = false;
        let mut in_bounds = false;
        i += 1;
        while i < tokens.len() && depth > 0 {
            match &tokens[i] {
                t if is_punct(t, '<') => depth += 1,
                t if is_punct(t, '>') => depth -= 1,
                t if is_punct(t, ',') && depth == 1 => {
                    expecting_param = true;
                    in_bounds = false;
                }
                t if is_punct(t, ':') && depth == 1 => in_bounds = true,
                t if is_punct(t, '\'') => in_lifetime = true,
                TokenTree::Ident(id) if depth == 1 && expecting_param && !in_bounds => {
                    if in_lifetime {
                        in_lifetime = false;
                    } else if id.to_string() == "const" {
                        return Err("serde shim derive: const generics unsupported".to_string());
                    } else {
                        generics.push(id.to_string());
                        expecting_param = false;
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }

    if i < tokens.len() && is_ident(&tokens[i], "where") {
        return Err("serde shim derive: where clauses unsupported".to_string());
    }

    let shape = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let body: Vec<TokenTree> = g.stream().into_iter().collect();
            if is_enum {
                Shape::Enum(parse_variants(&body)?)
            } else {
                Shape::Named(parse_named_fields(&body)?)
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            if is_enum {
                return Err("serde shim derive: unexpected enum body".to_string());
            }
            Shape::Tuple(count_tuple_fields(
                &g.stream().into_iter().collect::<Vec<_>>(),
            ))
        }
        Some(t) if is_punct(t, ';') => Shape::Unit,
        other => {
            return Err(format!(
                "serde shim derive: unexpected item body `{other:?}`"
            ));
        }
    };

    Ok(Item {
        name,
        generics,
        shape,
    })
}

fn parse_named_fields(body: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < body.len() {
        i = skip_attrs(body, i);
        if i >= body.len() {
            break;
        }
        i = skip_visibility(body, i);
        let name = match &body[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => {
                return Err(format!(
                    "serde shim derive: expected field name, found `{other}`"
                ))
            }
        };
        i += 1;
        if !is_punct(&body[i], ':') {
            return Err(format!(
                "serde shim derive: expected `:` after field `{name}`"
            ));
        }
        i += 1;
        // Skip the type: consume until a top-level (angle-bracket depth 0) comma.
        let mut depth = 0usize;
        while i < body.len() {
            let t = &body[i];
            if is_punct(t, '<') {
                depth += 1;
            } else if is_punct(t, '>') {
                depth = depth.saturating_sub(1);
            } else if is_punct(t, ',') && depth == 0 {
                i += 1;
                break;
            }
            i += 1;
        }
        fields.push(name);
    }
    Ok(fields)
}

fn parse_variants(body: &[TokenTree]) -> Result<Vec<(String, VariantKind)>, String> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < body.len() {
        i = skip_attrs(body, i);
        if i >= body.len() {
            break;
        }
        let name = match &body[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => {
                return Err(format!(
                    "serde shim derive: expected variant name, found `{other}`"
                ))
            }
        };
        i += 1;
        let kind = match body.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let fields = count_tuple_fields(&g.stream().into_iter().collect::<Vec<_>>());
                if fields != 1 {
                    return Err(format!(
                        "serde shim derive: variant `{name}` has {fields} fields; only unit and newtype variants are supported"
                    ));
                }
                i += 1;
                VariantKind::Newtype
            }
            Some(TokenTree::Group(_)) => {
                return Err(format!(
                    "serde shim derive: variant `{name}` has named fields; only unit and newtype variants are supported"
                ));
            }
            _ => VariantKind::Unit,
        };
        // Skip an optional `= discriminant` and advance past the comma.
        while i < body.len() && !is_punct(&body[i], ',') {
            i += 1;
        }
        i += 1;
        variants.push((name, kind));
    }
    Ok(variants)
}

fn count_tuple_fields(body: &[TokenTree]) -> usize {
    if body.is_empty() {
        return 0;
    }
    let mut depth = 0usize;
    let mut fields = 1;
    let mut trailing_comma = false;
    for t in body {
        if is_punct(t, '<') {
            depth += 1;
        } else if is_punct(t, '>') {
            depth = depth.saturating_sub(1);
        } else if is_punct(t, ',') && depth == 0 {
            fields += 1;
            trailing_comma = true;
            continue;
        }
        trailing_comma = false;
    }
    if trailing_comma {
        fields -= 1;
    }
    fields
}

// --- code generation ---------------------------------------------------

fn impl_header(item: &Item, trait_name: &str) -> String {
    if item.generics.is_empty() {
        format!("impl serde::{trait_name} for {}", item.name)
    } else {
        let bounded: Vec<String> = item
            .generics
            .iter()
            .map(|g| format!("{g}: serde::{trait_name}"))
            .collect();
        let args = item.generics.join(", ");
        format!(
            "impl<{}> serde::{trait_name} for {}<{args}>",
            bounded.join(", "),
            item.name
        )
    }
}

fn gen_serialize(item: &Item) -> String {
    let body = match &item.shape {
        Shape::Named(fields) => {
            let mut pushes = String::new();
            for f in fields {
                pushes.push_str(&format!(
                    "fields.push((String::from({f:?}), serde::Serialize::serialize(&self.{f})));"
                ));
            }
            format!(
                "let mut fields: Vec<(String, serde::Value)> = Vec::new(); {pushes} serde::Value::Object(fields)"
            )
        }
        Shape::Tuple(1) => "serde::Serialize::serialize(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::Serialize::serialize(&self.{i})"))
                .collect();
            format!("serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::Unit => "serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, kind)| match kind {
                    VariantKind::Unit => format!(
                        "{}::{v} => serde::Value::Str(String::from({v:?}))",
                        item.name
                    ),
                    VariantKind::Newtype => format!(
                        "{}::{v}(inner) => serde::Value::Object(vec![(String::from({v:?}), serde::Serialize::serialize(inner))])",
                        item.name
                    ),
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "{} {{ fn serialize(&self) -> serde::Value {{ {body} }} }}",
        impl_header(item, "Serialize")
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: serde::__private::field(value, {f:?})?"))
                .collect();
            format!("Ok({name} {{ {} }})", inits.join(", "))
        }
        Shape::Tuple(1) => format!("Ok({name}(serde::Deserialize::deserialize(value)?))"),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::Deserialize::deserialize(&items[{i}])?"))
                .collect();
            format!(
                "let items = serde::__private::seq(value, {n})?; Ok({name}({}))",
                items.join(", ")
            )
        }
        Shape::Unit => format!("Ok({name})"),
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, kind)| matches!(kind, VariantKind::Unit))
                .map(|(v, _)| format!("{v:?} => return Ok({name}::{v}),"))
                .collect();
            let newtype_arms: Vec<String> = variants
                .iter()
                .filter(|(_, kind)| matches!(kind, VariantKind::Newtype))
                .map(|(v, _)| {
                    format!(
                        "{v:?} => return Ok({name}::{v}(serde::Deserialize::deserialize(inner)?)),"
                    )
                })
                .collect();
            format!(
                "if let Some(tag) = value.as_str() {{ match tag {{ {} _ => {{}} }} }} \
                 if let serde::Value::Object(fields) = value {{ if fields.len() == 1 {{ \
                 let (tag, inner) = &fields[0]; match tag.as_str() {{ {} _ => {{}} }} }} }} \
                 Err(serde::Error(format!(\"unrecognized variant encoding of {name}: {{value:?}}\")))",
                unit_arms.join(" "),
                newtype_arms.join(" ")
            )
        }
    };
    format!(
        "{} {{ fn deserialize(value: &serde::Value) -> Result<Self, serde::Error> {{ {body} }} }}",
        impl_header(item, "Deserialize")
    )
}
