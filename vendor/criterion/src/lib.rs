//! In-repo stand-in for [criterion](https://docs.rs/criterion) (offline
//! build).
//!
//! Supports the subset the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `sample_size`, `Bencher::iter`,
//! and the `criterion_group!` / `criterion_main!` macros — with a simple
//! but honest measurement loop: per sample, the closure runs enough
//! iterations to cover a minimum window, and the median across samples is
//! reported as ns/iter on stdout. No statistics beyond min/median/max, no
//! HTML reports, no baselines.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export so benches can use `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level harness handle, one per bench binary.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            name,
            sample_size: self.sample_size,
            _harness: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_benchmark(&id.into(), self.sample_size, f);
        self
    }

    /// Sets the default number of timing samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }
}

/// A group of benchmarks sharing a name prefix and sample count.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _harness: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_benchmark(&format!("{}/{}", self.name, id.into()), self.sample_size, f);
        self
    }

    /// Ends the group (provided for API compatibility; no-op).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code
/// under test.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` invocations of the routine.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Minimum measurement window per sample; short enough that heavyweight
/// search benches stay responsive, long enough that sub-microsecond
/// routines are timed over many iterations.
const MIN_SAMPLE_WINDOW: Duration = Duration::from_millis(5);

fn run_benchmark(id: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    // Calibration: one iteration, also serving as warm-up.
    let mut bench = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bench);
    let per_iter = bench.elapsed.max(Duration::from_nanos(1));
    let iters_per_sample =
        (MIN_SAMPLE_WINDOW.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut samples_ns: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut bench = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut bench);
        samples_ns.push(bench.elapsed.as_nanos() as f64 / iters_per_sample as f64);
    }
    samples_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = samples_ns[samples_ns.len() / 2];
    let (min, max) = (samples_ns[0], samples_ns[samples_ns.len() - 1]);
    println!(
        "{id:<56} time: [{} {} {}]",
        format_ns(min),
        format_ns(median),
        format_ns(max)
    );
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declares a benchmark group function, as in real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, as in real criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.finish();
    }
}
