//! In-repo stand-in for [proptest](https://docs.rs/proptest) (offline
//! build).
//!
//! Property tests run each case against inputs drawn from composable
//! [`Strategy`] values, seeded deterministically from the test name so
//! every run (and every CI machine) exercises the identical case
//! sequence. Differences from real proptest, acceptable for this
//! workspace:
//!
//! * no shrinking — a failing case panics with the case index, and the
//!   deterministic seeding makes it immediately reproducible;
//! * rejection (`prop_filter_map` returning `None`) resamples the whole
//!   input tuple, with a global retry cap per case;
//! * only the combinators and modules this repository's tests use:
//!   ranges, tuples, [`Just`], `prop_map`/`prop_filter_map`/`prop_filter`,
//!   [`prop_oneof!`], `collection::vec`, `array::uniform4`/`uniform6`,
//!   `bool::ANY`, and the [`proptest!`] / `prop_assert!` macros.

use rand::rngs::SmallRng;
use rand::{RngCore, RngExt, SeedableRng};

/// Runner configuration; only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The RNG handed to strategies.
pub type TestRng = SmallRng;

/// A recipe for generating values of one type.
///
/// `sample` returns `None` when the drawn raw value was rejected by a
/// filter; the runner resamples.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value, or `None` on filter rejection.
    fn sample(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Maps generated values through a function.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Filters and maps in one step; `None` rejects the draw. The reason
    /// string is kept only for API compatibility.
    fn prop_filter_map<U, F>(self, _reason: impl Into<String>, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<U>,
    {
        FilterMap { inner: self, f }
    }

    /// Keeps only values satisfying the predicate.
    fn prop_filter<F>(self, _reason: impl Into<String>, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f }
    }

    /// Erases the strategy type (needed by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe view of [`Strategy`], used behind [`BoxedStrategy`].
trait DynStrategy<T> {
    fn sample_dyn(&self, rng: &mut TestRng) -> Option<T>;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn sample_dyn(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.sample(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> Option<T> {
        self.0.sample_dyn(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> Option<U> {
        self.inner.sample(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> Option<U>> Strategy for FilterMap<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> Option<U> {
        self.inner.sample(rng).and_then(&self.f)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.inner.sample(rng).filter(|v| (self.f)(v))
    }
}

/// Uniform choice between alternative strategies (see [`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if no arms are given.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !arms.is_empty(),
            "prop_oneof! needs at least one alternative"
        );
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> Option<T> {
        let idx = rng.random_range(0..self.arms.len());
        self.arms[idx].sample(rng)
    }
}

// --- ranges as strategies ---------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                Some(rng.random_range(self.clone()))
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                Some(rng.random_range(self.clone()))
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

// --- tuples of strategies ----------------------------------------------

macro_rules! impl_tuple_strategy {
    ($(($($s:ident : $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Option<Self::Value> {
                Some(($(self.$idx.sample(rng)?,)+))
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Strategies over collections.
pub mod collection {
    use super::*;

    /// Admissible length specifications for [`vec()`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s whose elements come from `element` and
    /// whose length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            let len = rng.random_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Strategies over fixed-size arrays.
pub mod array {
    use super::*;

    macro_rules! uniform {
        ($(($name:ident, $n:literal)),*) => {$(
            /// Strategy producing arrays whose elements all come from
            /// one element strategy.
            pub fn $name<S: Strategy>(element: S) -> UniformArray<S, $n> {
                UniformArray { element }
            }
        )*};
    }
    uniform!(
        (uniform2, 2),
        (uniform3, 3),
        (uniform4, 4),
        (uniform5, 5),
        (uniform6, 6)
    );

    /// See the `uniformN` constructors.
    pub struct UniformArray<S, const N: usize> {
        element: S,
    }

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];
        fn sample(&self, rng: &mut TestRng) -> Option<[S::Value; N]> {
            let mut items = Vec::with_capacity(N);
            for _ in 0..N {
                items.push(self.element.sample(rng)?);
            }
            items.try_into().ok()
        }
    }
}

/// Strategies over booleans.
pub mod bool {
    use super::*;

    /// Uniform `true` / `false`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The canonical boolean strategy, as in `proptest::bool::ANY`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = ::core::primitive::bool;
        fn sample(&self, rng: &mut TestRng) -> Option<::core::primitive::bool> {
            Some(rng.next_u64() & 1 == 1)
        }
    }
}

/// Everything a property-test module needs in scope.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

// --- runner plumbing used by the macros --------------------------------

#[doc(hidden)]
pub mod __runner {
    use super::*;

    /// Deterministic per-test RNG: seeded from the test's name so case
    /// sequences are stable across runs and machines.
    pub fn rng_for(test_name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::seed_from_u64(h)
    }

    /// Draws one accepted input tuple, resampling rejected draws.
    pub fn draw<S: Strategy>(strategy: &S, rng: &mut TestRng, test_name: &str) -> S::Value {
        for _ in 0..10_000 {
            if let Some(v) = strategy.sample(rng) {
                return v;
            }
        }
        panic!("{test_name}: input strategy rejected 10000 consecutive draws");
    }
}

/// Declares deterministic property tests over strategy-drawn inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr); ) => {};
    (config = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let strategy = ($($strategy,)+);
            let mut rng = $crate::__runner::rng_for(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let ($($arg,)+) =
                    $crate::__runner::draw(&strategy, &mut rng, stringify!($name));
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| $body));
                if let Err(payload) = result {
                    eprintln!(
                        "proptest case {case}/{} of {} failed (deterministic seed; rerun reproduces it)",
                        config.cases,
                        stringify!($name),
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::__proptest_impl!{ config = ($cfg); $($rest)* }
    };
}

/// Asserts a property-test condition (plain `assert!` in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality in a property test (plain `assert_eq!` in the shim).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality in a property test (plain `assert_ne!` in the shim).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when an assumption does not hold. The shim has
/// no resample-on-assume machinery; assumptions simply pass the case.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// Uniform choice among alternative strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_even() -> impl Strategy<Value = u64> {
        (0u64..100).prop_filter_map("even only", |v| if v % 2 == 0 { Some(v) } else { None })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 0.0f64..=1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.0..=1.0).contains(&y));
        }

        #[test]
        fn filter_map_filters(v in small_even()) {
            prop_assert_eq!(v % 2, 0);
        }

        #[test]
        fn oneof_union_and_collections(
            pick in prop_oneof![Just(1u8), Just(3), Just(7)],
            items in crate::collection::vec((0u32..10, 0.0f64..1.0), 2..6),
            arr in crate::array::uniform4(0.0f64..=1.0),
            flag in crate::bool::ANY,
        ) {
            prop_assert!([1, 3, 7].contains(&pick));
            prop_assert!((2..6).contains(&items.len()));
            prop_assert!(arr.iter().all(|v| (0.0..=1.0).contains(v)));
            let _ = flag;
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let strat = (0u64..1000, 0.0f64..1.0);
        let mut a = crate::__runner::rng_for("x");
        let mut b = crate::__runner::rng_for("x");
        for _ in 0..100 {
            assert_eq!(
                crate::__runner::draw(&strat, &mut a, "x"),
                crate::__runner::draw(&strat, &mut b, "x")
            );
        }
    }
}
