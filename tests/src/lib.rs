//! Cross-crate integration tests for the NAAS reproduction.
//!
//! The actual tests live in `tests/tests/*.rs`:
//!
//! * `pipeline.rs` — model zoo → cost model → mapping search →
//!   accelerator search, end to end on every baseline envelope;
//! * `paper_claims.rs` — smoke-budget checks of each figure/table's
//!   qualitative claim, via the `naas-bench` experiment runners;
//! * `properties.rs` — proptest invariants spanning crates (decode
//!   totality, cost-model bounds, monotonicities);
//! * `determinism.rs` — bit-for-bit reproducibility of every search
//!   entry point under a fixed seed.
