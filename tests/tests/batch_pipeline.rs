//! The batched evaluation pipeline's contract: batched and scalar
//! evaluation agree bit-for-bit, and the batched rewrite of
//! `search_layer_mapping` reproduces the pre-refactor scalar loop
//! exactly (fixtures recorded from the historical implementation).

use naas::prelude::*;
use naas::{EvalPipeline, MappingSearchConfig};
use naas_cost::{CostError, CostModel, EvalScratch, LayerCost};
use naas_ir::DIMS;
use naas_opt::{MappingEncoder, Optimizer, RandomSearch};
use proptest::prelude::*;

fn std_layer() -> ConvSpec {
    ConvSpec::conv2d("c", 64, 128, (28, 28), (3, 3), 1, 1).unwrap()
}

fn dw_layer() -> ConvSpec {
    ConvSpec::depthwise("dw", 96, (56, 56), (3, 3), 1, 1).unwrap()
}

// ---- batched == scalar -------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For any population of encoding vectors, `evaluate_batch` over one
    /// shared scratch returns exactly what per-candidate scalar
    /// `evaluate` calls return — same `LayerCost` values (bitwise: the
    /// two paths share one implementation), same errors.
    #[test]
    fn batched_population_matches_scalar(
        thetas in proptest::collection::vec(
            proptest::collection::vec(0.0f64..=1.0, 30),
            8,
        ),
        dw in proptest::bool::ANY,
    ) {
        let model = CostModel::new();
        let accel = baselines::nvdla_256();
        let layer = if dw { dw_layer() } else { std_layer() };
        let encoder =
            MappingEncoder::new(accel.connectivity().ndim(), EncodingScheme::Importance);

        // Batched: decode into recycled mappings, evaluate in one call.
        let mut mappings = vec![Mapping::new(Vec::new(), DIMS); thetas.len()];
        for (theta, slot) in thetas.iter().zip(&mut mappings) {
            encoder.decode_into(theta, &layer, accel.connectivity(), slot);
        }
        let mut scratch = EvalScratch::new();
        let mut batched: Vec<Result<LayerCost, CostError>> = Vec::new();
        model.evaluate_batch(&layer, &accel, &mappings, &mut scratch, &mut batched);

        prop_assert_eq!(batched.len(), thetas.len());
        for (theta, got) in thetas.iter().zip(&batched) {
            // Fresh scalar decode must agree with the recycled decode...
            let fresh = encoder.decode(theta, &layer, accel.connectivity());
            // ...and the scalar evaluation with the batched one, exactly.
            let expect = model.evaluate(&layer, &accel, &fresh);
            prop_assert_eq!(got, &expect);
        }
    }

    /// `decode_into` over one recycled `Mapping` produces the same
    /// mapping as a fresh `decode`, no matter what was decoded before.
    #[test]
    fn recycled_decode_matches_fresh(
        a in proptest::collection::vec(0.0f64..=1.0, 30),
        b in proptest::collection::vec(0.0f64..=1.0, 30),
    ) {
        let accel = baselines::eyeriss();
        let encoder =
            MappingEncoder::new(accel.connectivity().ndim(), EncodingScheme::Importance);
        let layer = std_layer();
        let mut recycled = Mapping::new(Vec::new(), DIMS);
        encoder.decode_into(&a, &layer, accel.connectivity(), &mut recycled);
        encoder.decode_into(&b, &layer, accel.connectivity(), &mut recycled);
        prop_assert_eq!(recycled, encoder.decode(&b, &layer, accel.connectivity()));
    }

    /// `ask_into` / `ask_batch_into` consume the RNG exactly like `ask`.
    #[test]
    fn batch_ask_matches_scalar_ask(seed in 0u64..1000) {
        let mut scalar = RandomSearch::new(7, seed);
        let mut batched = RandomSearch::new(7, seed);
        let mut slots = vec![Vec::new(); 5];
        batched.ask_batch_into(&mut slots);
        for slot in &slots {
            prop_assert_eq!(&scalar.ask(), slot);
        }
    }
}

// ---- pre-refactor fixtures --------------------------------------------

/// Values recorded from the scalar (pre-pipeline) implementation of
/// `search_layer_mapping` at these exact configurations. The batched
/// pipeline must reproduce every one of them bit-for-bit — cycles,
/// energy (as raw f64 bits), EDP bits, evaluation count and the full
/// mapping content (content-fingerprinted).
#[test]
fn search_results_match_prerefactor_fixtures() {
    struct Fixture {
        accel: Accelerator,
        layer: ConvSpec,
        seed: u64,
        scheme: EncodingScheme,
        cycles: u64,
        energy_bits: u64,
        edp_bits: u64,
        evals: usize,
        mapping_hash: u64,
    }
    #[rustfmt::skip]
    let fixtures = [
        Fixture { accel: baselines::eyeriss(), layer: std_layer(), seed: 42, scheme: EncodingScheme::Importance,
                  cycles: 2_904_122, energy_bits: 0x41b9519333333333, edp_bits: 0x4271f38748d59b3c, evals: 25, mapping_hash: 0x8d873ace95bf3016 },
        Fixture { accel: baselines::eyeriss(), layer: std_layer(), seed: 42, scheme: EncodingScheme::Index,
                  cycles: 2_904_122, energy_bits: 0x41b9519333333333, edp_bits: 0x4271f38748d59b3c, evals: 25, mapping_hash: 0x8d873ace95bf3016 },
        Fixture { accel: baselines::eyeriss(), layer: dw_layer(), seed: 42, scheme: EncodingScheme::Importance,
                  cycles: 304_930, energy_bits: 0x41916c20e0000000, edp_bits: 0x4214c09af55fae14, evals: 25, mapping_hash: 0x5c35a854358c2bb5 },
        Fixture { accel: baselines::nvdla_256(), layer: std_layer(), seed: 7, scheme: EncodingScheme::Importance,
                  cycles: 3_440_704, energy_bits: 0x41bc19b65999999a, edp_bits: 0x42779ad4ab39b3d1, evals: 25, mapping_hash: 0x610b352a90c314d3 },
        Fixture { accel: baselines::nvdla_256(), layer: dw_layer(), seed: 7, scheme: EncodingScheme::Importance,
                  cycles: 6_357_056, energy_bits: 0x41bd6c19d3333334, edp_bits: 0x4286d4f818adc91e, evals: 25, mapping_hash: 0x1cf48743100515d7 },
        Fixture { accel: baselines::nvdla_256(), layer: dw_layer(), seed: 7, scheme: EncodingScheme::Index,
                  cycles: 3_006_784, energy_bits: 0x41c524159c000000, edp_bits: 0x427f09c91a18ac08, evals: 25, mapping_hash: 0x6237dc381dbc34f9 },
        Fixture { accel: baselines::shidiannao(), layer: std_layer(), seed: 123, scheme: EncodingScheme::Importance,
                  cycles: 10_518_576, energy_bits: 0x41c0b54193333333, edp_bits: 0x429574059f477731, evals: 25, mapping_hash: 0x9574ebb61eef0dbb },
        Fixture { accel: baselines::shidiannao(), layer: dw_layer(), seed: 123, scheme: EncodingScheme::Importance,
                  cycles: 530_480, energy_bits: 0x4193821a80000000, edp_bits: 0x4224365c043851ec, evals: 25, mapping_hash: 0x38d5c5902c6f13f5 },
        Fixture { accel: baselines::edge_tpu(), layer: std_layer(), seed: 9, scheme: EncodingScheme::Importance,
                  cycles: 18_592, energy_bits: 0x41a1a9e7e6666666, edp_bits: 0x41e48674613a92a3, evals: 25, mapping_hash: 0xffca4aa9cbf7ecf2 },
        Fixture { accel: baselines::edge_tpu(), layer: dw_layer(), seed: 9, scheme: EncodingScheme::Index,
                  cycles: 1_196_768, energy_bits: 0x41bb58dce6333334, edp_bits: 0x425ff60a2b47703c, evals: 25, mapping_hash: 0x6f4a2cbb4454c794 },
    ];

    let model = CostModel::new();
    for f in fixtures {
        let cfg = MappingSearchConfig {
            scheme: f.scheme,
            ..MappingSearchConfig::quick(f.seed)
        };
        let r = naas::search_layer_mapping(&model, &f.layer, &f.accel, &cfg)
            .expect("fixture config finds a mapping");
        let label = format!("{} {} {:?}", f.accel.name(), f.layer.name(), f.scheme);
        assert_eq!(r.cost.cycles, f.cycles, "cycles drifted: {label}");
        assert_eq!(
            r.cost.energy_pj.to_bits(),
            f.energy_bits,
            "energy bits drifted: {label}"
        );
        assert_eq!(
            r.cost.edp().to_bits(),
            f.edp_bits,
            "EDP bits drifted: {label}"
        );
        assert_eq!(r.evaluations, f.evals, "evaluation count drifted: {label}");
        assert_eq!(
            naas_engine::fingerprint(&r.mapping),
            f.mapping_hash,
            "mapping content drifted: {label}"
        );
    }
}

/// A caller-owned pipeline reused across many searches gives the same
/// results as the thread-local entry point — buffer reuse carries no
/// state between searches.
#[test]
fn reused_pipeline_matches_thread_local() {
    let model = CostModel::new();
    let mut pipeline = EvalPipeline::new();
    for (accel, seed) in [
        (baselines::eyeriss(), 1u64),
        (baselines::nvdla_256(), 2),
        (baselines::eyeriss(), 3),
        (baselines::edge_tpu(), 4),
    ] {
        let cfg = MappingSearchConfig::quick(seed);
        let layer = std_layer();
        let owned =
            naas::search_layer_mapping_with(&mut pipeline, &model, &layer, &accel, &cfg).unwrap();
        let fresh = naas::search_layer_mapping(&model, &layer, &accel, &cfg).unwrap();
        assert_eq!(owned.mapping, fresh.mapping);
        assert_eq!(owned.cost, fresh.cost);
        assert_eq!(owned.evaluations, fresh.evaluations);
        assert_eq!(owned.history, fresh.history);
    }
}

/// The random-search strategy also survives the batched rewrite.
#[test]
fn random_strategy_matches_across_pipelines() {
    let model = CostModel::new();
    let accel = baselines::eyeriss();
    let cfg = MappingSearchConfig {
        random: true,
        ..MappingSearchConfig::quick(17)
    };
    let layer = std_layer();
    let a = naas::search_layer_mapping(&model, &layer, &accel, &cfg).unwrap();
    let b = naas::search_layer_mapping_with(&mut EvalPipeline::new(), &model, &layer, &accel, &cfg)
        .unwrap();
    assert_eq!(a.mapping, b.mapping);
    assert_eq!(a.cost, b.cost);
}

// ---- evaluate_network error contract ----------------------------------

#[test]
fn mismatched_mapping_count_is_an_error_not_a_panic() {
    let model = CostModel::new();
    let accel = baselines::nvdla_1024();
    let net = models::cifar_resnet20();
    let one_mapping = vec![Mapping::balanced(&net.layers()[0], &accel)];
    let err = model
        .evaluate_network(&net, &accel, &one_mapping)
        .unwrap_err();
    assert_eq!(
        err,
        CostError::LayerCountMismatch {
            expected: net.len(),
            got: 1,
        }
    );
    assert!(err.to_string().contains("mappings"));
}
