//! Telemetry is passive: switching on the event-log sink and writing
//! periodic metrics snapshots mid-search must not perturb the search
//! trajectory by a single bit. This is the integration face of the
//! guarantee — the unit tests in `naas_engine::telemetry` cover the
//! registry itself.

use naas::{accel_search_init, AccelSearchConfig, CoSearchEngine, MappingSearchConfig};
use naas_cost::CostModel;
use naas_engine::scenario;
use naas_engine::telemetry;
use naas_ir::Network;
use serde_json::Value;

fn search_cfg(seed: u64) -> AccelSearchConfig {
    let mut cfg = AccelSearchConfig::quick(seed);
    cfg.mapping = MappingSearchConfig::quick(7);
    cfg.threads = 1;
    cfg
}

/// One full local accel search on the cifar-eyeriss fixture. When
/// `snapshot_each_generation` is set, a metrics snapshot is written to
/// the global event-log sink after every generation — the same cadence
/// `naas-search run --metrics-file` uses.
fn run_search(cfg: &AccelSearchConfig, snapshot_each_generation: bool) -> naas::AccelSearchResult {
    let job = scenario::find("cifar-eyeriss")
        .expect("registered scenario")
        .resolve()
        .expect("scenario resolves");
    let networks: Vec<Network> = job.networks;
    let engine = CoSearchEngine::new(cfg.threads);
    let model = CostModel::new();
    let mut state = accel_search_init(&job.constraint, cfg, &[]);
    while naas::accel_search_step(&engine, &model, &networks, &mut state) {
        if snapshot_each_generation {
            telemetry::events().write_metrics(
                &telemetry::metrics().snapshot(telemetry::cache_counters(engine.cache())),
            );
        }
    }
    state.into_result().expect("search finds a design")
}

/// The acceptance criterion for the telemetry layer: a search run with
/// the event log sinking to a file and metrics snapshots written every
/// generation produces the identical design card, reward, history, and
/// evaluation count as the telemetry-off run. The sink file itself must
/// be valid JSONL containing the snapshots.
#[test]
fn search_is_bit_identical_with_telemetry_enabled() {
    let cfg = search_cfg(11);

    // Telemetry off (no sink): the baseline trajectory.
    let plain = run_search(&cfg, false);

    // Telemetry on: global sink open, snapshot after every generation.
    let sink_path = std::env::temp_dir().join(format!(
        "naas-telemetry-identity-{}.jsonl",
        std::process::id()
    ));
    let sink_path = sink_path.to_str().expect("temp path is utf-8").to_string();
    telemetry::events()
        .open_sink(&sink_path)
        .expect("sink file opens");
    assert!(telemetry::events().has_sink());
    let instrumented = run_search(&cfg, true);

    assert_eq!(
        instrumented.best.accelerator, plain.best.accelerator,
        "telemetry changed the best design"
    );
    assert_eq!(
        instrumented.best.reward, plain.best.reward,
        "telemetry changed the best reward"
    );
    assert_eq!(
        instrumented.best.per_network, plain.best.per_network,
        "telemetry changed per-network costs"
    );
    assert_eq!(
        instrumented.history, plain.history,
        "telemetry changed the search history"
    );
    assert_eq!(
        instrumented.evaluations, plain.evaluations,
        "telemetry changed the evaluation count"
    );

    // The sink holds one valid JSONL metrics record per generation.
    let raw = std::fs::read_to_string(&sink_path).expect("sink file readable");
    let _ = std::fs::remove_file(&sink_path);
    let lines: Vec<&str> = raw.lines().collect();
    assert_eq!(
        lines.len(),
        instrumented.history.len(),
        "one snapshot per generation"
    );
    for line in &lines {
        let record: Value = serde_json::from_str(line).expect("sink line is valid JSON");
        assert_eq!(record.get("kind").and_then(Value::as_str), Some("metrics"));
        assert!(record.get("ts_ms").is_some(), "record carries a timestamp");
        let snapshot = record.get("metrics").expect("record carries the snapshot");
        for section in ["cache", "pool", "batcher", "pipeline", "coordinator"] {
            assert!(
                snapshot.get(section).is_some(),
                "snapshot is missing the {section} section"
            );
        }
        let parsed: naas_engine::MetricsSnapshot =
            serde_json::from_value(snapshot).expect("snapshot deserializes via the shim");
        // The registry is process-global, so only loose bounds hold; but
        // by the time any snapshot is taken this process has evaluated
        // mapping populations through the pool.
        assert!(parsed.pool.jobs >= 1, "pool saw no jobs: {parsed:?}");
        assert!(parsed.pipeline.evaluations >= 1);
    }
}
