//! Integration tests of the `naas-engine` subsystem as used by the
//! co-search: thread-count/cache determinism, cache correctness, and
//! checkpoint round-trips.

use naas::prelude::*;
use naas::{accel_search_init, accel_search_step, resume_accel_search, AccelSearchState};
use naas_cost::CostModel;
use naas_engine::{checkpoint, scenario};
use naas_ir::models;

fn quick_cfg(seed: u64, threads: usize) -> AccelSearchConfig {
    let mut cfg = AccelSearchConfig::quick(seed);
    cfg.threads = threads;
    cfg
}

/// Same seed ⇒ byte-identical best design for 1 and ≥4 threads, cold or
/// warm cache — the determinism contract of the engine.
#[test]
fn determinism_across_threads_and_cache_warmth() {
    let model = CostModel::new();
    let baseline = naas_accel::baselines::eyeriss();
    let envelope = ResourceConstraint::from_design(&baseline);
    let net = models::cifar_resnet20();
    let nets = std::slice::from_ref(&net);
    let seeds = std::slice::from_ref(&baseline);

    // Cold engines at different thread counts.
    let single_engine = CoSearchEngine::new(1);
    let single = search_accelerator_with(
        &single_engine,
        &model,
        nets,
        &envelope,
        &quick_cfg(404, 1),
        seeds,
        None,
    );
    let multi_engine = CoSearchEngine::new(4);
    let multi = search_accelerator_with(
        &multi_engine,
        &model,
        nets,
        &envelope,
        &quick_cfg(404, 4),
        seeds,
        None,
    );
    assert_eq!(single.best.accelerator, multi.best.accelerator);
    assert_eq!(single.best.reward.to_bits(), multi.best.reward.to_bits());
    assert_eq!(single.history, multi.history);

    // Warm cache: rerun on the already-populated multi-thread engine.
    let warm = search_accelerator_with(
        &multi_engine,
        &model,
        nets,
        &envelope,
        &quick_cfg(404, 4),
        seeds,
        None,
    );
    assert_eq!(warm.best.accelerator, single.best.accelerator);
    assert_eq!(warm.best.reward.to_bits(), single.best.reward.to_bits());
    assert_eq!(warm.history, single.history);
    // And the warm run was actually served from cache.
    assert!(warm.cache_stats.hits > multi.cache_stats.hits);
}

/// A cached evaluation agrees exactly with a cold one: the cache never
/// changes results, only skips work.
#[test]
fn cached_and_cold_evaluations_agree() {
    let model = CostModel::new();
    let accel = naas_accel::baselines::nvdla_256();
    let net = models::squeezenet(224);
    let cfg = MappingSearchConfig::quick(7);

    let cold_engine = CoSearchEngine::new(1);
    let cold = network_mapping_search_cached(&model, &net, &accel, &cfg, cold_engine.cache())
        .expect("nvdla maps squeezenet");

    // Second engine: compute once, then read back warm — and compare
    // against an independently computed cold result.
    let warm_engine = CoSearchEngine::new(4);
    let first = network_mapping_search_cached(&model, &net, &accel, &cfg, warm_engine.cache())
        .expect("maps");
    let warm = network_mapping_search_cached(&model, &net, &accel, &cfg, warm_engine.cache())
        .expect("maps");
    assert_eq!(first, cold);
    assert_eq!(warm, cold);

    let stats = warm_engine.cache_stats();
    assert!(stats.hits > 0, "second pass must hit the cache");
    // Distinct shapes, not layers: the cache deduplicates within the
    // network as well.
    assert!(
        (stats.entries as usize) < net.len(),
        "expected shape dedup: {} entries for {} layers",
        stats.entries,
        net.len()
    );
}

/// Save → load → resume reproduces the uninterrupted search bit-exactly.
#[test]
fn checkpoint_roundtrip_resumes_identically() {
    let model = CostModel::new();
    let baseline = naas_accel::baselines::shidiannao();
    let envelope = ResourceConstraint::from_design(&baseline);
    let net = models::cifar_resnet20();
    let nets = std::slice::from_ref(&net);
    let cfg = quick_cfg(909, 2);

    // Reference: uninterrupted run.
    let reference = search_accelerator_seeded(&model, nets, &envelope, &cfg, &[]);

    // Interrupted run: one generation, freeze to JSON, thaw, resume.
    let engine = CoSearchEngine::new(cfg.threads);
    let mut state = accel_search_init(&envelope, &cfg, &[]);
    assert!(accel_search_step(&engine, &model, nets, &mut state));
    let path =
        std::env::temp_dir().join(format!("naas-engine-test-{}.ckpt.json", std::process::id()));
    checkpoint::save(&path, &state).expect("save succeeds");
    let thawed: AccelSearchState = checkpoint::load(&path).expect("load succeeds");
    std::fs::remove_file(&path).ok();
    assert_eq!(thawed, state, "checkpoint must round-trip bit-exactly");

    // Resume on a *fresh* engine (cold cache) — content-derived seeds
    // make the continuation independent of cache state.
    let fresh_engine = CoSearchEngine::new(cfg.threads);
    let resumed = resume_accel_search(&fresh_engine, &model, nets, thawed, None);
    assert_eq!(resumed.best.accelerator, reference.best.accelerator);
    assert_eq!(
        resumed.best.reward.to_bits(),
        reference.best.reward.to_bits()
    );
    assert_eq!(resumed.history, reference.history);
    assert_eq!(resumed.evaluations, reference.evaluations);
}

/// A checkpoint written through a `CheckpointPolicy` during
/// `search_accelerator_with` is loadable and resumable mid-flight.
#[test]
fn policy_checkpoints_are_resumable() {
    let model = CostModel::new();
    let baseline = naas_accel::baselines::eyeriss();
    let envelope = ResourceConstraint::from_design(&baseline);
    let net = models::cifar_resnet20();
    let nets = std::slice::from_ref(&net);
    let cfg = quick_cfg(1234, 0);

    let path = std::env::temp_dir().join(format!(
        "naas-engine-policy-{}.ckpt.json",
        std::process::id()
    ));
    let policy = naas_engine::CheckpointPolicy::every_iteration(&path);
    let engine = CoSearchEngine::new(cfg.threads);
    let full = search_accelerator_with(&engine, &model, nets, &envelope, &cfg, &[], Some(&policy));

    // The last checkpoint on disk is the completed state.
    let final_state: AccelSearchState = checkpoint::load(&path).expect("checkpoint exists");
    std::fs::remove_file(&path).ok();
    assert!(final_state.is_done());
    assert_eq!(
        final_state.into_result().expect("found a design").best,
        full.best
    );
}

/// Scenario → search: the declarative registry resolves into runnable
/// jobs whose searches stay within the declared envelope.
#[test]
fn registered_scenario_runs_end_to_end() {
    let job = scenario::find("cifar-eyeriss")
        .expect("registered")
        .resolve()
        .expect("resolves");
    let model = CostModel::new();
    let mut cfg = AccelSearchConfig::quick(job.scenario.seed);
    cfg.threads = 2;
    let engine = CoSearchEngine::new(cfg.threads);
    let result = search_accelerator_with(
        &engine,
        &model,
        &job.networks,
        &job.constraint,
        &cfg,
        std::slice::from_ref(&job.baseline),
        None,
    );
    assert!(job.constraint.admits(&result.best.accelerator).is_ok());
    assert!(result.best.reward.is_finite());
    assert!(engine.cache_stats().entries > 0);
}

/// Cache persistence: a search on an engine warm-loaded from a previous
/// run's cache file recomputes nothing and returns identical results.
#[test]
fn persisted_cache_warm_loads_with_identical_results() {
    let model = CostModel::new();
    let envelope = ResourceConstraint::from_design(&naas_accel::baselines::nvdla_256());
    let net = models::cifar_resnet20();
    let nets = std::slice::from_ref(&net);
    let cfg = quick_cfg(88, 2);
    let path =
        std::env::temp_dir().join(format!("naas-engine-cachefile-{}.json", std::process::id()));

    let cold_engine = CoSearchEngine::new(cfg.threads);
    let cold = search_accelerator_with(&cold_engine, &model, nets, &envelope, &cfg, &[], None);
    cold_engine.cache().save_to(&path).expect("cache saves");

    let warm_engine = CoSearchEngine::new(cfg.threads);
    let absorbed = warm_engine.cache().load_from(&path).expect("cache loads");
    std::fs::remove_file(&path).ok();
    assert_eq!(absorbed as u64, cold_engine.cache_stats().entries);

    let warm = search_accelerator_with(&warm_engine, &model, nets, &envelope, &cfg, &[], None);
    assert_eq!(warm.best.accelerator, cold.best.accelerator);
    assert_eq!(warm.best.reward, cold.best.reward);
    assert_eq!(warm.history, cold.history);
    // Every lookup of the warm run was answered from the loaded file.
    assert_eq!(warm_engine.cache_stats().misses, 0);
}
