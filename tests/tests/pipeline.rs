//! End-to-end pipeline tests: every benchmark network can be costed,
//! mapped and searched on every baseline envelope.

use naas::baselines::heuristic_network_cost;
use naas::prelude::*;
use naas::{search_accelerator_seeded, AccelSearchConfig, MappingSearchConfig};
use naas_cost::CostModel;

/// All 6 paper benchmarks run with heuristic mappings on all 5 baselines
/// (or at least fail gracefully with a capacity verdict, never a panic).
#[test]
fn model_zoo_runs_on_every_baseline() {
    let model = CostModel::new();
    let nets: Vec<Network> = models::large_benchmarks()
        .into_iter()
        .chain(models::mobile_benchmarks())
        .collect();
    for accel in baselines::all() {
        for net in &nets {
            let cost = heuristic_network_cost(&model, net, &accel);
            let cost = cost.unwrap_or_else(|| {
                panic!("{} should run {} heuristically", accel.name(), net.name())
            });
            assert!(cost.cycles() > 0);
            assert!(cost.energy_pj() > 0.0);
            assert_eq!(cost.layers.len(), net.len());
        }
    }
}

/// Mapping search finds valid mappings for every layer of every mobile
/// benchmark on every baseline, and never does worse than the heuristic.
#[test]
fn mapping_search_beats_heuristic_everywhere() {
    let model = CostModel::new();
    let cfg = MappingSearchConfig::quick(17);
    for accel in baselines::all() {
        let net = models::squeezenet(224);
        let heuristic =
            heuristic_network_cost(&model, &net, &accel).expect("heuristic maps squeezenet");
        let searched = naas::mapping_search::network_mapping_search(&model, &net, &accel, &cfg)
            .expect("search maps squeezenet");
        assert!(
            searched.edp() <= heuristic.edp() * 1.0001,
            "search must not lose to its own seed on {}",
            accel.name()
        );
    }
}

/// The outer search returns designs inside the envelope with the claimed
/// per-network costs attached, for both benchmark sets.
#[test]
fn accel_search_respects_every_envelope() {
    let model = CostModel::new();
    for baseline in baselines::all() {
        let envelope = ResourceConstraint::from_design(&baseline);
        let net = models::mobilenet_v2(224);
        let result = search_accelerator_seeded(
            &model,
            std::slice::from_ref(&net),
            &envelope,
            &AccelSearchConfig::quick(23),
            std::slice::from_ref(&baseline),
        );
        envelope
            .admits(&result.best.accelerator)
            .unwrap_or_else(|e| panic!("{}: {e}", baseline.name()));
        assert_eq!(result.best.per_network.len(), 1);
        // Reward agrees with the attached cost.
        let edp = result.best.per_network[0].edp();
        assert!((result.best.reward - edp).abs() / edp < 1e-9);
    }
}

/// Warm-started search never loses to the incumbent design under the
/// same mapping budget — the contract behind every Fig. 5/6 comparison.
#[test]
fn warm_start_floors_the_search() {
    let model = CostModel::new();
    for baseline in [baselines::eyeriss(), baselines::nvdla_256()] {
        let envelope = ResourceConstraint::from_design(&baseline);
        let net = models::mnasnet(224);
        let cfg = AccelSearchConfig::quick(31);
        let result = search_accelerator_seeded(
            &model,
            std::slice::from_ref(&net),
            &envelope,
            &cfg,
            std::slice::from_ref(&baseline),
        );
        let seed_cost = naas::mapping_search::network_mapping_search(
            &model,
            &net,
            &baseline,
            &MappingSearchConfig {
                seed: cfg.seed.wrapping_mul(1_000_003),
                ..cfg.mapping
            },
        )
        .expect("baseline maps mnasnet");
        assert!(
            result.best.reward <= seed_cost.edp() * 1.0001,
            "{}: search lost to its warm start",
            baseline.name()
        );
    }
}

/// EDP factorizes: reward == cycles × energy_nJ at every level of
/// aggregation.
#[test]
fn edp_is_consistent_across_aggregation_levels() {
    let model = CostModel::new();
    let accel = baselines::nvdla_1024();
    let net = models::cifar_resnet20();
    let cost = heuristic_network_cost(&model, &net, &accel).expect("maps");
    let manual: f64 = cost.cycles() as f64 * cost.energy_nj();
    assert!((cost.edp() - manual).abs() / manual < 1e-12);
    for layer in &cost.layers {
        let manual = layer.cycles as f64 * layer.energy_pj / 1000.0;
        assert!((layer.edp() - manual).abs() / manual.max(1e-12) < 1e-12);
    }
}
