//! Smoke-budget checks of each paper artifact's *qualitative* claim,
//! via the shared experiment runners in `naas-bench`. Full-budget numbers
//! live in EXPERIMENTS.md; these tests pin the direction of every result
//! so regressions in the model or search are caught in CI.

use naas_bench::budget::{Budget, Preset};
use naas_bench::experiments::*;

fn smoke() -> Budget {
    Budget::new(Preset::Smoke)
}

#[test]
fn fig4_evolution_population_improves() {
    // The convergence claim needs enough generations to be non-flaky:
    // use the quick preset (8 iterations) rather than smoke (3).
    let out = fig4::run(&Budget::new(Preset::Quick), 11);
    assert!(out.naas_improves(), "NAAS population mean must decrease");
    // Random search's population mean should stay well above NAAS's
    // final population mean.
    let last = out.points.last().expect("nonempty series");
    assert!(
        last.random_mean > last.naas_mean,
        "random mean {} should exceed NAAS mean {}",
        last.random_mean,
        last.naas_mean
    );
}

#[test]
fn fig5_scenario_never_loses_to_baseline_edp() {
    // One mobile scenario at smoke budget (the full five-scenario run is
    // the experiment binary's job).
    let model = naas_cost::CostModel::new();
    let budget = smoke();
    let nets = [naas_ir::models::squeezenet(224)];
    let s = fig5::run_scenario(&model, &naas_accel::baselines::eyeriss(), &nets, &budget, 3);
    assert!(
        s.rows[0].edp_reduction >= 1.0,
        "NAAS lost to Eyeriss: {:?}",
        s.rows[0]
    );
}

#[test]
fn fig7_showcases_have_valid_cards() {
    let out = fig7::run(&smoke(), 5);
    assert_eq!(out.showcases.len(), 3);
    for s in &out.showcases {
        assert!(s.design_card.contains("Dataflow"));
        assert!((1..=3).contains(&s.ndim));
    }
}

#[test]
fn fig8_naas_at_least_matches_sizing_only() {
    // NAAS's space contains the sizing-only space, but needs a workable
    // search budget to cover it — the quick preset suffices; smoke's
    // 5×3 outer loop does not (13 knobs vs sizing-only's 4).
    let out = fig8::run(&Budget::new(Preset::Quick), 7);
    assert_eq!(out.bars.len(), 4);
    for bar in &out.bars {
        assert!(
            bar.naas_reduction >= bar.sizing_only_reduction * 0.8,
            "NAAS should not materially lose to sizing-only: {bar:?}"
        );
    }
}

#[test]
fn fig10_joint_point_dominates_or_matches() {
    let out = fig10::run(&smoke(), 2);
    assert!(out.points.len() >= 3);
    assert!(out.joint_improves(), "{:?}", out.points);
    // NAAS accel-compiler must improve on the Eyeriss reference.
    let accel = out.point("NAAS (accel-compiler)").expect("point exists");
    assert!(accel.normalized_edp <= 1.0);
}

#[test]
fn table3_naas_wins_edp() {
    let out = table3::run(&smoke(), 4);
    assert!(out.naas_wins_edp(), "{}", out.render());
    // The win must come with a latency win (the paper's mechanism).
    assert!(out.rows[1].latency_cycles < out.rows[0].latency_cycles);
}

#[test]
fn table4_cost_ordering() {
    let out = table4::run(&smoke(), 1);
    assert!(out.saves_120x_vs_nasaic());
    assert!(out.measured_co_search_gd < 0.25);
    assert!(out.measured_evals_per_second > 1000.0);
}
