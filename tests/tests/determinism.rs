//! Bit-for-bit reproducibility of every search entry point: the whole
//! repository is seeded, so identical seeds must give identical results
//! (including across the thread-parallel outer loop).

use naas::baselines::{
    search_nasaic_allocation, search_nhas, search_sizing_only, NasaicConfig, NhasConfig,
    SizingOnlyConfig,
};
use naas::prelude::*;
use naas::{
    search_accelerator_seeded, search_joint, AccelSearchConfig, JointConfig, MappingSearchConfig,
};
use naas_cost::CostModel;
use naas_nas::AccuracyModel;

#[test]
fn accel_search_is_deterministic_across_thread_counts() {
    let model = CostModel::new();
    let baseline = baselines::eyeriss();
    let envelope = ResourceConstraint::from_design(&baseline);
    let net = models::squeezenet(224);
    let mut cfg = AccelSearchConfig::quick(404);
    cfg.threads = 1;
    let single = search_accelerator_seeded(
        &model,
        std::slice::from_ref(&net),
        &envelope,
        &cfg,
        std::slice::from_ref(&baseline),
    );
    cfg.threads = 4;
    let multi = search_accelerator_seeded(
        &model,
        std::slice::from_ref(&net),
        &envelope,
        &cfg,
        std::slice::from_ref(&baseline),
    );
    assert_eq!(single.best.accelerator, multi.best.accelerator);
    assert_eq!(single.best.reward, multi.best.reward);
    assert_eq!(single.history, multi.history);
}

#[test]
fn mapping_search_reproduces() {
    let model = CostModel::new();
    let accel = baselines::nvdla_256();
    let layer = models::vgg16(224).layers()[3].clone();
    let cfg = MappingSearchConfig::quick(99);
    let a = naas::search_layer_mapping(&model, &layer, &accel, &cfg).expect("maps");
    let b = naas::search_layer_mapping(&model, &layer, &accel, &cfg).expect("maps");
    assert_eq!(a.mapping, b.mapping);
    assert_eq!(a.cost, b.cost);
}

#[test]
fn sizing_only_and_nhas_reproduce() {
    let model = CostModel::new();
    let base = baselines::eyeriss();
    let envelope = ResourceConstraint::from_design(&base);
    let nets = [models::mnasnet(224)];
    let cfg = SizingOnlyConfig::quick(7);
    let a = search_sizing_only(&model, &nets, &base, &envelope, &cfg).expect("finds");
    let b = search_sizing_only(&model, &nets, &base, &envelope, &cfg).expect("finds");
    assert_eq!(a.accelerator, b.accelerator);

    let acc = AccuracyModel::default();
    let ncfg = NhasConfig::quick(7);
    let a = search_nhas(&model, &base, &envelope, &acc, &ncfg).expect("finds");
    let b = search_nhas(&model, &base, &envelope, &acc, &ncfg).expect("finds");
    assert_eq!(a.subnet, b.subnet);
    assert_eq!(a.edp, b.edp);
}

#[test]
fn nasaic_grid_search_reproduces() {
    let model = CostModel::new();
    let net = models::nasaic_cifar_net();
    let a = search_nasaic_allocation(&model, &net, &NasaicConfig::default()).expect("finds");
    let b = search_nasaic_allocation(&model, &net, &NasaicConfig::default()).expect("finds");
    assert_eq!(a, b);
}

#[test]
fn joint_search_reproduces() {
    let model = CostModel::new();
    let envelope = ResourceConstraint::from_design(&baselines::shidiannao());
    let cfg = JointConfig::quick(3);
    let acc = AccuracyModel::default();
    let a = search_joint(&model, &envelope, &acc, &cfg).expect("finds");
    let b = search_joint(&model, &envelope, &acc, &cfg).expect("finds");
    assert_eq!(a.subnet, b.subnet);
    assert_eq!(a.accelerator, b.accelerator);
    assert_eq!(a.edp, b.edp);
}
