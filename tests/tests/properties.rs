//! Property-based invariants spanning the whole stack, driven by
//! proptest: decoders are total, the cost model respects physical
//! bounds, and costs move monotonically with resources.

use naas_accel::{baselines, Accelerator, ResourceConstraint};
use naas_cost::{CostModel, Tensor};
use naas_ir::ConvSpec;
use naas_mapping::Mapping;
use naas_opt::{EncodingScheme, HardwareEncoder, MappingEncoder};
use proptest::prelude::*;

/// Random-but-valid conv layers: channels, spatial size, kernel, stride.
fn arb_layer() -> impl Strategy<Value = ConvSpec> {
    (
        1u64..=256, // in channels
        1u64..=256, // out channels
        8u64..=64,  // input spatial
        prop_oneof![Just(1u64), Just(3), Just(5), Just(7)],
        1u64..=2, // stride
    )
        .prop_filter_map("kernel must fit padded input", |(c, k, hw, ks, s)| {
            let pad = ks / 2;
            ConvSpec::conv2d("prop", c, k, (hw, hw), (ks, ks), s, pad).ok()
        })
}

fn arb_baseline() -> impl Strategy<Value = Accelerator> {
    prop_oneof![
        Just(baselines::eyeriss()),
        Just(baselines::nvdla_256()),
        Just(baselines::nvdla_1024()),
        Just(baselines::edge_tpu()),
        Just(baselines::shidiannao()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Mapping decode is total and structurally valid for any vector.
    #[test]
    fn mapping_decode_total(
        layer in arb_layer(),
        accel in arb_baseline(),
        theta in proptest::collection::vec(0.0f64..=1.0, 42),
    ) {
        let enc = MappingEncoder::new(accel.connectivity().ndim(), EncodingScheme::Importance);
        let m = enc.decode(&theta[..enc.dim()], &layer, accel.connectivity());
        prop_assert!(m.validate(&accel).is_ok());
        // And the cost model either prices it or reports capacity.
        let model = CostModel::new();
        match model.evaluate(&layer, &accel, &m) {
            Ok(cost) => {
                prop_assert!(cost.cycles > 0);
                prop_assert!(cost.energy_pj > 0.0);
                prop_assert!(cost.utilization > 0.0 && cost.utilization <= 1.0 + 1e-9);
            }
            Err(naas_cost::CostError::Capacity(_)) => {}
            Err(e) => prop_assert!(false, "unexpected error {e}"),
        }
    }

    /// Hardware decode always lands inside the envelope.
    #[test]
    fn hardware_decode_respects_envelope(
        base in arb_baseline(),
        theta in proptest::collection::vec(0.0f64..=1.0, 13),
    ) {
        let envelope = ResourceConstraint::from_design(&base);
        let enc = HardwareEncoder::new(envelope.clone(), EncodingScheme::Importance);
        if let Some(design) = enc.decode(&theta) {
            prop_assert!(envelope.admits(&design).is_ok());
        }
    }

    /// The cost model never beats the compute bound and never moves less
    /// data than the tensors contain.
    #[test]
    fn cost_respects_physical_bounds(layer in arb_layer(), accel in arb_baseline()) {
        let model = CostModel::new();
        let mapping = Mapping::balanced(&layer, &accel);
        if let Ok(cost) = model.evaluate(&layer, &accel, &mapping) {
            let compute_floor = layer.macs().div_ceil(accel.pe_count());
            prop_assert!(u128::from(cost.cycles) >= u128::from(compute_floor),
                "cycles {} below compute floor {}", cost.cycles, compute_floor);
            let w = cost.traffic.tensor(Tensor::Weights).dram_bytes;
            prop_assert!(w >= layer.weight_elems() as f64);
            let mac_energy = layer.macs() as f64 * model.energy().mac_pj;
            prop_assert!(cost.energy_pj >= mac_energy);
        }
    }

    /// More bandwidth never increases latency; energy is unaffected by
    /// bandwidth (it's a per-access model).
    #[test]
    fn bandwidth_monotonicity(layer in arb_layer()) {
        use naas_accel::{ArchitecturalSizing, Connectivity};
        use naas_ir::Dim;
        let model = CostModel::new();
        let slow = Accelerator::new(
            "slow",
            ArchitecturalSizing::new(512, 256 * 1024, 8.0, 2.0),
            Connectivity::grid(8, 8, Dim::K, Dim::C).expect("static"),
        );
        let fast = Accelerator::new(
            "fast",
            ArchitecturalSizing::new(512, 256 * 1024, 32.0, 8.0),
            Connectivity::grid(8, 8, Dim::K, Dim::C).expect("static"),
        );
        let mapping = Mapping::balanced(&layer, &slow);
        if let (Ok(s), Ok(f)) = (
            model.evaluate(&layer, &slow, &mapping),
            model.evaluate(&layer, &fast, &mapping),
        ) {
            prop_assert!(f.cycles <= s.cycles);
            prop_assert!((f.energy_pj - s.energy_pj).abs() < 1e-6 * s.energy_pj.max(1.0));
        }
    }

    /// Finer temporal tiling can only shrink the per-PE tile.
    #[test]
    fn tiling_shrinks_pe_tile(
        layer in arb_layer(),
        accel in arb_baseline(),
        extra in 2u64..=8,
    ) {
        use naas_ir::Dim;
        let coarse = Mapping::balanced(&layer, &accel);
        let mut fine = coarse.clone();
        // Double-tile the K dimension at the outermost level.
        let mut levels: Vec<_> = fine.levels().to_vec();
        levels[0].trips[Dim::K] = levels[0].trips[Dim::K].saturating_mul(extra);
        fine = Mapping::new(levels, *fine.pe_order());
        let ct = coarse.pe_tile(&layer, accel.connectivity());
        let ft = fine.pe_tile(&layer, accel.connectivity());
        prop_assert!(ft[Dim::K] <= ct[Dim::K]);
        for d in naas_ir::DIMS {
            prop_assert!(ft[d] <= ct[d]);
        }
    }

    /// The accuracy surrogate is bounded and monotone in resolution for
    /// any genotype.
    #[test]
    fn accuracy_bounded_and_monotone(
        width in 0usize..3,
        d1 in 2usize..=4, d2 in 2usize..=4, d3 in 4usize..=6, d4 in 2usize..=4,
        r in 0usize..3,
    ) {
        use naas_nas::{AccuracyModel, Subnet};
        let m = AccuracyModel::default();
        let mk = |res: u64| Subnet {
            width_idx: width,
            depths: [d1, d2, d3, d4],
            ratio_idx: [r; 4],
            resolution: res,
        };
        let lo = m.predict(&mk(128));
        let hi = m.predict(&mk(256));
        prop_assert!(lo <= hi + 1e-9);
        prop_assert!((50.0..=80.0).contains(&lo));
        prop_assert!((50.0..=80.0).contains(&hi));
    }
}
