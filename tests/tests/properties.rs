//! Property-based invariants spanning the whole stack, driven by
//! proptest: decoders are total, the cost model respects physical
//! bounds, and costs move monotonically with resources.

use naas_accel::{baselines, Accelerator, ResourceConstraint};
use naas_cost::{CostModel, Tensor};
use naas_ir::ConvSpec;
use naas_mapping::Mapping;
use naas_opt::{EncodingScheme, HardwareEncoder, MappingEncoder};
use proptest::prelude::*;

/// Random-but-valid conv layers: channels, spatial size, kernel, stride.
fn arb_layer() -> impl Strategy<Value = ConvSpec> {
    (
        1u64..=256, // in channels
        1u64..=256, // out channels
        8u64..=64,  // input spatial
        prop_oneof![Just(1u64), Just(3), Just(5), Just(7)],
        1u64..=2, // stride
    )
        .prop_filter_map("kernel must fit padded input", |(c, k, hw, ks, s)| {
            let pad = ks / 2;
            ConvSpec::conv2d("prop", c, k, (hw, hw), (ks, ks), s, pad).ok()
        })
}

fn arb_baseline() -> impl Strategy<Value = Accelerator> {
    prop_oneof![
        Just(baselines::eyeriss()),
        Just(baselines::nvdla_256()),
        Just(baselines::nvdla_1024()),
        Just(baselines::edge_tpu()),
        Just(baselines::shidiannao()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Mapping decode is total and structurally valid for any vector.
    #[test]
    fn mapping_decode_total(
        layer in arb_layer(),
        accel in arb_baseline(),
        theta in proptest::collection::vec(0.0f64..=1.0, 42),
    ) {
        let enc = MappingEncoder::new(accel.connectivity().ndim(), EncodingScheme::Importance);
        let m = enc.decode(&theta[..enc.dim()], &layer, accel.connectivity());
        prop_assert!(m.validate(&accel).is_ok());
        // And the cost model either prices it or reports capacity.
        let model = CostModel::new();
        match model.evaluate(&layer, &accel, &m) {
            Ok(cost) => {
                prop_assert!(cost.cycles > 0);
                prop_assert!(cost.energy_pj > 0.0);
                prop_assert!(cost.utilization > 0.0 && cost.utilization <= 1.0 + 1e-9);
            }
            Err(naas_cost::CostError::Capacity(_)) => {}
            Err(e) => prop_assert!(false, "unexpected error {e}"),
        }
    }

    /// Hardware decode always lands inside the envelope.
    #[test]
    fn hardware_decode_respects_envelope(
        base in arb_baseline(),
        theta in proptest::collection::vec(0.0f64..=1.0, 13),
    ) {
        let envelope = ResourceConstraint::from_design(&base);
        let enc = HardwareEncoder::new(envelope.clone(), EncodingScheme::Importance);
        if let Some(design) = enc.decode(&theta) {
            prop_assert!(envelope.admits(&design).is_ok());
        }
    }

    /// The cost model never beats the compute bound and never moves less
    /// data than the tensors contain.
    #[test]
    fn cost_respects_physical_bounds(layer in arb_layer(), accel in arb_baseline()) {
        let model = CostModel::new();
        let mapping = Mapping::balanced(&layer, &accel);
        if let Ok(cost) = model.evaluate(&layer, &accel, &mapping) {
            let compute_floor = layer.macs().div_ceil(accel.pe_count());
            prop_assert!(u128::from(cost.cycles) >= u128::from(compute_floor),
                "cycles {} below compute floor {}", cost.cycles, compute_floor);
            let w = cost.traffic.tensor(Tensor::Weights).dram_bytes;
            prop_assert!(w >= layer.weight_elems() as f64);
            let mac_energy = layer.macs() as f64 * model.energy().mac_pj;
            prop_assert!(cost.energy_pj >= mac_energy);
        }
    }

    /// More bandwidth never increases latency; energy is unaffected by
    /// bandwidth (it's a per-access model).
    #[test]
    fn bandwidth_monotonicity(layer in arb_layer()) {
        use naas_accel::{ArchitecturalSizing, Connectivity};
        use naas_ir::Dim;
        let model = CostModel::new();
        let slow = Accelerator::new(
            "slow",
            ArchitecturalSizing::new(512, 256 * 1024, 8.0, 2.0),
            Connectivity::grid(8, 8, Dim::K, Dim::C).expect("static"),
        );
        let fast = Accelerator::new(
            "fast",
            ArchitecturalSizing::new(512, 256 * 1024, 32.0, 8.0),
            Connectivity::grid(8, 8, Dim::K, Dim::C).expect("static"),
        );
        let mapping = Mapping::balanced(&layer, &slow);
        if let (Ok(s), Ok(f)) = (
            model.evaluate(&layer, &slow, &mapping),
            model.evaluate(&layer, &fast, &mapping),
        ) {
            prop_assert!(f.cycles <= s.cycles);
            prop_assert!((f.energy_pj - s.energy_pj).abs() < 1e-6 * s.energy_pj.max(1.0));
        }
    }

    /// Finer temporal tiling can only shrink the per-PE tile.
    #[test]
    fn tiling_shrinks_pe_tile(
        layer in arb_layer(),
        accel in arb_baseline(),
        extra in 2u64..=8,
    ) {
        use naas_ir::Dim;
        let coarse = Mapping::balanced(&layer, &accel);
        let mut fine = coarse.clone();
        // Double-tile the K dimension at the outermost level.
        let mut levels: Vec<_> = fine.levels().to_vec();
        levels[0].trips[Dim::K] = levels[0].trips[Dim::K].saturating_mul(extra);
        fine = Mapping::new(levels, *fine.pe_order());
        let ct = coarse.pe_tile(&layer, accel.connectivity());
        let ft = fine.pe_tile(&layer, accel.connectivity());
        prop_assert!(ft[Dim::K] <= ct[Dim::K]);
        for d in naas_ir::DIMS {
            prop_assert!(ft[d] <= ct[d]);
        }
    }

    /// Sub-candidate `joint_unit` merging is order-independent: a NAS
    /// generation's units completing in any adversarial order — merged
    /// by unit index, exactly once each — and a memoized evaluator that
    /// scores each distinct subnet once (the coordinator's per-candidate
    /// dedup) both reproduce the in-order trajectory exactly.
    #[test]
    fn joint_unit_merge_is_order_independent(
        seed in 0u64..1_000,
        shuffle_seed in 0u64..1_000_000_007,
    ) {
        use naas_nas::{AccuracyModel, NasConfig, Subnet, SubnetSearchDriver};
        let cfg = NasConfig {
            population: 6,
            generations: 3,
            seed,
            ..NasConfig::default()
        };
        let accuracy = AccuracyModel::default();
        // A pure synthetic unit evaluator (the merge invariant only
        // needs purity, which real evaluations have by content-derived
        // seeding); `None` models infeasible units.
        let unit_score = |s: &Subnet| -> Option<f64> {
            let depth: usize = s.depths.iter().sum();
            if (depth + s.width_idx + s.ratio_idx[0]).is_multiple_of(7) {
                return None;
            }
            Some(s.resolution as f64 * (1.0 + s.width_idx as f64) / depth as f64)
        };

        let mut in_order = SubnetSearchDriver::new(&cfg, &accuracy);
        let mut shuffled = SubnetSearchDriver::new(&cfg, &accuracy);
        let mut memoized = SubnetSearchDriver::new(&cfg, &accuracy);
        let mut memo: Vec<(Subnet, Option<f64>)> = Vec::new();
        let mut rng = shuffle_seed | 1;
        while !in_order.is_done() {
            let pending = in_order.pending().to_vec();
            prop_assert_eq!(&pending[..], shuffled.pending());
            prop_assert_eq!(&pending[..], memoized.pending());

            let results: Vec<Option<f64>> = pending.iter().map(unit_score).collect();
            in_order.absorb(&results);

            // Units complete in an adversarial order; each lands in its
            // slot exactly once and the merged vector is identical.
            let mut order: Vec<usize> = (0..pending.len()).collect();
            for i in (1..order.len()).rev() {
                rng ^= rng << 13;
                rng ^= rng >> 7;
                rng ^= rng << 17;
                order.swap(i, (rng % (i as u64 + 1)) as usize);
            }
            let mut merged: Vec<Option<Option<f64>>> = vec![None; pending.len()];
            for idx in order {
                prop_assert!(merged[idx].is_none(), "a unit must merge exactly once");
                merged[idx] = Some(unit_score(&pending[idx]));
            }
            let out_of_order: Vec<Option<f64>> = merged
                .into_iter()
                .map(|r| r.expect("every unit merged"))
                .collect();
            prop_assert_eq!(&results, &out_of_order);
            shuffled.absorb(&out_of_order);

            // The coordinator's dedup: score each distinct subnet once.
            let deduped: Vec<Option<f64>> = pending
                .iter()
                .map(|s| {
                    if let Some((_, score)) = memo.iter().find(|(m, _)| m == s) {
                        *score
                    } else {
                        let score = unit_score(s);
                        memo.push((*s, score));
                        score
                    }
                })
                .collect();
            prop_assert_eq!(&results, &deduped);
            memoized.absorb(&deduped);
        }
        prop_assert!(shuffled.is_done() && memoized.is_done());
        let reference = in_order.finish();
        prop_assert_eq!(&reference, &shuffled.finish());
        prop_assert_eq!(&reference, &memoized.finish());
    }

    /// The accuracy surrogate is bounded and monotone in resolution for
    /// any genotype.
    #[test]
    fn accuracy_bounded_and_monotone(
        width in 0usize..3,
        d1 in 2usize..=4, d2 in 2usize..=4, d3 in 4usize..=6, d4 in 2usize..=4,
        r in 0usize..3,
    ) {
        use naas_nas::{AccuracyModel, Subnet};
        let m = AccuracyModel::default();
        let mk = |res: u64| Subnet {
            width_idx: width,
            depths: [d1, d2, d3, d4],
            ratio_idx: [r; 4],
            resolution: res,
        };
        let lo = m.predict(&mk(128));
        let hi = m.predict(&mk(256));
        prop_assert!(lo <= hi + 1e-9);
        prop_assert!((50.0..=80.0).contains(&lo));
        prop_assert!((50.0..=80.0).contains(&hi));
    }
}

/// Reactor seam invariants: the sample/commit decomposition the overlap
/// coordinator speculates through must be exactly-once, refuse stale or
/// mismatched commits, and replay deterministically — the properties
/// that make a banked speculation safe to commit and a rolled-back one
/// impossible to merge twice. Engine-backed, so fewer cases.
mod reactor_seam {
    use super::*;
    use naas::{
        accel_commit_generation, accel_sample_generation, accel_search_init, CandidateEval,
        CoSearchEngine,
    };
    use naas_cost::CostModel;

    fn seam_cfg(seed: u64) -> naas::AccelSearchConfig {
        let mut cfg = naas::AccelSearchConfig::quick(seed);
        cfg.population = 4;
        cfg.iterations = 2;
        cfg.mapping = naas::MappingSearchConfig::quick(7);
        cfg.threads = 1;
        cfg
    }

    fn fixture() -> (naas_accel::ResourceConstraint, Vec<naas_ir::Network>) {
        let scenario = naas_engine::scenario::find("cifar-eyeriss").expect("registered");
        let job = scenario.resolve().expect("scenario resolves");
        (job.constraint, job.networks)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Driving a whole search through sample → evaluate-each-slot-
        /// exactly-once → commit reproduces `accel_search_step`'s full
        /// state: same optimizer distribution, same RNG consumption,
        /// same history, same evaluation counters.
        #[test]
        fn sample_commit_seam_equals_step(seed in 0u64..1_000) {
            let (constraint, networks) = fixture();
            let networks = &networks[..1];
            let cfg = seam_cfg(seed);
            let model = CostModel::new();

            let engine = CoSearchEngine::new(1);
            let mut via_step = accel_search_init(&constraint, &cfg, &[]);
            while naas::accel_search_step(&engine, &model, networks, &mut via_step) {}

            let engine = CoSearchEngine::new(1);
            let mut via_seam = accel_search_init(&constraint, &cfg, &[]);
            while let Some(sampled) = accel_sample_generation(&mut via_seam) {
                let results: Vec<Option<CandidateEval>> = sampled
                    .slots
                    .iter()
                    .map(|(_, accel)| {
                        naas::accel_search::evaluate_candidate(
                            &engine, &model, accel, networks, &cfg.mapping, cfg.reward,
                        )
                    })
                    .collect();
                accel_commit_generation(&mut via_seam, sampled, results);
            }

            via_step.cache_stats = Default::default();
            via_seam.cache_stats = Default::default();
            prop_assert_eq!(via_step, via_seam);
        }

        /// No premature (or repeated) commit: a generation sampled
        /// before the state advanced, a second commit of an
        /// already-committed generation, and a result vector of the
        /// wrong arity are all refused loudly — the seam cannot be
        /// tricked into merging a speculation twice or early.
        #[test]
        fn stale_double_or_mismatched_commits_are_refused(seed in 0u64..1_000) {
            let (constraint, networks) = fixture();
            let _ = networks;
            let cfg = seam_cfg(seed);
            let mut state = accel_search_init(&constraint, &cfg, &[]);

            // A fork's sample of generation 0 (determinism makes it
            // equal to the real one — that is the bank-hit criterion).
            let mut fork = state.clone();
            let stale = accel_sample_generation(&mut fork).expect("fresh search samples");

            let sampled = accel_sample_generation(&mut state).expect("fresh search samples");
            prop_assert_eq!(&stale, &sampled);
            let n = sampled.slots.len();

            // Wrong arity: refused before anything merges.
            let mut probe = state.clone();
            let short = sampled.clone();
            let arity = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
                accel_commit_generation(&mut probe, short, vec![None; n + 1]);
            }));
            prop_assert!(arity.is_err(), "arity mismatch must panic");

            // The real commit — infeasible everywhere is a legal result.
            accel_commit_generation(&mut state, sampled, vec![None; n]);

            // Committing the stale generation again (the
            // rolled-back-speculation-merged-twice shape): refused.
            let mut advanced = state.clone();
            let double = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
                accel_commit_generation(&mut advanced, stale, vec![None; n]);
            }));
            prop_assert!(double.is_err(), "a stale generation must not commit twice");
        }

        /// The bank-hit criterion is sound: two states fed identical
        /// commits stay equal and draw identical next samples — so a
        /// speculation whose forked sample matches the real one has, by
        /// construction, evaluated exactly the real generation.
        #[test]
        fn equal_commits_replay_to_equal_forks(seed in 0u64..1_000) {
            let (constraint, networks) = fixture();
            let networks = &networks[..1];
            let cfg = seam_cfg(seed);
            let model = CostModel::new();
            let engine = CoSearchEngine::new(1);

            let mut real = accel_search_init(&constraint, &cfg, &[]);
            let mut fork = real.clone();
            let s_real = accel_sample_generation(&mut real).expect("fresh search samples");
            let s_fork = accel_sample_generation(&mut fork).expect("fresh search samples");
            prop_assert_eq!(&s_real, &s_fork);

            // One real evaluation in the mix (the rest infeasible), so
            // the tell folds both reward shapes.
            let mut results: Vec<Option<CandidateEval>> = vec![None; s_real.slots.len()];
            if let Some((_, accel)) = s_real.slots.first() {
                results[0] = naas::accel_search::evaluate_candidate(
                    &engine, &model, accel, networks, &cfg.mapping, cfg.reward,
                );
            }
            accel_commit_generation(&mut real, s_real, results.clone());
            accel_commit_generation(&mut fork, s_fork, results);
            prop_assert_eq!(&real, &fork);

            let n_real = accel_sample_generation(&mut real);
            let n_fork = accel_sample_generation(&mut fork);
            prop_assert_eq!(n_real, n_fork);
        }
    }
}
