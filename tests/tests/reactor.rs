//! Reactor conformance suite: the barrier-free overlap coordinator
//! (`--overlap on`) must be **bit-identical** to the barrier scheduler
//! — which is in turn bit-identical to the single-process search — at
//! any completion order, under kill/restart, across accel, joint and
//! pareto modes. Overlap may only change wall time and counters, never
//! one bit of the trajectory.
//!
//! The accounting invariant checked throughout: `asks == hits +
//! rollbacks` once a run completes — every speculative generation is
//! either committed (its forked sample matched the real one) or rolled
//! back, never both and never silently dropped.

use naas::service::{BatchEvalService, ServiceConfig, ServiceServer};
use naas::{
    accel_search_init, AccelSearchConfig, CoSearchEngine, DistributedCoordinator,
    MappingSearchConfig, OverlapStats,
};
use naas_cost::CostModel;
use naas_engine::scenario;
use naas_ir::Network;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener};
use std::sync::Arc;

/// Spawns an in-process TCP worker — the exact serving stack behind
/// `naas-search worker` — with an injected per-candidate evaluation
/// delay (microseconds, serialized), and returns its address.
fn spawn_worker(threads: usize, eval_delay_us: u64) -> SocketAddr {
    let service = BatchEvalService::new(ServiceConfig {
        threads,
        mapping: MappingSearchConfig::quick(7),
        cache_file: None,
        cache_cap: 0,
        eval_delay_us,
    })
    .expect("no cache file to load");
    let server = Arc::new(ServiceServer::start(Arc::new(service)));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        let _ = server.serve_listener(listener);
    });
    addr
}

/// A worker that answers `fail_after` requests, then "crashes" (drops
/// its listener and every connection mid-call) and is immediately
/// "restarted": a fresh serving stack — cold cache, new process state —
/// rebinds the same address and serves indefinitely.
fn spawn_restartable_worker(fail_after: usize) -> SocketAddr {
    let service = BatchEvalService::new(ServiceConfig {
        threads: 1,
        mapping: MappingSearchConfig::quick(7),
        cache_file: None,
        cache_cap: 0,
        eval_delay_us: 0,
    })
    .expect("no cache file to load");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        let mut answered = 0usize;
        'crash: for stream in listener.incoming() {
            let Ok(stream) = stream else { break };
            let mut reader = BufReader::new(match stream.try_clone() {
                Ok(clone) => clone,
                Err(_) => break,
            });
            let mut writer = stream;
            loop {
                let mut line = String::new();
                match reader.read_line(&mut line) {
                    Ok(0) | Err(_) => break,
                    Ok(_) => {}
                }
                if answered >= fail_after {
                    break 'crash;
                }
                answered += 1;
                let response = service.respond(line.trim_end());
                if writeln!(writer, "{response}")
                    .and_then(|_| writer.flush())
                    .is_err()
                {
                    break;
                }
            }
        }
        drop(listener);
        drop(service);
        let listener = loop {
            match TcpListener::bind(addr) {
                Ok(listener) => break listener,
                Err(_) => std::thread::sleep(std::time::Duration::from_millis(10)),
            }
        };
        let fresh = BatchEvalService::new(ServiceConfig {
            threads: 1,
            mapping: MappingSearchConfig::quick(7),
            cache_file: None,
            cache_cap: 0,
            eval_delay_us: 0,
        })
        .expect("no cache file to load");
        let server = Arc::new(ServiceServer::start(Arc::new(fresh)));
        let _ = server.serve_listener(listener);
    });
    addr
}

fn scenario_fixture() -> (naas_engine::Scenario, Vec<Network>) {
    let scenario = scenario::find("cifar-eyeriss").expect("registered scenario");
    let job = scenario.resolve().expect("scenario resolves");
    (scenario, job.networks)
}

fn search_cfg(seed: u64) -> AccelSearchConfig {
    let mut cfg = AccelSearchConfig::quick(seed);
    cfg.mapping = MappingSearchConfig::quick(7);
    cfg.threads = 1;
    cfg
}

/// Runs the search to completion and returns the *full* final state —
/// the RNG-equivalence currency: two states are `==` only if the
/// optimizer distributions, decoded populations, histories, archives
/// and iteration counters all match, i.e. the RNG streams were
/// consumed identically. `cache_stats` is zeroed first: speculative
/// evaluations legitimately warm caches differently, and the paper's
/// invariant is about the trajectory, not the memo hit rate.
fn run_local_state(cfg: &AccelSearchConfig, networks: &[Network]) -> naas::AccelSearchState {
    let scenario = scenario::find("cifar-eyeriss").unwrap();
    let job = scenario.resolve().unwrap();
    let engine = CoSearchEngine::new(cfg.threads);
    let model = CostModel::new();
    let mut state = accel_search_init(&job.constraint, cfg, &[]);
    while naas::accel_search_step(&engine, &model, networks, &mut state) {}
    state.cache_stats = Default::default();
    state
}

/// [`run_local_state`] over a coordinator (barrier or overlap,
/// whatever it was configured for).
fn run_distributed_state(
    cfg: &AccelSearchConfig,
    networks: &[Network],
    coordinator: &mut DistributedCoordinator,
) -> naas::AccelSearchState {
    let scenario = scenario::find("cifar-eyeriss").unwrap();
    let job = scenario.resolve().unwrap();
    let engine = CoSearchEngine::new(cfg.threads);
    let model = CostModel::new();
    let mut state = accel_search_init(&job.constraint, cfg, &[]);
    while coordinator.step(&engine, &model, networks, &mut state) {}
    state.cache_stats = Default::default();
    state
}

/// The reactor's books must balance: every speculative ask ends as
/// exactly one of hit or rollback.
fn assert_spec_accounting(stats: OverlapStats, context: &str) {
    assert_eq!(
        stats.asks,
        stats.hits + stats.rollbacks,
        "{context}: every ask must resolve to a hit or a rollback, got {stats:?}"
    );
}

/// Connects an overlap coordinator over `addrs` with the aggressive
/// scheduling the conformance suite uses to force adversarial
/// interleavings (tiny chunks, 2 ms steal deadline).
fn overlap_coordinator(
    addrs: &[String],
    scenario: &naas_engine::Scenario,
) -> DistributedCoordinator {
    let mut coordinator =
        DistributedCoordinator::connect(addrs, scenario).expect("fleet reachable");
    coordinator.set_microshards(5);
    coordinator.set_steal_deadline(std::time::Duration::from_millis(2));
    coordinator.set_overlap(true);
    coordinator
}

/// The tentpole acceptance criterion, permutation-fuzzed: heterogeneous
/// per-worker delays drive the overlap reactor through adversarial
/// completion orders — pool self-scheduling, steals, speculative
/// re-issue, spec installs racing the straggler — across seeds, and
/// the *full final state* must equal the single-process one in every
/// ordering. Equal states mean equal RNG streams: the speculative fork
/// never leaked a single draw into the real trajectory.
#[test]
fn overlap_search_is_bit_identical_across_adversarial_orders() {
    let (scenario, networks) = scenario_fixture();
    for (seed, delays) in [
        (211u64, [0u64, 2_000]),
        (223, [2_000, 0]),
        (227, [900, 300]),
    ] {
        let cfg = search_cfg(seed);
        let local = run_local_state(&cfg, &networks);

        let addrs = vec![
            spawn_worker(1, delays[0]).to_string(),
            spawn_worker(1, delays[1]).to_string(),
        ];
        let mut coordinator = overlap_coordinator(&addrs, &scenario);
        let overlapped = run_distributed_state(&cfg, &networks, &mut coordinator);

        assert_eq!(
            overlapped, local,
            "seed {seed}, delays {delays:?}: overlap must not change one bit of the state"
        );
        assert_spec_accounting(
            coordinator.overlap_stats(),
            &format!("seed {seed}, delays {delays:?}"),
        );
    }
}

/// The barrier path is the oracle: the same fleet stepped once with
/// overlap off and once with overlap on produces equal full states —
/// and a straggler workload must actually exercise the reactor
/// (`asks > 0`), not vacuously pass because speculation never fired.
#[test]
fn overlap_against_a_straggler_matches_barrier_and_actually_speculates() {
    let (scenario, networks) = scenario_fixture();
    let cfg = search_cfg(229);

    let barrier_addrs = vec![
        spawn_worker(1, 20_000).to_string(),
        spawn_worker(1, 0).to_string(),
    ];
    let mut barrier =
        DistributedCoordinator::connect(&barrier_addrs, &scenario).expect("fleet reachable");
    barrier.set_microshards(5);
    barrier.set_steal_deadline(std::time::Duration::from_millis(2));
    let barrier_state = run_distributed_state(&cfg, &networks, &mut barrier);
    assert_eq!(
        barrier.overlap_stats(),
        OverlapStats::default(),
        "the barrier path must never speculate"
    );

    let overlap_addrs = vec![
        spawn_worker(1, 20_000).to_string(),
        spawn_worker(1, 0).to_string(),
    ];
    let mut coordinator = overlap_coordinator(&overlap_addrs, &scenario);
    let overlapped = run_distributed_state(&cfg, &networks, &mut coordinator);

    assert_eq!(
        overlapped, barrier_state,
        "overlap on vs off over the same fleet shape must be bit-identical"
    );
    let stats = coordinator.overlap_stats();
    assert!(
        stats.asks > 0,
        "a 20 ms/candidate straggler leaves the fast worker idle past the pool drain — \
         the reactor must have fired, got {stats:?}"
    );
    assert_spec_accounting(stats, "straggler workload");
}

/// Kill/restart under overlap: a worker crashing mid-run — possibly
/// holding speculative flights, which are dropped, never re-routed —
/// and rejoining later must leave the trajectory untouched, with the
/// rollback counters still balancing the books.
#[test]
fn overlap_survives_kill_restart_with_balanced_rollback_accounting() {
    let (scenario, networks) = scenario_fixture();
    let cfg = search_cfg(233);
    assert!(
        cfg.iterations >= 3,
        "the kill/restart timeline needs ≥3 generations"
    );
    let local = run_local_state(&cfg, &networks);

    let addrs = vec![
        spawn_restartable_worker(2).to_string(),
        spawn_worker(1, 0).to_string(),
    ];
    let mut coordinator = overlap_coordinator(&addrs, &scenario);
    let overlapped = run_distributed_state(&cfg, &networks, &mut coordinator);

    assert_eq!(
        overlapped, local,
        "kill/restart under overlap must be bit-identical"
    );
    assert_spec_accounting(coordinator.overlap_stats(), "kill/restart");
    assert_eq!(
        coordinator.live_workers(),
        2,
        "the restarted worker must be re-admitted"
    );
}

/// Deterministic rollback: two searches interleaved generation-by-
/// generation on one coordinator share speculation key 0, so every
/// banked fork is examined next by the *other* search — whose sample
/// can never match — and must be rolled back. Hits are impossible,
/// rollbacks equal asks exactly, and both trajectories stay
/// bit-identical to their solo runs.
#[test]
fn interleaved_searches_sharing_a_key_always_roll_back() {
    let (scenario, networks) = scenario_fixture();
    let cfg_a = search_cfg(239);
    let cfg_b = search_cfg(241);
    let local_a = run_local_state(&cfg_a, &networks);
    let local_b = run_local_state(&cfg_b, &networks);

    let addrs = vec![
        spawn_worker(1, 20_000).to_string(),
        spawn_worker(1, 0).to_string(),
    ];
    let mut coordinator = overlap_coordinator(&addrs, &scenario);

    let job = scenario.resolve().unwrap();
    let engine = CoSearchEngine::new(1);
    let model = CostModel::new();
    let mut state_a = accel_search_init(&job.constraint, &cfg_a, &[]);
    let mut state_b = accel_search_init(&job.constraint, &cfg_b, &[]);
    let (mut done_a, mut done_b) = (false, false);
    while !done_a || !done_b {
        if !done_a {
            done_a = !coordinator.step(&engine, &model, &networks, &mut state_a);
        }
        if !done_b {
            done_b = !coordinator.step(&engine, &model, &networks, &mut state_b);
        }
    }
    state_a.cache_stats = Default::default();
    state_b.cache_stats = Default::default();

    assert_eq!(state_a, local_a, "search A corrupted by interleaving");
    assert_eq!(state_b, local_b, "search B corrupted by interleaving");
    let stats = coordinator.overlap_stats();
    assert!(
        stats.asks > 0,
        "the straggler must have left room to speculate, got {stats:?}"
    );
    assert_eq!(
        stats.hits, 0,
        "a fork banked by one search can never match the other's sample, got {stats:?}"
    );
    assert_eq!(
        stats.rollbacks, stats.asks,
        "every ask must be rolled back under key collision, got {stats:?}"
    );
}

/// Keyed speculation with a capacity-1 bank: a keyed search's bank
/// insert evicts the other key's resident fork, and an evicted ask is
/// a rollback — the bounded bank degrades to thrashing, never to a
/// wrong (or unbalanced) result. (A generation whose ask never
/// installs skips the insert, so the other key's fork may survive and
/// legitimately hit — thrashing bounds, it doesn't forbid, hits.)
#[test]
fn capacity_one_bank_evictions_are_counted_rollbacks() {
    let (scenario, networks) = scenario_fixture();
    let cfg_a = search_cfg(251);
    let cfg_b = search_cfg(257);
    let local_a = run_local_state(&cfg_a, &networks);
    let local_b = run_local_state(&cfg_b, &networks);

    let addrs = vec![
        spawn_worker(1, 20_000).to_string(),
        spawn_worker(1, 0).to_string(),
    ];
    let mut coordinator = overlap_coordinator(&addrs, &scenario);
    coordinator.set_spec_capacity(1);

    let job = scenario.resolve().unwrap();
    let scenario_value = serde_json::to_value(&scenario);
    let engine = CoSearchEngine::new(1);
    let model = CostModel::new();
    let mut state_a = accel_search_init(&job.constraint, &cfg_a, &[]);
    let mut state_b = accel_search_init(&job.constraint, &cfg_b, &[]);
    let (mut done_a, mut done_b) = (false, false);
    while !done_a || !done_b {
        if !done_a {
            done_a = !coordinator.step_with_scenario_keyed(
                1,
                scenario_value.clone(),
                &engine,
                &model,
                &networks,
                &mut state_a,
            );
        }
        if !done_b {
            done_b = !coordinator.step_with_scenario_keyed(
                2,
                scenario_value.clone(),
                &engine,
                &model,
                &networks,
                &mut state_b,
            );
        }
    }
    state_a.cache_stats = Default::default();
    state_b.cache_stats = Default::default();

    assert_eq!(state_a, local_a, "keyed search A corrupted");
    assert_eq!(state_b, local_b, "keyed search B corrupted");
    let stats = coordinator.overlap_stats();
    assert!(
        stats.asks > 0,
        "the straggler must force asks, got {stats:?}"
    );
    assert!(
        stats.rollbacks > 0,
        "two keys thrashing one bank slot must evict at least once, got {stats:?}"
    );
    assert_spec_accounting(stats, "capacity-1 eviction");
}

/// Pareto mode under overlap: the serialized front — the byte-identity
/// currency of the multi-objective acceptance criterion — must match
/// the single-process front exactly, with adversarial delays on top.
#[test]
fn overlap_pareto_front_stays_byte_identical() {
    let (scenario, networks) = scenario_fixture();
    let mut cfg = search_cfg(263);
    cfg.objectives = naas::ObjectivePolicy::Pareto;
    let local = run_local_state(&cfg, &networks);

    let addrs = vec![
        spawn_worker(1, 1_500).to_string(),
        spawn_worker(1, 0).to_string(),
    ];
    let mut coordinator = overlap_coordinator(&addrs, &scenario);
    let overlapped = run_distributed_state(&cfg, &networks, &mut coordinator);

    let front = |state: &naas::AccelSearchState| {
        serde_json::to_string(state.archive().expect("pareto mode keeps an archive"))
            .expect("archive serializes")
    };
    assert_eq!(
        front(&overlapped),
        front(&local),
        "overlap must not reorder a single archive fold"
    );
    assert_eq!(overlapped, local, "full pareto state must match");
    assert_spec_accounting(coordinator.overlap_stats(), "pareto overlap");
}

/// Joint mode under overlap: generations shard below candidate
/// granularity (`joint_unit` wire mode — one (candidate, subnet) unit
/// per wave slot, merged by unit index), and the matched (accelerator,
/// subnet, accuracy, EDP) result is bit-identical to the
/// single-process joint search. `joint_units > 0` proves the
/// sub-candidate path actually carried the run.
#[test]
fn overlap_joint_unit_sharding_matches_single_process() {
    let model = CostModel::new();
    let accuracy = naas_nas::AccuracyModel::default();
    let envelope = naas_accel::ResourceConstraint::from_design(&naas_accel::baselines::eyeriss());
    let mut cfg = naas::JointConfig::quick(269);
    cfg.accel.mapping = MappingSearchConfig::quick(7);
    cfg.accel.threads = 1;

    let engine = CoSearchEngine::new(1);
    let mut state = naas::joint_search_init(&envelope, &cfg);
    while naas::joint_search_step(&engine, &model, &accuracy, &mut state) {}
    let local = state.into_result().expect("joint search finds a pair");

    let addrs = vec![
        spawn_worker(1, 800).to_string(),
        spawn_worker(1, 0).to_string(),
    ];
    let mut coordinator = DistributedCoordinator::connect_joint(&addrs).expect("fleet reachable");
    coordinator.set_overlap(true);
    let engine = CoSearchEngine::new(1);
    let mut state = naas::joint_search_init(&envelope, &cfg);
    while coordinator.step_joint(&engine, &model, &accuracy, &mut state) {}
    let distributed = state.into_result().expect("joint search finds a pair");

    assert_eq!(
        distributed, local,
        "joint_unit sharding must be bit-identical to the single-process joint search"
    );
    let stats = coordinator.overlap_stats();
    assert!(
        stats.joint_units > 0,
        "the sub-candidate path must have merged units, got {stats:?}"
    );
}

/// Joint overlap through worker death: a unit wave losing its worker
/// mid-flight re-routes through the shared pool (or the local
/// fallback) and the joint result still matches the uninterrupted
/// single-process run.
#[test]
fn overlap_joint_units_survive_kill_and_restart() {
    let model = CostModel::new();
    let accuracy = naas_nas::AccuracyModel::default();
    let envelope = naas_accel::ResourceConstraint::from_design(&naas_accel::baselines::eyeriss());
    let mut cfg = naas::JointConfig::quick(271);
    cfg.accel.mapping = MappingSearchConfig::quick(7);
    cfg.accel.threads = 1;

    let engine = CoSearchEngine::new(1);
    let mut state = naas::joint_search_init(&envelope, &cfg);
    while naas::joint_search_step(&engine, &model, &accuracy, &mut state) {}
    let local = state.into_result().expect("joint search finds a pair");

    let addrs = vec![
        spawn_restartable_worker(3).to_string(),
        spawn_worker(1, 0).to_string(),
    ];
    let mut coordinator = DistributedCoordinator::connect_joint(&addrs).expect("fleet reachable");
    coordinator.set_overlap(true);
    let engine = CoSearchEngine::new(1);
    let mut state = naas::joint_search_init(&envelope, &cfg);
    while coordinator.step_joint(&engine, &model, &accuracy, &mut state) {}
    let distributed = state.into_result().expect("joint search finds a pair");

    assert_eq!(
        distributed, local,
        "worker death during a unit wave must not change the joint result"
    );
    assert!(
        coordinator.overlap_stats().joint_units > 0,
        "the surviving fleet must still merge units"
    );
}
