//! The batch-evaluation service: wire round-trips, coalesced
//! concurrency, and the contract that a served answer is bit-identical
//! to the equivalent direct library call.

use naas::service::{BatchEvalService, ServiceConfig, ServiceServer};
use naas::{mapping_search, CoSearchEngine, MappingSearchConfig};
use naas_accel::baselines;
use naas_cost::CostModel;
use naas_engine::scenario;
use naas_ir::ConvSpec;
use naas_mapping::Mapping;
use serde_json::Value;
use std::sync::Arc;

fn service(threads: usize) -> BatchEvalService {
    BatchEvalService::new(ServiceConfig {
        threads,
        mapping: MappingSearchConfig::quick(7),
        cache_file: None,
        cache_cap: 0,
        eval_delay_us: 0,
    })
    .expect("no cache file to load")
}

fn parse(line: &str) -> Value {
    serde_json::from_str(line).expect("response is valid JSON")
}

fn result_of(line: &str) -> Value {
    let v = parse(line);
    assert_eq!(
        v.get("ok"),
        Some(&Value::Bool(true)),
        "expected success: {line}"
    );
    v.get("result").cloned().expect("ok response has a result")
}

fn test_layer() -> ConvSpec {
    ConvSpec::conv2d("c", 16, 32, (16, 16), (3, 3), 1, 1).unwrap()
}

fn layer_json() -> &'static str {
    r#"{"in_channels":16,"out_channels":32,"in_y":16,"in_x":16,"kernel_r":3,"kernel_s":3,"stride":1,"padding":1}"#
}

/// `score_design` answers exactly what the direct library call computes:
/// same mapping-search config, same content-addressed cache semantics,
/// bit-identical reward.
#[test]
fn served_score_design_is_bit_identical_to_direct_call() {
    let s = service(2);
    let line =
        s.respond(r#"{"id":1,"cmd":"score_design","scenario":"cifar-eyeriss","design":"Eyeriss"}"#);
    let served = result_of(&line);

    let cfg = MappingSearchConfig::quick(7);
    let model = CostModel::new();
    let job = scenario::find("cifar-eyeriss").unwrap().resolve().unwrap();
    let engine = CoSearchEngine::single_threaded();
    let direct = mapping_search::network_mapping_search_cached(
        &model,
        &job.networks[0],
        &baselines::eyeriss(),
        &cfg,
        engine.cache(),
    )
    .expect("eyeriss maps the net");

    // The reward is the geomean over the suite — exactly what the
    // library computes for the same per-network EDPs.
    assert_eq!(
        served.get("reward").unwrap().as_f64(),
        Some(naas::geomean(&[direct.edp()]))
    );
    assert_eq!(
        served.get("per_network").unwrap().as_array().unwrap()[0]
            .get("edp")
            .unwrap()
            .as_f64(),
        Some(direct.edp())
    );
    let per_network = served.get("per_network").unwrap().as_array().unwrap();
    assert_eq!(per_network.len(), 1);
    assert_eq!(
        per_network[0].get("cycles").unwrap().as_u64(),
        Some(direct.cycles())
    );
    assert_eq!(
        per_network[0].get("energy_pj").unwrap().as_f64(),
        Some(direct.energy_pj())
    );
}

/// `search_layer` rides the same thread-pipeline entry point as the
/// library's inner loop.
#[test]
fn served_search_layer_matches_direct_search() {
    let s = service(1);
    let line = s.respond(&format!(
        r#"{{"id":2,"cmd":"search_layer","layer":{},"design":"NVDLA-256"}}"#,
        layer_json()
    ));
    let served = result_of(&line);

    let direct = naas::search_layer_mapping(
        &CostModel::new(),
        &test_layer(),
        &baselines::nvdla_256(),
        &MappingSearchConfig::quick(7),
    )
    .expect("mappable");
    let cost = served.get("cost").unwrap();
    assert_eq!(cost.get("edp").unwrap().as_f64(), Some(direct.cost.edp()));
    assert_eq!(
        cost.get("cycles").unwrap().as_u64(),
        Some(direct.cost.cycles)
    );
    assert_eq!(
        served.get("evaluations").unwrap().as_u64(),
        Some(direct.evaluations as u64)
    );
    // The best mapping itself round-trips through the response.
    let mapping: Mapping =
        serde_json::from_value(served.get("mapping").unwrap()).expect("mapping decodes");
    assert_eq!(mapping, direct.mapping);
}

/// `evaluate_batch` scores a population exactly like scalar
/// `CostModel::evaluate` (which `evaluate_batch` is defined against).
#[test]
fn served_evaluate_batch_matches_scalar_evaluates() {
    let layer = test_layer();
    let accel = baselines::eyeriss();
    let model = CostModel::new();
    // A valid mapping plus a deliberately capacity-busting variant.
    let good = Mapping::balanced(&layer, &accel);
    let mappings = vec![good.clone(), good.clone(), good];
    let request = format!(
        r#"{{"id":3,"cmd":"evaluate_batch","layer":{},"design":"Eyeriss","mappings":{}}}"#,
        layer_json(),
        serde_json::to_string(&mappings).unwrap()
    );
    let s = service(1);
    let served = result_of(&s.respond(&request));
    assert_eq!(served.get("count").unwrap().as_u64(), Some(3));
    let results = served.get("results").unwrap().as_array().unwrap();
    for entry in results {
        assert_eq!(entry.get("ok"), Some(&Value::Bool(true)));
        let direct = model
            .evaluate(&layer, &accel, &mappings[0])
            .expect("balanced mapping valid");
        let cost = entry.get("cost").unwrap();
        assert_eq!(cost.get("edp").unwrap().as_f64(), Some(direct.edp()));
        assert_eq!(cost.get("cycles").unwrap().as_u64(), Some(direct.cycles));
    }
}

/// Concurrent clients hammering one warm service get (a) every request
/// answered, (b) identical answers for identical requests regardless of
/// interleaving — the cache-soundness claim under real concurrency.
#[test]
fn concurrent_streams_coalesce_and_stay_deterministic() {
    let server = ServiceServer::start(Arc::new(service(2)));
    let request =
        r#"{"id":9,"cmd":"score_design","scenario":"cifar-eyeriss","design":"ShiDianNao"}"#;
    let mut responses: Vec<String> = std::thread::scope(|scope| {
        let server = &server;
        let handles: Vec<_> = (0..6)
            .map(|client| {
                scope.spawn(move || {
                    let (tx, rx) = std::sync::mpsc::channel();
                    assert!(server.submit(request.to_string(), client, tx));
                    let (seq, response) = rx.recv().expect("response arrives");
                    assert_eq!(seq, client);
                    response
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    responses.dedup();
    assert_eq!(
        responses.len(),
        1,
        "all clients must see the identical byte-for-byte response"
    );
    // And that shared answer matches a cold single-threaded service.
    let cold = service(1).respond(request);
    assert_eq!(responses[0], cold);
}

/// A panicking request among concurrent in-flight requests becomes an
/// error *response*; siblings in the same coalesced batch are answered
/// normally and the service keeps running (regression for the pool's
/// deque-poisoning abort).
#[test]
fn panicking_request_does_not_abort_batch_or_service() {
    let server = ServiceServer::start(Arc::new(service(2)));
    let (tx, rx) = std::sync::mpsc::channel();
    for seq in 0..8u64 {
        let line = if seq == 3 {
            r#"{"id":3,"cmd":"__panic"}"#.to_string()
        } else {
            format!(r#"{{"id":{seq},"cmd":"cache_stats"}}"#)
        };
        assert!(server.submit(line, seq, tx.clone()));
    }
    drop(tx);
    let mut ok = 0;
    let mut failed = 0;
    for (seq, response) in rx {
        let v = parse(&response);
        if seq == 3 {
            assert_eq!(v.get("ok"), Some(&Value::Bool(false)));
            assert!(v
                .get("error")
                .and_then(Value::as_str)
                .unwrap()
                .contains("internal panic"));
            failed += 1;
        } else {
            assert_eq!(v.get("ok"), Some(&Value::Bool(true)), "seq {seq}");
            ok += 1;
        }
    }
    assert_eq!((ok, failed), (7, 1));
    // Still alive afterwards.
    let (tx, rx) = std::sync::mpsc::channel();
    assert!(server.submit(r#"{"id":99,"cmd":"cache_stats"}"#.to_string(), 0, tx));
    assert_eq!(
        parse(&rx.recv().unwrap().1).get("ok"),
        Some(&Value::Bool(true))
    );
    server.stop().expect("clean stop");
}

/// Full stream round-trip: pipelined requests over one stream come back
/// in request order, `shutdown` ends the stream, and malformed lines
/// still get (error) responses.
#[test]
fn serve_stream_round_trip_in_order() {
    let server = ServiceServer::start(Arc::new(service(2)));
    let input = format!(
        "{}\n{}\nnot json at all\n{}\n{}\n",
        r#"{"id":"a","cmd":"list_scenarios"}"#,
        r#"{"id":"b","cmd":"cache_stats"}"#,
        r#"{"id":"c","cmd":"nope"}"#,
        r#"{"id":"d","cmd":"shutdown"}"#
    );
    let mut out: Vec<u8> = Vec::new();
    let wants_shutdown = server
        .serve_stream(input.as_bytes(), &mut out)
        .expect("stream I/O");
    assert!(wants_shutdown);
    let lines: Vec<String> = String::from_utf8(out)
        .unwrap()
        .lines()
        .map(String::from)
        .collect();
    assert_eq!(lines.len(), 5, "every consumed line gets a response");
    assert_eq!(parse(&lines[0]).get("id"), Some(&Value::Str("a".into())));
    assert_eq!(parse(&lines[1]).get("id"), Some(&Value::Str("b".into())));
    // Malformed line: error response with null id.
    assert_eq!(parse(&lines[2]).get("ok"), Some(&Value::Bool(false)));
    assert_eq!(parse(&lines[3]).get("ok"), Some(&Value::Bool(false)));
    assert_eq!(parse(&lines[4]).get("id"), Some(&Value::Str("d".into())));
    server.stop().expect("clean stop");
}

/// Cache persistence round-trip: a service that scored work persists its
/// cache on stop; a fresh service warm-loads it, answers identically,
/// and serves the repeat traffic without recomputing.
#[test]
fn persisted_cache_warms_next_service_with_identical_answers() {
    let path = std::env::temp_dir().join(format!("naas-service-cache-{}.json", std::process::id()));
    std::fs::remove_file(&path).ok();
    let request =
        r#"{"id":1,"cmd":"score_design","scenario":"cifar-eyeriss","design":"NVDLA-256"}"#;

    let cold = BatchEvalService::new(ServiceConfig {
        threads: 1,
        mapping: MappingSearchConfig::quick(7),
        cache_file: Some(path.clone()),
        cache_cap: 0,
        eval_delay_us: 0,
    })
    .unwrap();
    let cold_answer = cold.respond(request);
    let cold_misses = cold.engine().cache_stats().misses;
    assert!(cold_misses > 0);
    cold.persist_cache().unwrap();

    let warm = BatchEvalService::new(ServiceConfig {
        threads: 1,
        mapping: MappingSearchConfig::quick(7),
        cache_file: Some(path.clone()),
        cache_cap: 0,
        eval_delay_us: 0,
    })
    .unwrap();
    let warm_answer = warm.respond(request);
    assert_eq!(warm_answer, cold_answer, "warming never changes answers");
    assert_eq!(
        warm.engine().cache_stats().misses,
        0,
        "repeat traffic is answered entirely from the warmed cache"
    );
    std::fs::remove_file(&path).ok();
}

/// Per-request `mapping_budget` overrides evaluate under their own
/// budget *and* leave the shared cache unpolluted: the whole mapping
/// config is part of the design fingerprint, so overridden requests
/// read/write disjoint cache keys and the default-budget answer stays
/// byte-for-byte what a fresh service would produce.
#[test]
fn mapping_budget_override_does_not_pollute_shared_cache_keys() {
    let baseline_request =
        r#"{"id":1,"cmd":"score_design","scenario":"cifar-eyeriss","design":"Eyeriss"}"#;
    let override_request = r#"{"id":2,"cmd":"score_design","scenario":"cifar-eyeriss","design":"Eyeriss","mapping_budget":{"population":4,"iterations":1}}"#;

    // Overridden traffic first, then default traffic, on one service.
    let s = service(1);
    let overridden = result_of(&s.respond(override_request));
    let entries_after_override = s.engine().cache_stats().entries;
    assert!(entries_after_override > 0);
    let default_answer = s.respond(baseline_request);
    assert!(
        s.engine().cache_stats().entries > entries_after_override,
        "default-budget traffic must occupy its own cache keys, not reuse the override's"
    );

    // The default answer is exactly what a never-overridden service
    // computes; the overridden answer differs (a 4×1 budget finds a
    // different mapping than 8×3 on this layer set).
    let fresh_answer = service(1).respond(baseline_request);
    assert_eq!(default_answer, fresh_answer, "override polluted the cache");
    assert!(overridden.get("reward").unwrap().as_f64().is_some());

    // The override takes effect: a 4×1 budget runs strictly fewer
    // evaluations than the default 8×3 on the same layer search.
    let layer_request = |budget: &str| {
        format!(
            r#"{{"id":9,"cmd":"search_layer","design":"Eyeriss","layer":{}{budget}}}"#,
            layer_json()
        )
    };
    let small = result_of(&s.respond(&layer_request(
        r#","mapping_budget":{"population":4,"iterations":1}"#,
    )));
    let full = result_of(&s.respond(&layer_request("")));
    assert!(
        small.get("evaluations").unwrap().as_u64() < full.get("evaluations").unwrap().as_u64(),
        "the override budget must actually take effect: {small:?} vs {full:?}"
    );

    // Malformed overrides are orderly errors.
    let bad = parse(&s.respond(
        r#"{"id":3,"cmd":"score_design","scenario":"cifar-eyeriss","mapping_budget":{"population":0}}"#,
    ));
    assert_eq!(bad.get("ok"), Some(&Value::Bool(false)));
    assert!(bad
        .get("error")
        .and_then(Value::as_str)
        .unwrap()
        .contains("mapping_budget"));
}

/// `scenario` accepts a full scenario object (the distributed
/// coordinator's way of shipping `--file` scenarios no worker registry
/// knows), answering exactly like the equivalent registered name.
#[test]
fn scenario_objects_are_accepted_inline() {
    let s = service(1);
    let by_name =
        s.respond(r#"{"id":1,"cmd":"score_design","scenario":"cifar-eyeriss","design":"Eyeriss"}"#);
    let scenario = scenario::find("cifar-eyeriss").unwrap();
    let by_object = s.respond(&format!(
        r#"{{"id":1,"cmd":"score_design","scenario":{},"design":"Eyeriss"}}"#,
        serde_json::to_string(&scenario).unwrap()
    ));
    assert_eq!(by_object, by_name);
}

/// The no-valid-design condition surfaces as an error response (the
/// service face of the `NoValidDesign` bugfix): a design that cannot map
/// the suite is an answer, not a panic.
#[test]
fn unmappable_design_is_an_error_response() {
    // A single-PE design with one-byte buffers cannot hold even one
    // operand tile of CIFAR ResNet-20.
    let crippled = serde_json::to_string(&naas_accel::Accelerator::new(
        "crippled",
        naas_accel::ArchitecturalSizing::new(1, 1, 1.0, 1.0),
        naas_accel::Connectivity::grid(1, 1, naas_ir::Dim::C, naas_ir::Dim::K).unwrap(),
    ))
    .unwrap();
    let s = service(1);
    let line = s.respond(&format!(
        r#"{{"id":1,"cmd":"score_design","scenario":"cifar-eyeriss","design":{crippled}}}"#
    ));
    let v = parse(&line);
    assert_eq!(v.get("ok"), Some(&Value::Bool(false)));
    assert!(v
        .get("error")
        .and_then(Value::as_str)
        .unwrap()
        .contains("cannot map"));
}

/// The `metrics` command round-trips a full telemetry snapshot: the
/// served JSON deserializes back into [`naas_engine::MetricsSnapshot`]
/// through the shim, and every top-level section is present. Counter
/// values are only bounded loosely — the registry is process-global and
/// other tests in this binary race with us.
#[test]
fn metrics_command_round_trips_a_full_snapshot() {
    let s = service(1);
    // Populate the cache counters with one real evaluation first
    // (`score_design` routes through the content-addressed cache).
    result_of(
        &s.respond(
            r#"{"id":1,"cmd":"score_design","scenario":"cifar-eyeriss","design":"Eyeriss"}"#,
        ),
    );
    let snapshot_value = result_of(&s.respond(r#"{"id":2,"cmd":"metrics"}"#));

    for section in [
        "cache",
        "pool",
        "batcher",
        "pipeline",
        "coordinator",
        "gateway",
    ] {
        assert!(
            snapshot_value.get(section).is_some(),
            "snapshot is missing the {section} section"
        );
    }
    let snapshot: naas_engine::MetricsSnapshot =
        serde_json::from_value(&snapshot_value).expect("snapshot deserializes via the shim");
    // The search above put at least one entry in this service's cache.
    assert!(snapshot.cache.entries >= 1, "cache entries: {snapshot:?}");
    assert!(snapshot.cache.hits + snapshot.cache.misses >= 1);
    assert!((0.0..=1.0).contains(&snapshot.cache.hit_rate));
    // Histogram invariant: bucket counts sum to the total observation count.
    let hist = &snapshot.pool.job_latency_us;
    assert_eq!(hist.counts.iter().sum::<u64>(), hist.count);
}

/// Deterministic seeded protocol fuzzer: hundreds of truncated,
/// spliced, garbage-injected, duplicate-id and oversized JSONL lines
/// are fed through the full `serve_stream` path (and the vendored
/// parser directly). The wire contract under attack: no panic ever, one
/// response per consumed line, every response a valid JSON object whose
/// `id` echoes whatever id was recoverable from the line, and the
/// stream survives to answer the orderly `shutdown` at the end.
#[test]
fn fuzzed_protocol_lines_never_panic_and_always_get_correlatable_replies() {
    // The corpus is cheap commands only (no evaluations), and contains
    // neither the word `shutdown` nor the letter `w` anywhere — so no
    // mutation can splice together an early stream termination.
    const CORPUS: &[&str] = &[
        r#"{"id": 1, "cmd": "cache_stats"}"#,
        r#"{"id": "alpha", "cmd": "hello"}"#,
        r#"{"id": 2, "cmd": "list_scenarios"}"#,
        r#"{"id": 3, "cmd": "nope_cmd", "param": [1, 2, {"k": "v"}]}"#,
        r#"{"id": 4, "cmd": "hello", "note": "esc\"aped A text", "n": -2.5e3}"#,
        r#"{"id": 5, "cmd": 42}"#,
        r#"{"cmd": "cache_stats"}"#,
        r#"{"id": [6, "deep"], "cmd": "metrics"}"#,
    ];
    let garbage_charset: &[u8] = br#"{}[]",:.0123456789abcqxyzXYZ\ -"#;

    // xorshift64 — the whole fuzz run is a pure function of this seed.
    let mut rng: u64 = 0x5eed_cafe_f00d_2021;
    let mut next = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };

    let mut lines: Vec<String> = Vec::new();
    for round in 0..300u64 {
        let base = CORPUS[(next() % CORPUS.len() as u64) as usize];
        let line = match round % 5 {
            // Truncation at an arbitrary byte — including mid-token and
            // mid-escape (the corpus carries `\"` and `A`).
            0 => base[..(next() % base.len() as u64 + 1) as usize].to_string(),
            // Splice: prefix of one corpus line + suffix of another —
            // interleaved frames on one line.
            1 => {
                let other = CORPUS[(next() % CORPUS.len() as u64) as usize];
                let cut_a = (next() % base.len() as u64) as usize;
                let cut_b = (next() % other.len() as u64) as usize;
                format!("{}{}", &base[..cut_a], &other[cut_b..])
            }
            // Garbage injection at a random position.
            2 => {
                let mut bytes = base.as_bytes().to_vec();
                let at = (next() % (bytes.len() as u64 + 1)) as usize;
                for _ in 0..(next() % 8 + 1) {
                    bytes.insert(
                        at,
                        garbage_charset[(next() % garbage_charset.len() as u64) as usize],
                    );
                }
                String::from_utf8(bytes).expect("charset is ASCII")
            }
            // Duplicate ids: the same correlation id on many lines —
            // each must still get its own response.
            3 => format!(r#"{{"id": 1000, "cmd": "cache_stats", "round": {round}}}"#),
            // Pass-through: valid lines interleaved with the attacks.
            _ => base.to_string(),
        };
        // The vendored parser itself must never panic on any of this.
        let _ = serde_json::parse_str(&line);
        lines.push(line);
    }
    // Oversized lines: a huge string payload and a huge garbage blob.
    lines.push(format!(
        r#"{{"id": 9000, "cmd": "{}"}}"#,
        "x".repeat(200_000)
    ));
    lines.push("[".repeat(50_000));
    // Mid-escape truncations, explicitly.
    lines.push(r#"{"id": 6, "cmd": "hel\"#.to_string());
    lines.push(r#"{"id": 7, "cmd": "hel\u00"#.to_string());
    // Recoverable id on a malformed request (cmd is not a string).
    lines.push(r#"{"id": 77, "cmd": 42}"#.to_string());

    let total = lines.len() + 1; // + the final orderly shutdown
    let input = format!(
        "{}\n{}\n",
        lines.join("\n"),
        r#"{"id": "end", "cmd": "shutdown"}"#
    );

    let server = ServiceServer::start(Arc::new(service(2)));
    let mut out: Vec<u8> = Vec::new();
    let wants_shutdown = server
        .serve_stream(input.as_bytes(), &mut out)
        .expect("the stream must survive every malformed line");
    assert!(wants_shutdown, "the final shutdown must still be honoured");

    let responses: Vec<String> = String::from_utf8(out)
        .unwrap()
        .lines()
        .map(String::from)
        .collect();
    assert_eq!(
        responses.len(),
        total,
        "every consumed line gets exactly one response"
    );
    let mut duplicate_id_replies = 0;
    for (line, response) in lines.iter().zip(&responses) {
        let reply = parse(response);
        assert!(
            matches!(reply.get("ok"), Some(Value::Bool(_))),
            "malformed reply to fuzzed line {line:?}: {response}"
        );
        // Responses correlate: the reply's id is exactly what the
        // framing layer recovers from the line (parsed or failed).
        let expected_id = match naas_engine::service::Request::parse(line) {
            Ok(request) => request.id,
            Err(failure) => failure.id,
        };
        assert_eq!(
            reply.get("id"),
            Some(&expected_id),
            "id mismatch for fuzzed line {line:?}"
        );
        if reply.get("id") == Some(&Value::U64(1000)) {
            duplicate_id_replies += 1;
        }
        if reply.get("ok") == Some(&Value::Bool(false)) {
            assert!(
                reply.get("error").and_then(Value::as_str).is_some(),
                "error responses carry a message: {response}"
            );
        }
    }
    // Every duplicate-id line was answered individually (60 of the 300
    // rounds take the duplicate-id arm: rounds ≡ 3 mod 5).
    assert_eq!(duplicate_id_replies, 60);
    // The recoverable-id case: malformed line, correlatable error.
    let recovered = parse(&responses[lines.len() - 1]);
    assert_eq!(recovered.get("id"), Some(&Value::U64(77)));
    assert_eq!(recovered.get("ok"), Some(&Value::Bool(false)));
    server.stop().expect("clean stop after the fuzz run");
}

/// Batcher stress (the producer side): N seeded producer threads push
/// into one `Batcher` while M consumer threads drain it concurrently.
/// Drain-all semantics must hold exactly — every pushed item delivered
/// once, to exactly one consumer, nothing dropped, nothing duplicated —
/// and `close` must release every blocked consumer.
#[test]
fn batcher_under_producer_and_consumer_stress_never_drops_or_duplicates() {
    use naas_engine::service::Batcher;
    const PRODUCERS: u64 = 4;
    const PER_PRODUCER: u64 = 250;
    let batcher = Arc::new(Batcher::<u64>::new());

    let consumed: Vec<Vec<u64>> = std::thread::scope(|scope| {
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let batcher = Arc::clone(&batcher);
                scope.spawn(move || {
                    let mut seen = Vec::new();
                    while let Some(batch) = batcher.next_batch() {
                        seen.extend(batch);
                    }
                    seen
                })
            })
            .collect();
        let producers: Vec<_> = (0..PRODUCERS)
            .map(|producer| {
                let batcher = Arc::clone(&batcher);
                scope.spawn(move || {
                    let mut rng = 0xfeed_beef ^ (producer + 1);
                    for i in 0..PER_PRODUCER {
                        rng ^= rng << 13;
                        rng ^= rng >> 7;
                        rng ^= rng << 17;
                        if rng % 11 == 0 {
                            // Seeded random pacing: some pushes land in
                            // coalesced batches, some wake an idle consumer.
                            std::thread::sleep(std::time::Duration::from_micros(rng % 200));
                        }
                        batcher.push(producer * PER_PRODUCER + i);
                    }
                })
            })
            .collect();
        for producer in producers {
            producer.join().unwrap();
        }
        batcher.close();
        consumers.into_iter().map(|c| c.join().unwrap()).collect()
    });

    let mut all: Vec<u64> = consumed.into_iter().flatten().collect();
    all.sort_unstable();
    let expected: Vec<u64> = (0..PRODUCERS * PER_PRODUCER).collect();
    assert_eq!(all, expected, "drain-all dropped or duplicated items");
}

/// `cache_stats` exposes the extended counter set: entries, evictions,
/// and a derived hit rate alongside the original hits/misses.
#[test]
fn cache_stats_reports_entries_evictions_and_hit_rate() {
    let s = service(1);
    result_of(
        &s.respond(
            r#"{"id":1,"cmd":"score_design","scenario":"cifar-eyeriss","design":"Eyeriss"}"#,
        ),
    );
    let stats = result_of(&s.respond(r#"{"id":2,"cmd":"cache_stats"}"#));
    for key in ["hits", "misses", "entries", "evictions", "hit_rate"] {
        assert!(stats.get(key).is_some(), "cache_stats is missing {key}");
    }
    assert!(stats.get("entries").unwrap().as_u64().unwrap() >= 1);
    assert_eq!(stats.get("evictions").unwrap().as_u64(), Some(0));
    let hit_rate = stats.get("hit_rate").unwrap().as_f64().unwrap();
    assert!((0.0..=1.0).contains(&hit_rate));
}
