//! Property-based invariants of the multi-objective core: Pareto
//! dominance is a strict partial order, the bounded archive never grows
//! past capacity or loses its candidate-order sort, hypervolume is
//! monotone under insertion, and a serialized archive round-trips to a
//! bit-identical front.

use naas::{ObjectivePolicy, ParetoArchive};
use naas_accel::baselines;
use naas_cost::ObjectiveVector;
use proptest::prelude::*;

/// Random-but-valid objective vectors, spanning several orders of
/// magnitude but staying inside the hypervolume reference box.
fn arb_objectives() -> impl Strategy<Value = ObjectiveVector> {
    (
        1u64..1_000_000_000_000,
        1.0f64..1.0e12,
        1.0f64..1.0e12,
        0.0f64..=100.0,
    )
        .prop_map(
            |(latency_cycles, energy_nj, area_um2, accuracy)| ObjectiveVector {
                latency_cycles,
                energy_nj,
                area_um2,
                accuracy,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Dominance is irreflexive and antisymmetric: nothing dominates
    /// itself, and no two vectors dominate each other.
    #[test]
    fn dominance_is_irreflexive_and_antisymmetric(
        a in arb_objectives(),
        b in arb_objectives(),
    ) {
        prop_assert!(!a.dominates(&a));
        prop_assert!(!(a.dominates(&b) && b.dominates(&a)));
    }

    /// Dominance is transitive: a ≻ b and b ≻ c imply a ≻ c.
    #[test]
    fn dominance_is_transitive(
        a in arb_objectives(),
        b in arb_objectives(),
        c in arb_objectives(),
    ) {
        if a.dominates(&b) && b.dominates(&c) {
            prop_assert!(a.dominates(&c), "a={a:?} b={b:?} c={c:?}");
        }
    }

    /// Hypervolume never decreases as offers arrive: an accepted point
    /// only adds dominated volume, a rejected point changes nothing.
    #[test]
    fn hypervolume_is_monotone_under_offers(
        offers in proptest::collection::vec(arb_objectives(), 1..24),
    ) {
        let accel = baselines::eyeriss();
        let mut archive = ParetoArchive::new();
        let mut previous = archive.hypervolume();
        for (i, objectives) in offers.into_iter().enumerate() {
            archive.offer(i as u64, objectives, &accel);
            let now = archive.hypervolume();
            prop_assert!(
                now + 1e-12 >= previous,
                "hypervolume regressed at offer {i}: {previous} -> {now}"
            );
            previous = now;
        }
    }

    /// Bounded-archive structural invariants under random offer streams
    /// and a tiny capacity: the front never exceeds capacity, stays
    /// sorted by candidate index, and stays mutually non-dominated.
    #[test]
    fn archive_respects_capacity_order_and_non_domination(
        offers in proptest::collection::vec(arb_objectives(), 1..32),
    ) {
        let accel = baselines::eyeriss();
        let mut archive = ParetoArchive::with_capacity(4);
        for (i, objectives) in offers.into_iter().enumerate() {
            archive.offer(i as u64, objectives, &accel);
            prop_assert!(archive.len() <= archive.capacity());
        }
        let entries = archive.entries();
        for pair in entries.windows(2) {
            prop_assert!(pair[0].candidate_index < pair[1].candidate_index);
        }
        for a in entries {
            for b in entries {
                prop_assert!(
                    a.candidate_index == b.candidate_index
                        || !a.objectives.dominates(&b.objectives),
                    "front must be mutually non-dominated"
                );
            }
        }
    }

    /// A checkpointed archive round-trips bit-identically: serialize →
    /// deserialize → serialize yields the same bytes, and the recovered
    /// front renders identically.
    #[test]
    fn archive_round_trips_to_a_bit_identical_front(
        offers in proptest::collection::vec(arb_objectives(), 1..24),
    ) {
        let accel = baselines::eyeriss();
        let mut archive = ParetoArchive::with_capacity(6);
        for (i, objectives) in offers.into_iter().enumerate() {
            archive.offer(i as u64, objectives, &accel);
        }
        let bytes = serde_json::to_string(&archive).expect("archive serializes");
        let recovered: ParetoArchive =
            serde_json::from_str(&bytes).expect("archive deserializes");
        prop_assert_eq!(
            serde_json::to_string(&recovered).expect("archive serializes"),
            bytes
        );
        prop_assert_eq!(recovered.render(), archive.render());
        prop_assert_eq!(recovered, archive);
    }
}

/// The policy spellings the CLI and checkpoints rely on.
#[test]
fn objective_policy_spellings_are_stable() {
    assert_eq!(
        ObjectivePolicy::parse("pareto").unwrap(),
        ObjectivePolicy::Pareto
    );
    assert_eq!(
        ObjectivePolicy::parse("scalar").unwrap(),
        ObjectivePolicy::Scalar
    );
    assert_eq!(ObjectivePolicy::default(), ObjectivePolicy::Scalar);
    assert!(ObjectivePolicy::parse("lexicographic").is_err());
}
