//! The multi-tenant search gateway: concurrent jobs multiplexed onto one
//! shared engine/fleet must each produce results **byte-identical** to
//! running the same submission alone — at any interleaving, under
//! weighted-fair scheduling, per-tenant quotas, admission rejection, a
//! deliberately skewed fleet, and a worker killed and restarted mid-run.

use naas::service::{BatchEvalService, ServiceConfig, ServiceServer};
use naas::{
    AccelSearchConfig, DistributedCoordinator, GatewayConfig, GatewayService, JointConfig,
    MappingSearchConfig, SharedCoordinator,
};
use naas_engine::telemetry::metrics;
use serde_json::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener};
use std::sync::{Arc, Mutex};

/// Gateway telemetry (gauges, per-tenant counters) is process-global;
/// tests asserting on it must not overlap with other gateways mutating
/// it. Every test in this binary takes this lock.
static METRICS_LOCK: Mutex<()> = Mutex::new(());

fn inner_service(threads: usize, eval_delay_us: u64) -> Arc<BatchEvalService> {
    Arc::new(
        BatchEvalService::new(ServiceConfig {
            threads,
            mapping: MappingSearchConfig::quick(7),
            cache_file: None,
            cache_cap: 0,
            eval_delay_us,
        })
        .expect("no cache file to load"),
    )
}

fn local_gateway(config: GatewayConfig) -> GatewayService {
    GatewayService::start(inner_service(2, 0), None, config)
}

fn parse(line: &str) -> Value {
    serde_json::from_str(line).expect("response is valid JSON")
}

fn result_of(line: &str) -> Value {
    let v = parse(line);
    assert_eq!(
        v.get("ok"),
        Some(&Value::Bool(true)),
        "expected success: {line}"
    );
    v.get("result").cloned().expect("ok response has a result")
}

/// A small, fast accel search config (matches the distributed suite's
/// budget so generations clear in tens of milliseconds).
fn accel_cfg(seed: u64) -> AccelSearchConfig {
    let mut cfg = AccelSearchConfig::quick(seed);
    cfg.mapping = MappingSearchConfig::quick(7);
    cfg.threads = 1;
    cfg
}

/// A trimmed joint config: enough generations to exercise the
/// checkpointed step-loop without dominating suite wall-clock.
fn joint_cfg(seed: u64) -> JointConfig {
    let mut cfg = JointConfig::quick(seed);
    cfg.accel = accel_cfg(seed);
    cfg.accel.population = 4;
    cfg.accel.iterations = 2;
    cfg.nas.population = 4;
    cfg
}

fn submit_line(id: u64, tenant: &str, weight: u64, kind: &str, config_json: &str) -> String {
    format!(
        r#"{{"id":{id},"cmd":"job_submit","scenario":"cifar-eyeriss","tenant":"{tenant}","weight":{weight},"kind":"{kind}","config":{config_json}}}"#
    )
}

/// Submits one job and returns its id.
fn submit(gw: &GatewayService, line: &str) -> u64 {
    result_of(&gw.respond(line))
        .get("job_id")
        .and_then(Value::as_u64)
        .expect("submit answers a job id")
}

/// The raw `job_result` response line for a finished job, with a fixed
/// request id so lines are comparable byte-for-byte across gateways.
fn result_line(gw: &GatewayService, job_id: u64) -> String {
    let line = gw.respond(&format!(
        r#"{{"id":"result","cmd":"job_result","job_id":{job_id}}}"#
    ));
    assert_eq!(
        parse(&line).get("ok"),
        Some(&Value::Bool(true)),
        "job {job_id} must finish with a result: {line}"
    );
    line
}

/// Runs one submission alone on a fresh gateway — the byte-identity
/// reference for every multi-tenant assertion below.
fn solo_result(line: &str) -> String {
    let gw = local_gateway(GatewayConfig {
        executors: 1,
        ..GatewayConfig::default()
    });
    let job_id = submit(&gw, line);
    gw.wait_idle();
    result_line(&gw, job_id)
}

/// The acceptance fixture: one accel job and one joint job running
/// concurrently on one shared engine. Their `job_result` payloads —
/// design card, reward/front, and the complete serialized final search
/// state — must be byte-identical to each job's solo run, across
/// adversarially permuted interleavings (executor counts, submission
/// orders, weights).
#[test]
fn concurrent_accel_and_joint_jobs_are_byte_identical_to_solo_runs() {
    let _guard = METRICS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let accel = submit_line(
        1,
        "acme",
        1,
        "accel",
        &serde_json::to_string(&accel_cfg(41)).unwrap(),
    );
    let joint = submit_line(
        1,
        "globex",
        1,
        "joint",
        &serde_json::to_string(&joint_cfg(29)).unwrap(),
    );
    let solo_accel = solo_result(&accel);
    let solo_joint = solo_result(&joint);

    // Interleaving permutations: submission order × executor count ×
    // weights. The weight skew makes the scheduler issue generations in
    // a different order in each configuration.
    let permutations: &[(&str, usize, &[&str])] = &[
        ("accel first, one executor", 1, &[]),
        ("joint first, three executors", 3, &["joint_first"]),
        (
            "weighted accel, two executors",
            2,
            &["joint_first", "reweight"],
        ),
    ];
    for (label, executors, flags) in permutations {
        let gw = local_gateway(GatewayConfig {
            executors: *executors,
            ..GatewayConfig::default()
        });
        let (first, second) = if flags.contains(&"joint_first") {
            (&joint, &accel)
        } else {
            (&accel, &joint)
        };
        let first = if flags.contains(&"reweight") {
            first.replace(r#""weight":1"#, r#""weight":3"#)
        } else {
            first.clone()
        };
        let first_id = submit(&gw, &first);
        let second_id = submit(&gw, second);
        gw.wait_idle();
        let (accel_id, joint_id) = if flags.contains(&"joint_first") {
            (second_id, first_id)
        } else {
            (first_id, second_id)
        };
        assert_eq!(
            result_line(&gw, accel_id),
            solo_accel,
            "{label}: accel job result differs from its solo run"
        );
        assert_eq!(
            result_line(&gw, joint_id),
            solo_joint,
            "{label}: joint job result differs from its solo run"
        );
    }
}

/// Scheduler stress (the producer side of the Batcher/scheduler
/// concurrency satellite): N producer threads submit M jobs each with
/// seeded pseudo-random pacing. Every job must run to `done` with its
/// full generation count — nothing dropped, nothing run twice — and the
/// per-tenant accounting must balance exactly at shutdown: generation
/// counters equal to jobs × iterations per tenant, running/queued
/// gauges back to zero.
#[test]
fn producer_stress_accounts_every_generation_and_balances_to_zero() {
    let _guard = METRICS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    const PRODUCERS: usize = 3;
    const JOBS_PER_PRODUCER: usize = 3;
    const ITERATIONS: usize = 2;

    let before_submitted = metrics().gateway.jobs_submitted.get();
    let before_generations = metrics().gateway.job_generations.get();
    let tenant_before: Vec<u64> = (0..PRODUCERS)
        .map(|p| {
            metrics()
                .gateway
                .tenant_generations
                .get(&format!("stress-{p}"))
                .get()
        })
        .collect();

    let gw = Arc::new(local_gateway(GatewayConfig {
        executors: 2,
        tenant_quota: 1,
        max_jobs: PRODUCERS * JOBS_PER_PRODUCER,
    }));
    let job_ids: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..PRODUCERS)
            .map(|producer| {
                let gw = Arc::clone(&gw);
                scope.spawn(move || {
                    // Deterministic xorshift pacing, distinct per producer.
                    let mut rng = 0x9e3779b97f4a7c15u64 ^ (producer as u64 + 1);
                    let mut ids = Vec::new();
                    for j in 0..JOBS_PER_PRODUCER {
                        rng ^= rng << 13;
                        rng ^= rng >> 7;
                        rng ^= rng << 17;
                        std::thread::sleep(std::time::Duration::from_micros(rng % 500));
                        let mut cfg = accel_cfg(100 + (producer * JOBS_PER_PRODUCER + j) as u64);
                        cfg.population = 4;
                        cfg.iterations = ITERATIONS;
                        let line = submit_line(
                            1,
                            &format!("stress-{producer}"),
                            1 + (j as u64 % 2),
                            "accel",
                            &serde_json::to_string(&cfg).unwrap(),
                        );
                        ids.push(submit(&gw, &line));
                    }
                    ids
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    assert_eq!(job_ids.len(), PRODUCERS * JOBS_PER_PRODUCER);
    // Ids are unique: no submission was lost or double-admitted.
    let mut sorted = job_ids.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), job_ids.len(), "duplicate job ids");

    gw.wait_idle();
    for &job_id in &job_ids {
        let status = result_of(&gw.respond(&format!(
            r#"{{"id":1,"cmd":"job_status","job_id":{job_id}}}"#
        )));
        assert_eq!(
            status.get("status"),
            Some(&Value::Str("done".to_string())),
            "job {job_id}: {status:?}"
        );
        assert_eq!(
            status.get("generation").and_then(Value::as_u64),
            Some(ITERATIONS as u64),
            "job {job_id} must run exactly its configured generations"
        );
    }

    // The books balance: every submission and generation is accounted
    // for, per tenant, and nothing is left running or queued.
    assert_eq!(
        metrics().gateway.jobs_submitted.get() - before_submitted,
        (PRODUCERS * JOBS_PER_PRODUCER) as u64
    );
    assert_eq!(
        metrics().gateway.job_generations.get() - before_generations,
        (PRODUCERS * JOBS_PER_PRODUCER * ITERATIONS) as u64
    );
    for (p, before) in tenant_before.iter().enumerate() {
        assert_eq!(
            metrics()
                .gateway
                .tenant_generations
                .get(&format!("stress-{p}"))
                .get()
                - before,
            (JOBS_PER_PRODUCER * ITERATIONS) as u64,
            "tenant stress-{p} generation accounting"
        );
    }
    assert_eq!(metrics().gateway.jobs_running.get(), 0);
    assert_eq!(metrics().gateway.jobs_queued.get(), 0);
}

/// Spawns an in-process TCP worker (the serving stack behind
/// `naas-search worker`), optionally with an injected per-candidate
/// evaluation delay — the deterministic stand-in for a slow machine.
fn spawn_slow_worker(threads: usize, eval_delay_us: u64) -> SocketAddr {
    let server = Arc::new(ServiceServer::start(inner_service(threads, eval_delay_us)));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        let _ = server.serve_listener(listener);
    });
    addr
}

/// A worker that answers `fail_after` requests, then "crashes" (drops
/// its listener and every connection mid-call) and is immediately
/// "restarted" as a fresh serving stack on the same address — the
/// deterministic `kill && restart` of the chaos drill.
fn spawn_restartable_worker(fail_after: usize) -> SocketAddr {
    let service = inner_service(1, 0);
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        let mut answered = 0usize;
        'crash: for stream in listener.incoming() {
            let Ok(stream) = stream else { break };
            let mut reader = BufReader::new(match stream.try_clone() {
                Ok(clone) => clone,
                Err(_) => break,
            });
            let mut writer = stream;
            loop {
                let mut line = String::new();
                match reader.read_line(&mut line) {
                    Ok(0) | Err(_) => break,
                    Ok(_) => {}
                }
                if answered >= fail_after {
                    break 'crash; // dies mid-call: connection + listener drop
                }
                answered += 1;
                let response = service.respond(line.trim_end());
                if writeln!(writer, "{response}")
                    .and_then(|_| writer.flush())
                    .is_err()
                {
                    break;
                }
            }
        }
        drop(listener);

        // The restart: a brand-new serving stack rebinds the same port.
        let listener = loop {
            match TcpListener::bind(addr) {
                Ok(listener) => break listener,
                Err(_) => std::thread::sleep(std::time::Duration::from_millis(10)),
            }
        };
        let server = Arc::new(ServiceServer::start(inner_service(1, 0)));
        let _ = server.serve_listener(listener);
    });
    addr
}

/// The chaos e2e: two concurrent gateway jobs sharded over a two-worker
/// fleet where one worker runs with an injected evaluation-delay skew
/// and the other is killed mid-run and restarted on the same address.
/// Both jobs' results must still be byte-identical to their solo runs
/// on a local (fleet-less) gateway, the restarted worker must be
/// re-admitted, and the re-issue machinery must have fired.
#[test]
fn chaos_fleet_jobs_are_byte_identical_despite_skew_and_worker_restart() {
    let _guard = METRICS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let job_a = submit_line(
        1,
        "acme",
        1,
        "accel",
        &serde_json::to_string(&accel_cfg(67)).unwrap(),
    );
    let job_b = submit_line(
        1,
        "globex",
        2,
        "accel",
        &serde_json::to_string(&accel_cfg(71)).unwrap(),
    );
    let solo_a = solo_result(&job_a);
    let solo_b = solo_result(&job_b);

    // Fleet: one deliberately slow worker (evaluation-delay skew) and
    // one that crashes after the handshake + two answered shards, then
    // restarts on the same address.
    let addrs = vec![
        spawn_slow_worker(1, 300).to_string(),
        spawn_restartable_worker(3).to_string(),
    ];
    let coordinator = DistributedCoordinator::connect_fleet(&addrs).expect("fleet reachable");
    let fleet = SharedCoordinator::new(coordinator);
    let gw = GatewayService::start(
        inner_service(2, 0),
        Some(fleet.clone()),
        GatewayConfig {
            executors: 2,
            ..GatewayConfig::default()
        },
    );
    let id_a = submit(&gw, &job_a);
    let id_b = submit(&gw, &job_b);
    gw.wait_idle();

    assert_eq!(
        result_line(&gw, id_a),
        solo_a,
        "chaos fleet: job A differs from its solo run"
    );
    assert_eq!(
        result_line(&gw, id_b),
        solo_b,
        "chaos fleet: job B differs from its solo run"
    );
    // The chaos actually happened and was absorbed: the killed worker's
    // in-flight work was re-issued, and the restart was re-admitted at
    // a generation boundary.
    let stats = fleet.scheduler_stats();
    assert!(
        stats.reissues > 0,
        "the crashed worker's shard must have been re-issued: {stats:?}"
    );
    assert_eq!(
        fleet.live_workers(),
        2,
        "the restarted worker must be re-admitted"
    );
}

/// The gateway behind the generic server plumbing: a
/// `ServiceServer<GatewayService>` serving TCP answers the handshake
/// with the `jobs` capability, runs a submitted job, streams its
/// events, and serves base commands — over the very stream/batcher path
/// `naas-search gateway --port` uses.
#[test]
fn gateway_serves_jobs_over_tcp_through_the_shared_server_plumbing() {
    let _guard = METRICS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let gw = Arc::new(local_gateway(GatewayConfig {
        executors: 1,
        ..GatewayConfig::default()
    }));
    let server = Arc::new(ServiceServer::start(Arc::clone(&gw)));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().unwrap();
    {
        let server = Arc::clone(&server);
        std::thread::spawn(move || {
            let _ = server.serve_listener(listener);
        });
    }

    let mut client = naas_engine::RemoteWorker::new(addr.to_string());
    let hello = client.call("hello", Vec::new()).expect("handshake");
    let caps = hello
        .get("capabilities")
        .and_then(Value::as_array)
        .expect("hello lists capabilities");
    assert!(caps.contains(&Value::Str("jobs".to_string())));

    let mut cfg = accel_cfg(83);
    cfg.population = 4;
    cfg.iterations = 2;
    let submitted = client
        .call(
            "job_submit",
            vec![
                (
                    "scenario".to_string(),
                    Value::Str("cifar-eyeriss".to_string()),
                ),
                ("tenant".to_string(), Value::Str("tcp".to_string())),
                ("config".to_string(), serde_json::to_value(&cfg)),
            ],
        )
        .expect("submit over TCP");
    let job_id = submitted
        .get("job_id")
        .and_then(Value::as_u64)
        .expect("job id");
    gw.wait_idle();

    let events = client
        .call(
            "job_events",
            vec![("job_id".to_string(), Value::U64(job_id))],
        )
        .expect("events over TCP");
    let list = events.get("events").and_then(Value::as_array).unwrap();
    // Two generations plus the terminal lifecycle event.
    assert_eq!(list.len(), 3, "events: {events:?}");
    assert_eq!(events.get("done"), Some(&Value::Bool(true)));

    let result = client
        .call(
            "job_result",
            vec![("job_id".to_string(), Value::U64(job_id))],
        )
        .expect("result over TCP");
    assert_eq!(result.get("kind"), Some(&Value::Str("accel".to_string())));

    // Base command fall-through on the same connection.
    let stats = client.call("cache_stats", Vec::new()).expect("cache_stats");
    assert!(stats.get("hits").is_some());
}

/// The overlap reactor under multi-tenancy: two tenants' jobs share one
/// overlapped fleet whose speculation bank holds a single slot, so the
/// interleaved jobs evict (or strand) each other's speculative forks.
/// Every result must still be byte-identical to its solo run, the
/// ask/hit/rollback ledger must balance, and `job_events` cursor paging
/// must reassemble the exact event stream even though the pages span
/// generations where the fleet rolled speculation back.
#[test]
fn overlapped_tenants_stay_byte_identical_and_events_page_across_rollbacks() {
    let _guard = METRICS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let job_a = submit_line(
        1,
        "acme",
        1,
        "accel",
        &serde_json::to_string(&accel_cfg(173)).unwrap(),
    );
    let job_b = submit_line(
        1,
        "globex",
        2,
        "accel",
        &serde_json::to_string(&accel_cfg(179)).unwrap(),
    );
    let solo_a = solo_result(&job_a);
    let solo_b = solo_result(&job_b);

    // A skewed fleet (one straggler) gives the reactor idle capacity to
    // speculate into; the one-slot bank makes the tenants fight over it.
    let addrs = vec![
        spawn_slow_worker(1, 20_000).to_string(),
        spawn_slow_worker(1, 0).to_string(),
    ];
    let coordinator = DistributedCoordinator::connect_fleet(&addrs).expect("fleet reachable");
    let fleet = SharedCoordinator::new(coordinator);
    fleet.configure(Some(5), Some(std::time::Duration::from_millis(2)));
    fleet.set_overlap(true);
    fleet.set_spec_capacity(1);
    let gw = GatewayService::start(
        inner_service(2, 0),
        Some(fleet.clone()),
        GatewayConfig {
            executors: 2,
            ..GatewayConfig::default()
        },
    );
    let id_a = submit(&gw, &job_a);
    let id_b = submit(&gw, &job_b);
    gw.wait_idle();

    assert_eq!(
        result_line(&gw, id_a),
        solo_a,
        "overlapped gateway: tenant acme differs from its solo run"
    );
    assert_eq!(
        result_line(&gw, id_b),
        solo_b,
        "overlapped gateway: tenant globex differs from its solo run"
    );

    // The reactor actually speculated, and the ledger balances: every
    // ask resolved to a banked hit or a rollback. A one-slot bank
    // shared by two jobs guarantees at least one rollback — an evicted
    // or end-of-search-stranded fork if the schedule interleaves, a
    // stale final fork if it happens to serialize.
    let stats = fleet.overlap_stats();
    assert!(stats.asks > 0, "overlap must have speculated: {stats:?}");
    assert!(
        stats.rollbacks > 0,
        "a one-slot bank shared by two tenants must roll back: {stats:?}"
    );
    assert_eq!(
        stats.asks,
        stats.hits + stats.rollbacks,
        "every ask must resolve to a hit or a rollback: {stats:?}"
    );

    // Cursor paging across the rollback boundary: for every cursor
    // position, `since=k` must return exactly the suffix of the
    // single-shot stream, with a stable `next` and terminal `done`.
    for id in [id_a, id_b] {
        let full = result_of(&gw.respond(&format!(
            r#"{{"id":"ev","cmd":"job_events","job_id":{id}}}"#
        )));
        let all = full
            .get("events")
            .and_then(Value::as_array)
            .expect("events array")
            .to_vec();
        assert!(!all.is_empty(), "a finished job has events: {full:?}");
        for k in 0..=all.len() {
            let page = result_of(&gw.respond(&format!(
                r#"{{"id":"ev","cmd":"job_events","job_id":{id},"since":{k}}}"#
            )));
            let events = page
                .get("events")
                .and_then(Value::as_array)
                .expect("events array");
            assert_eq!(
                events,
                &all[k..],
                "page at cursor {k} must be the exact suffix"
            );
            assert_eq!(
                page.get("next"),
                Some(&Value::U64(all.len() as u64)),
                "the cursor always advances to the stream head"
            );
            assert_eq!(
                page.get("done"),
                Some(&Value::Bool(true)),
                "a finished job's pages are terminal"
            );
        }
    }
}
