//! Distributed sharded search: a coordinator fanning generations over
//! remote TCP workers must reproduce the single-process search
//! bit-for-bit — with a healthy fleet, with a worker dying
//! mid-generation, and with the whole fleet gone (local fallback).

use naas::service::{BatchEvalService, ServiceConfig, ServiceServer};
use naas::{
    accel_search_init, AccelSearchConfig, CoSearchEngine, DistributedCoordinator,
    MappingSearchConfig,
};
use naas_cost::CostModel;
use naas_engine::scenario;
use naas_ir::Network;
use serde_json::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener};
use std::sync::Arc;

/// Spawns an in-process TCP worker — the exact serving stack behind
/// `naas-search worker` — and returns its address. The worker thread is
/// detached; it dies with the test process.
fn spawn_worker(threads: usize) -> SocketAddr {
    spawn_slow_worker(threads, 0)
}

/// [`spawn_worker`] with an injected per-candidate evaluation delay
/// (microseconds, serialized across requests) — the deterministic
/// stand-in for an underpowered machine in a heterogeneous fleet.
fn spawn_slow_worker(threads: usize, eval_delay_us: u64) -> SocketAddr {
    let service = BatchEvalService::new(ServiceConfig {
        threads,
        mapping: MappingSearchConfig::quick(7),
        cache_file: None,
        cache_cap: 0,
        eval_delay_us,
    })
    .expect("no cache file to load");
    let server = Arc::new(ServiceServer::start(Arc::new(service)));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        let _ = server.serve_listener(listener);
    });
    addr
}

/// A worker that answers `fail_after` requests normally, then drops every
/// connection mid-call — the deterministic stand-in for a machine dying
/// mid-generation.
fn spawn_flaky_worker(fail_after: usize) -> SocketAddr {
    let service = BatchEvalService::new(ServiceConfig {
        threads: 1,
        mapping: MappingSearchConfig::quick(7),
        cache_file: None,
        cache_cap: 0,
        eval_delay_us: 0,
    })
    .expect("no cache file to load");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        let mut answered = 0usize;
        for stream in listener.incoming() {
            let Ok(stream) = stream else { break };
            let mut reader = BufReader::new(match stream.try_clone() {
                Ok(clone) => clone,
                Err(_) => break,
            });
            let mut writer = stream;
            loop {
                let mut line = String::new();
                match reader.read_line(&mut line) {
                    Ok(0) | Err(_) => break, // connection closed by peer
                    Ok(_) => {}
                }
                if answered >= fail_after {
                    return; // dies: connection drops mid-call, listener too
                }
                answered += 1;
                let response = service.respond(line.trim_end());
                if writeln!(writer, "{response}")
                    .and_then(|_| writer.flush())
                    .is_err()
                {
                    break;
                }
            }
        }
    });
    addr
}

/// A worker whose process is healthy but whose every shard request is
/// answered with an orderly error response — the contained-panic /
/// rejected-request shape. It answers the `hello` handshake properly
/// (it *is* a compatible build; only its evaluations are poisoned).
fn spawn_rejecting_worker() -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { break };
            let mut reader = BufReader::new(match stream.try_clone() {
                Ok(clone) => clone,
                Err(_) => break,
            });
            let mut writer = stream;
            loop {
                let mut line = String::new();
                match reader.read_line(&mut line) {
                    Ok(0) | Err(_) => break,
                    Ok(_) => {}
                }
                let request = serde_json::from_str::<Value>(line.trim_end()).ok();
                let id = request
                    .as_ref()
                    .and_then(|v| v.get("id").cloned())
                    .unwrap_or(Value::Null);
                let is_hello = request
                    .as_ref()
                    .and_then(|v| v.get("cmd"))
                    .and_then(Value::as_str)
                    == Some("hello");
                let response = if is_hello {
                    naas_engine::service::ok_line(
                        &id,
                        serde_json::parse_str(&format!(
                            r#"{{"protocol": {}, "capabilities": ["evaluate_shard"]}}"#,
                            naas_engine::PROTOCOL_VERSION
                        ))
                        .unwrap(),
                    )
                } else {
                    naas_engine::service::error_line(&id, "injected rejection")
                };
                if writeln!(writer, "{response}")
                    .and_then(|_| writer.flush())
                    .is_err()
                {
                    break;
                }
            }
        }
    });
    addr
}

fn scenario_fixture() -> (naas_engine::Scenario, Vec<Network>) {
    let scenario = scenario::find("cifar-eyeriss").expect("registered scenario");
    let job = scenario.resolve().expect("scenario resolves");
    (scenario, job.networks)
}

fn search_cfg(seed: u64) -> AccelSearchConfig {
    let mut cfg = AccelSearchConfig::quick(seed);
    cfg.mapping = MappingSearchConfig::quick(7);
    cfg.threads = 1;
    cfg
}

fn run_local(cfg: &AccelSearchConfig, networks: &[Network]) -> naas::AccelSearchResult {
    let scenario = scenario::find("cifar-eyeriss").unwrap();
    let job = scenario.resolve().unwrap();
    let engine = CoSearchEngine::new(cfg.threads);
    let model = CostModel::new();
    let mut state = accel_search_init(&job.constraint, cfg, &[]);
    while naas::accel_search_step(&engine, &model, networks, &mut state) {}
    state.into_result().expect("search finds a design")
}

fn run_distributed(
    cfg: &AccelSearchConfig,
    networks: &[Network],
    coordinator: &mut DistributedCoordinator,
) -> naas::AccelSearchResult {
    let scenario = scenario::find("cifar-eyeriss").unwrap();
    let job = scenario.resolve().unwrap();
    let engine = CoSearchEngine::new(cfg.threads);
    let model = CostModel::new();
    let mut state = accel_search_init(&job.constraint, cfg, &[]);
    while coordinator.step(&engine, &model, networks, &mut state) {}
    state.into_result().expect("search finds a design")
}

/// Best design, history and evaluation counts must agree exactly —
/// sharding only relocates pure-function evaluations. (`cache_stats` is
/// intentionally excluded: a coordinator never runs local lookups.)
fn assert_bit_identical(
    distributed: &naas::AccelSearchResult,
    local: &naas::AccelSearchResult,
    context: &str,
) {
    assert_eq!(
        distributed.best.accelerator, local.best.accelerator,
        "{context}: best design differs"
    );
    assert_eq!(
        distributed.best.reward, local.best.reward,
        "{context}: best reward differs"
    );
    assert_eq!(
        distributed.best.per_network, local.best.per_network,
        "{context}: per-network costs differ"
    );
    assert_eq!(
        distributed.history, local.history,
        "{context}: history differs"
    );
    assert_eq!(
        distributed.evaluations, local.evaluations,
        "{context}: evaluation counts differ"
    );
}

/// The acceptance criterion: a two-worker sharded run is bit-identical
/// to the single-process run on the same scenario.
#[test]
fn two_worker_search_is_bit_identical_to_single_process() {
    let (scenario, networks) = scenario_fixture();
    let cfg = search_cfg(41);
    let local = run_local(&cfg, &networks);

    let addrs = vec![spawn_worker(1).to_string(), spawn_worker(1).to_string()];
    let mut coordinator =
        DistributedCoordinator::connect(&addrs, &scenario).expect("fleet reachable");
    assert_eq!(coordinator.live_workers(), 2);
    assert_eq!(coordinator.plan().workers, addrs);
    let distributed = run_distributed(&cfg, &networks, &mut coordinator);

    assert_bit_identical(&distributed, &local, "two healthy workers");
    assert_eq!(coordinator.live_workers(), 2, "no worker was lost");
}

/// A worker that dies mid-run: its shard is re-issued to the survivor
/// and the final result still matches the no-failure run exactly.
#[test]
fn dead_worker_shard_is_reissued_with_identical_results() {
    let (scenario, networks) = scenario_fixture();
    let cfg = search_cfg(43);
    let local = run_local(&cfg, &networks);

    // The flaky worker answers the connect handshake and one shard
    // (generation 0), then drops the connection mid-generation-1; the
    // healthy worker absorbs its shard. Its listener is gone for good,
    // so every rejoin re-dial is refused and it stays dead.
    let addrs = vec![
        spawn_flaky_worker(2).to_string(),
        spawn_worker(1).to_string(),
    ];
    let mut coordinator =
        DistributedCoordinator::connect(&addrs, &scenario).expect("fleet reachable");
    let distributed = run_distributed(&cfg, &networks, &mut coordinator);

    assert_bit_identical(&distributed, &local, "worker died mid-run");
    assert_eq!(
        coordinator.live_workers(),
        1,
        "the flaky worker must be marked dead"
    );
}

/// An orderly error *response* is a request failure, not a worker
/// death: the shard lands on the local fallback, the result is still
/// bit-identical, and — crucially — the rejecting worker stays alive
/// (one poisoned request must not destroy the fleet).
#[test]
fn rejected_shard_goes_local_without_killing_the_worker() {
    let (scenario, networks) = scenario_fixture();
    let cfg = search_cfg(61);
    let local = run_local(&cfg, &networks);

    let addrs = vec![
        spawn_rejecting_worker().to_string(),
        spawn_worker(1).to_string(),
    ];
    let mut coordinator =
        DistributedCoordinator::connect(&addrs, &scenario).expect("fleet reachable");
    let distributed = run_distributed(&cfg, &networks, &mut coordinator);

    assert_bit_identical(&distributed, &local, "worker rejecting every shard");
    assert_eq!(
        coordinator.live_workers(),
        2,
        "an orderly error response must not mark the worker dead"
    );
}

/// The whole fleet dying mid-run falls back to coordinator-local
/// evaluation — the search still converges to the identical result.
#[test]
fn total_fleet_loss_falls_back_to_local_evaluation() {
    let (scenario, networks) = scenario_fixture();
    let cfg = search_cfg(47);
    let local = run_local(&cfg, &networks);

    // One answered request is the handshake itself: the fleet's only
    // worker dies on its very first shard.
    let addrs = vec![spawn_flaky_worker(1).to_string()];
    let mut coordinator =
        DistributedCoordinator::connect(&addrs, &scenario).expect("fleet reachable");
    let distributed = run_distributed(&cfg, &networks, &mut coordinator);

    assert_bit_identical(&distributed, &local, "entire fleet lost");
    assert_eq!(coordinator.live_workers(), 0);
}

/// `search_step` over the wire: a thin client can drive a whole search
/// remotely by round-tripping the serialized state, and the trajectory
/// matches the in-process one exactly.
#[test]
fn remote_search_step_reproduces_local_trajectory() {
    let (scenario, networks) = scenario_fixture();
    let cfg = search_cfg(53);
    let local = run_local(&cfg, &networks);

    let job = scenario.resolve().unwrap();
    let mut state = accel_search_init(&job.constraint, &cfg, &[]);
    let mut worker = naas_engine::RemoteWorker::new(spawn_worker(1).to_string());
    let scenario_value = serde_json::to_value(&scenario);
    loop {
        let reply = worker
            .call(
                "search_step",
                vec![
                    ("scenario".to_string(), scenario_value.clone()),
                    ("state".to_string(), serde_json::to_value(&state)),
                ],
            )
            .expect("remote step succeeds");
        let advanced = reply.get("advanced") == Some(&Value::Bool(true));
        state = serde_json::from_value(reply.get("state").expect("reply carries state"))
            .expect("state round-trips");
        if !advanced {
            panic!("remote step refused before the budget was exhausted");
        }
        if reply.get("done") == Some(&Value::Bool(true)) {
            break;
        }
    }
    let remote = state.into_result().expect("search finds a design");
    assert_eq!(remote.best.accelerator, local.best.accelerator);
    assert_eq!(remote.best.reward, local.best.reward);
    assert_eq!(remote.history, local.history);
    assert_eq!(remote.evaluations, local.evaluations);
}

/// Cache gossip: after a sharded run, the coordinator's engine holds the
/// fleet's mapping results (absorbed deltas), so a follow-up local run
/// of the same scenario is answered entirely from cache.
#[test]
fn coordinator_absorbs_fleet_cache_deltas() {
    let (scenario, networks) = scenario_fixture();
    let cfg = search_cfg(59);

    let addrs = vec![spawn_worker(1).to_string(), spawn_worker(1).to_string()];
    let mut coordinator =
        DistributedCoordinator::connect(&addrs, &scenario).expect("fleet reachable");

    let job = scenario.resolve().unwrap();
    let engine = CoSearchEngine::new(1);
    let model = CostModel::new();
    let mut state = accel_search_init(&job.constraint, &cfg, &[]);
    while coordinator.step(&engine, &model, &networks, &mut state) {}
    let distributed = state.into_result().expect("search finds a design");
    assert!(
        engine.cache_stats().entries > 0,
        "worker deltas must land in the coordinator cache"
    );

    // Re-run the same search locally on the coordinator's engine: every
    // mapping search was already solved somewhere in the fleet.
    let misses_before = engine.cache_stats().misses;
    let mut state = accel_search_init(&job.constraint, &cfg, &[]);
    while naas::accel_search_step(&engine, &model, &networks, &mut state) {}
    let replay = state.into_result().expect("search finds a design");
    assert_eq!(replay.best.accelerator, distributed.best.accelerator);
    assert_eq!(replay.history, distributed.history);
    assert_eq!(
        engine.cache_stats().misses,
        misses_before,
        "replay must be answered entirely from absorbed fleet results"
    );
}

/// A worker that answers `fail_after` requests, then "crashes" (drops
/// its listener and every connection mid-call) and is immediately
/// "restarted": a fresh serving stack — cold cache, new process state —
/// rebinds the same address and serves indefinitely. The deterministic
/// stand-in for `kill <worker-pid> && naas-search worker --port <same>`.
fn spawn_restartable_worker(fail_after: usize) -> SocketAddr {
    let service = BatchEvalService::new(ServiceConfig {
        threads: 1,
        mapping: MappingSearchConfig::quick(7),
        cache_file: None,
        cache_cap: 0,
        eval_delay_us: 0,
    })
    .expect("no cache file to load");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        // Phase 1: serve until the crash point.
        let mut answered = 0usize;
        'crash: for stream in listener.incoming() {
            let Ok(stream) = stream else { break };
            let mut reader = BufReader::new(match stream.try_clone() {
                Ok(clone) => clone,
                Err(_) => break,
            });
            let mut writer = stream;
            loop {
                let mut line = String::new();
                match reader.read_line(&mut line) {
                    Ok(0) | Err(_) => break, // connection closed by peer
                    Ok(_) => {}
                }
                if answered >= fail_after {
                    break 'crash; // dies mid-call: connection + listener drop
                }
                answered += 1;
                let response = service.respond(line.trim_end());
                if writeln!(writer, "{response}")
                    .and_then(|_| writer.flush())
                    .is_err()
                {
                    break;
                }
            }
        }
        drop(listener);
        drop(service);

        // Phase 2: the restart. A brand-new serving stack rebinds the
        // same port (retry while the OS releases it) and serves for the
        // rest of the test.
        let listener = loop {
            match TcpListener::bind(addr) {
                Ok(listener) => break listener,
                Err(_) => std::thread::sleep(std::time::Duration::from_millis(10)),
            }
        };
        let fresh = BatchEvalService::new(ServiceConfig {
            threads: 1,
            mapping: MappingSearchConfig::quick(7),
            cache_file: None,
            cache_cap: 0,
            eval_delay_us: 0,
        })
        .expect("no cache file to load");
        let server = Arc::new(ServiceServer::start(Arc::new(fresh)));
        let _ = server.serve_listener(listener);
    });
    addr
}

/// The rejoin acceptance criterion: a worker killed mid-run and
/// restarted on the same address is re-dialed at the next generation
/// boundary, re-admitted into the shard plan, and the final result is
/// still bit-identical to the uninterrupted single-process run.
#[test]
fn killed_and_restarted_worker_rejoins_with_identical_results() {
    let (scenario, networks) = scenario_fixture();
    let cfg = search_cfg(67);
    assert!(
        cfg.iterations >= 3,
        "the timeline below needs ≥3 generations"
    );
    let local = run_local(&cfg, &networks);

    // Timeline: the restartable worker answers the handshake + its
    // generation-0 shard, crashes receiving its generation-1 shard
    // (which is re-issued to the healthy worker), restarts immediately,
    // and is re-dialed at the generation-2 boundary (death + 1).
    let addrs = vec![
        spawn_restartable_worker(2).to_string(),
        spawn_worker(1).to_string(),
    ];
    let mut coordinator =
        DistributedCoordinator::connect(&addrs, &scenario).expect("fleet reachable");
    let distributed = run_distributed(&cfg, &networks, &mut coordinator);

    assert_bit_identical(&distributed, &local, "worker killed and restarted");
    assert_eq!(
        coordinator.live_workers(),
        2,
        "the restarted worker must be re-admitted within one generation"
    );
}

/// Distributed joint search: each candidate's whole NAS evolution runs
/// on a worker, and the matched (accelerator, subnet, accuracy, EDP)
/// tuple is bit-identical to the single-process joint search.
#[test]
fn distributed_joint_search_matches_single_process() {
    let model = CostModel::new();
    let accuracy = naas_nas::AccuracyModel::default();
    let envelope = naas_accel::ResourceConstraint::from_design(&naas_accel::baselines::eyeriss());
    let mut cfg = naas::JointConfig::quick(29);
    cfg.accel.mapping = MappingSearchConfig::quick(7);
    cfg.accel.threads = 1;

    // Single-process reference trajectory.
    let engine = CoSearchEngine::new(1);
    let mut state = naas::joint_search_init(&envelope, &cfg);
    while naas::joint_search_step(&engine, &model, &accuracy, &mut state) {}
    let local = state.into_result().expect("joint search finds a pair");

    // The same trajectory with every NAS evolution sharded over two
    // workers (no scenario: the joint workload is the NAS space).
    let addrs = vec![spawn_worker(1).to_string(), spawn_worker(1).to_string()];
    let mut coordinator = DistributedCoordinator::connect_joint(&addrs).expect("fleet reachable");
    let engine = CoSearchEngine::new(1);
    let mut state = naas::joint_search_init(&envelope, &cfg);
    while coordinator.step_joint(&engine, &model, &accuracy, &mut state) {}
    let distributed = state.into_result().expect("joint search finds a pair");

    assert_eq!(
        distributed, local,
        "distributed joint search must be bit-identical"
    );
    assert_eq!(coordinator.live_workers(), 2);
}

/// Joint search over a degraded fleet: a worker dying mid-run loses
/// nothing — its shard of NAS evolutions is re-issued and the result
/// still matches the uninterrupted single-process run.
#[test]
fn distributed_joint_search_survives_worker_death() {
    let model = CostModel::new();
    let accuracy = naas_nas::AccuracyModel::default();
    let envelope = naas_accel::ResourceConstraint::from_design(&naas_accel::baselines::eyeriss());
    let mut cfg = naas::JointConfig::quick(31);
    cfg.accel.mapping = MappingSearchConfig::quick(7);
    cfg.accel.threads = 1;

    let engine = CoSearchEngine::new(1);
    let mut state = naas::joint_search_init(&envelope, &cfg);
    while naas::joint_search_step(&engine, &model, &accuracy, &mut state) {}
    let local = state.into_result().expect("joint search finds a pair");

    // Handshake + one shard, then death; the healthy worker (and the
    // local fallback, if it comes to that) absorbs the rest.
    let addrs = vec![
        spawn_flaky_worker(2).to_string(),
        spawn_worker(1).to_string(),
    ];
    let mut coordinator = DistributedCoordinator::connect_joint(&addrs).expect("fleet reachable");
    let engine = CoSearchEngine::new(1);
    let mut state = naas::joint_search_init(&envelope, &cfg);
    while coordinator.step_joint(&engine, &model, &accuracy, &mut state) {}
    let distributed = state.into_result().expect("joint search finds a pair");

    assert_eq!(
        distributed, local,
        "worker death must not change the joint result"
    );
}

/// Joint `search_step` over the wire: a thin client round-trips a
/// serialized `JointSearchState` with `joint: true` and reproduces the
/// in-process joint trajectory exactly.
#[test]
fn remote_joint_search_step_reproduces_local_trajectory() {
    let model = CostModel::new();
    let accuracy = naas_nas::AccuracyModel::default();
    let envelope = naas_accel::ResourceConstraint::from_design(&naas_accel::baselines::eyeriss());
    let mut cfg = naas::JointConfig::quick(37);
    cfg.accel.mapping = MappingSearchConfig::quick(7);
    cfg.accel.threads = 1;

    let engine = CoSearchEngine::new(1);
    let mut state = naas::joint_search_init(&envelope, &cfg);
    while naas::joint_search_step(&engine, &model, &accuracy, &mut state) {}
    let local = state.into_result().expect("joint search finds a pair");

    let mut state = naas::joint_search_init(&envelope, &cfg);
    let mut worker = naas_engine::RemoteWorker::new(spawn_worker(1).to_string());
    loop {
        let reply = worker
            .call(
                "search_step",
                vec![
                    ("joint".to_string(), Value::Bool(true)),
                    ("state".to_string(), serde_json::to_value(&state)),
                    ("accuracy".to_string(), serde_json::to_value(&accuracy)),
                ],
            )
            .expect("remote joint step succeeds");
        assert_eq!(
            reply.get("advanced"),
            Some(&Value::Bool(true)),
            "remote step refused before the budget was exhausted"
        );
        state = serde_json::from_value(reply.get("state").expect("reply carries state"))
            .expect("joint state round-trips");
        if reply.get("done") == Some(&Value::Bool(true)) {
            break;
        }
    }
    let remote = state.into_result().expect("joint search finds a pair");
    assert_eq!(remote, local);
}

/// Permutation fuzzing of the merge path: heterogeneous per-worker
/// delays plus an aggressive steal deadline drive the scheduler through
/// adversarial completion orders — steals, re-splits, speculative
/// re-issues and duplicate late replies — across several seeds. The
/// merged result must stay byte-identical to the single-process run in
/// every ordering, because micro-shards are contiguous candidate ranges
/// merged by position, never by arrival.
#[test]
fn adversarial_completion_orders_stay_bit_identical() {
    let (scenario, networks) = scenario_fixture();
    for (seed, delays) in [(71u64, [0u64, 2_000]), (73, [2_000, 0]), (79, [900, 300])] {
        let cfg = search_cfg(seed);
        let local = run_local(&cfg, &networks);

        let addrs = vec![
            spawn_slow_worker(1, delays[0]).to_string(),
            spawn_slow_worker(1, delays[1]).to_string(),
        ];
        let mut coordinator =
            DistributedCoordinator::connect(&addrs, &scenario).expect("fleet reachable");
        coordinator.set_microshards(5);
        coordinator.set_steal_deadline(std::time::Duration::from_millis(2));
        let distributed = run_distributed(&cfg, &networks, &mut coordinator);

        assert_bit_identical(
            &distributed,
            &local,
            &format!("seed {seed}, delays {delays:?}"),
        );
        assert!(
            coordinator.scheduler_stats().microshards > 0,
            "the dynamic scheduler actually ran"
        );
    }
}

/// Speculative re-issue end-to-end: a worker an order of magnitude
/// slower than its peer, under a tiny steal deadline, forces in-flight
/// shards past the deadline — the fast worker re-issues them, wins, and
/// the loser's late answer is dropped as a counted duplicate instead of
/// a protocol error. The run stays bit-identical throughout.
#[test]
fn speculative_reissue_tolerates_duplicate_late_replies() {
    let (scenario, networks) = scenario_fixture();
    let cfg = search_cfg(83);
    let local = run_local(&cfg, &networks);

    let addrs = vec![
        spawn_slow_worker(1, 20_000).to_string(),
        spawn_worker(1).to_string(),
    ];
    let mut coordinator =
        DistributedCoordinator::connect(&addrs, &scenario).expect("fleet reachable");
    coordinator.set_microshards(6);
    coordinator.set_steal_deadline(std::time::Duration::from_millis(2));
    let distributed = run_distributed(&cfg, &networks, &mut coordinator);

    assert_bit_identical(&distributed, &local, "10× straggler with speculation");
    let stats = coordinator.scheduler_stats();
    assert!(
        stats.speculations > 0,
        "a 20 ms/candidate straggler against a 2 ms deadline must trigger \
         speculative re-issue, got {stats:?}"
    );
    assert!(
        stats.duplicate_replies > 0,
        "the losing copy's late reply must be dropped and counted, got {stats:?}"
    );
    assert_eq!(
        coordinator.live_workers(),
        2,
        "slow is not dead: both workers survive the run"
    );
}

/// The handshake end-to-end: a real worker advertises the joint
/// capability, and a version-mismatched client is refused cleanly.
#[test]
fn worker_handshake_advertises_capabilities_end_to_end() {
    let addr = spawn_worker(1).to_string();
    let mut worker = naas_engine::RemoteWorker::new(&addr);
    worker.enable_handshake("handshake-test");
    worker
        .connect()
        .expect("handshake succeeds between same builds");
    assert!(worker.has_capability("joint"));
    assert!(worker.has_capability("evaluate_shard"));
    assert!(worker.has_capability("metrics"));

    // A client stating a wrong version is refused with an orderly error
    // (the server side of the mismatch check).
    let mut raw = naas_engine::RemoteWorker::new(&addr);
    let err = raw
        .call("hello", vec![("protocol".to_string(), Value::U64(9999))])
        .unwrap_err();
    assert!(err.to_string().contains("protocol mismatch"), "got: {err}");
}

/// A worker that answers the handshake as a fully compatible build but
/// poisons every `evaluate_shard` result with objective values no
/// honest cost model can produce (negative energy) — the deterministic
/// stand-in for a corrupted or hostile machine. The coordinator must
/// reject the reply at the deserialization seam, mark the worker dead
/// and re-issue the shard; the poison must never reach the reward
/// aggregation as a panic.
fn spawn_poison_worker() -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { break };
            let mut reader = BufReader::new(match stream.try_clone() {
                Ok(clone) => clone,
                Err(_) => break,
            });
            let mut writer = stream;
            loop {
                let mut line = String::new();
                match reader.read_line(&mut line) {
                    Ok(0) | Err(_) => break,
                    Ok(_) => {}
                }
                let request = serde_json::from_str::<Value>(line.trim_end()).ok();
                let id = request
                    .as_ref()
                    .and_then(|v| v.get("id").cloned())
                    .unwrap_or(Value::Null);
                let cmd = request
                    .as_ref()
                    .and_then(|v| v.get("cmd"))
                    .and_then(Value::as_str)
                    .unwrap_or("")
                    .to_string();
                let response = match cmd.as_str() {
                    "hello" => naas_engine::service::ok_line(
                        &id,
                        serde_json::parse_str(&format!(
                            r#"{{"protocol": {}, "capabilities": ["evaluate_shard"]}}"#,
                            naas_engine::PROTOCOL_VERSION
                        ))
                        .unwrap(),
                    ),
                    "evaluate_shard" => {
                        let count = request
                            .as_ref()
                            .and_then(|v| v.get("candidates"))
                            .and_then(Value::as_array)
                            .map(|c| c.len())
                            .unwrap_or(0);
                        let poison = r#"{"reward": 1.0, "per_network": [], "objectives": {"latency_cycles": 1000, "energy_nj": -5.0, "area_um2": 1.0e6, "accuracy": 0.0}}"#;
                        let results: Vec<String> = vec![poison.to_string(); count];
                        naas_engine::service::ok_line(
                            &id,
                            serde_json::parse_str(&format!(
                                r#"{{"results": [{}]}}"#,
                                results.join(", ")
                            ))
                            .unwrap(),
                        )
                    }
                    _ => naas_engine::service::error_line(&id, "unsupported by poison worker"),
                };
                if writeln!(writer, "{response}")
                    .and_then(|_| writer.flush())
                    .is_err()
                {
                    break;
                }
            }
        }
    });
    addr
}

/// The trust-boundary regression (ISSUE 8): a worker whose replies carry
/// well-formed JSON but physically impossible objective values is a
/// *shard error* — worker marked dead, shard re-issued, run bit-identical
/// — never a coordinator panic.
#[test]
fn poisoned_objectives_are_a_shard_error_not_a_panic() {
    let (scenario, networks) = scenario_fixture();
    let cfg = search_cfg(89);
    let local = run_local(&cfg, &networks);

    let addrs = vec![
        spawn_poison_worker().to_string(),
        spawn_worker(1).to_string(),
    ];
    let mut coordinator =
        DistributedCoordinator::connect(&addrs, &scenario).expect("fleet reachable");
    let distributed = run_distributed(&cfg, &networks, &mut coordinator);

    assert_bit_identical(&distributed, &local, "worker replying poisoned objectives");
    assert_eq!(
        coordinator.live_workers(),
        1,
        "a worker replying invalid objective values must be marked dead"
    );
}

/// Runs the search to completion and returns the final state — archive
/// included — instead of folding it into a result.
fn run_local_state(cfg: &AccelSearchConfig, networks: &[Network]) -> naas::AccelSearchState {
    let scenario = scenario::find("cifar-eyeriss").unwrap();
    let job = scenario.resolve().unwrap();
    let engine = CoSearchEngine::new(cfg.threads);
    let model = CostModel::new();
    let mut state = accel_search_init(&job.constraint, cfg, &[]);
    while naas::accel_search_step(&engine, &model, networks, &mut state) {}
    state
}

/// The serialized bytes of a state's Pareto front — the byte-identity
/// currency of the distributed acceptance criterion.
fn front_bytes(state: &naas::AccelSearchState) -> String {
    serde_json::to_string(state.archive().expect("pareto mode keeps an archive"))
        .expect("archive serializes")
}

/// The multi-objective acceptance criterion: in `--objectives pareto`
/// mode, a two-worker run under adversarial completion orders (steals,
/// re-splits, speculative re-issues, duplicate late replies) produces a
/// serialized front *byte-identical* to the single-process run — the
/// archive folds offers in candidate order, never arrival order.
#[test]
fn pareto_front_stays_byte_identical_across_adversarial_orders() {
    let (scenario, networks) = scenario_fixture();
    for (seed, delays) in [(101u64, [0u64, 2_000]), (103, [1_500, 0])] {
        let mut cfg = search_cfg(seed);
        cfg.objectives = naas::ObjectivePolicy::Pareto;
        let local = run_local_state(&cfg, &networks);

        let addrs = vec![
            spawn_slow_worker(1, delays[0]).to_string(),
            spawn_slow_worker(1, delays[1]).to_string(),
        ];
        let mut coordinator =
            DistributedCoordinator::connect(&addrs, &scenario).expect("fleet reachable");
        coordinator.set_microshards(5);
        coordinator.set_steal_deadline(std::time::Duration::from_millis(2));

        let job = scenario.resolve().unwrap();
        let engine = CoSearchEngine::new(cfg.threads);
        let model = CostModel::new();
        let mut state = accel_search_init(&job.constraint, &cfg, &[]);
        while coordinator.step(&engine, &model, &networks, &mut state) {}

        assert_eq!(
            front_bytes(&state),
            front_bytes(&local),
            "seed {seed}, delays {delays:?}: serialized fronts must be byte-identical"
        );
        let local_result = local.into_result().expect("search finds a design");
        let distributed_result = state.into_result().expect("search finds a design");
        assert_bit_identical(
            &distributed_result,
            &local_result,
            &format!("pareto mode, seed {seed}, delays {delays:?}"),
        );
    }
}

/// Pareto mode through the full failure gauntlet: a worker killed
/// mid-run and restarted on the same address, *plus* a mid-run
/// checkpoint round-trip of the search state (serialize → deserialize →
/// continue). The resumed, degraded run's front is still byte-identical
/// to the uninterrupted single-process front — the archive lives inside
/// the checkpointed state and folds deterministically.
#[test]
fn pareto_front_survives_kill_restart_and_checkpoint_resume() {
    let (scenario, networks) = scenario_fixture();
    let mut cfg = search_cfg(107);
    cfg.objectives = naas::ObjectivePolicy::Pareto;
    assert!(
        cfg.iterations >= 3,
        "the timeline below needs ≥3 generations"
    );
    let local = run_local_state(&cfg, &networks);

    let addrs = vec![
        spawn_restartable_worker(2).to_string(),
        spawn_worker(1).to_string(),
    ];
    let mut coordinator =
        DistributedCoordinator::connect(&addrs, &scenario).expect("fleet reachable");

    let job = scenario.resolve().unwrap();
    let engine = CoSearchEngine::new(cfg.threads);
    let model = CostModel::new();
    let mut state = accel_search_init(&job.constraint, &cfg, &[]);

    // Generation 0 lands, then the state takes a checkpoint round-trip —
    // exactly what `naas-search resume` replays from disk.
    assert!(coordinator.step(&engine, &model, &networks, &mut state));
    let checkpoint = serde_json::to_string(&state).expect("state serializes");
    let mut state: naas::AccelSearchState =
        serde_json::from_str(&checkpoint).expect("state deserializes");
    while coordinator.step(&engine, &model, &networks, &mut state) {}

    assert_eq!(
        front_bytes(&state),
        front_bytes(&local),
        "kill/restart + checkpoint resume: serialized fronts must be byte-identical"
    );
    assert_eq!(
        coordinator.live_workers(),
        2,
        "the restarted worker must be re-admitted"
    );
}

/// Mixed-version fleet protection: yesterday's build speaks protocol 2
/// (its shard results carry no `objectives`), and the v3 handshake must
/// reject it as `Incompatible` before a single shard is exchanged — a
/// v2 worker silently admitted would poison the byte-identity of every
/// merged generation.
#[test]
fn v2_worker_is_rejected_as_incompatible() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().unwrap().to_string();
    std::thread::spawn(move || {
        let Ok((stream, _)) = listener.accept() else {
            return;
        };
        let mut reader = BufReader::new(match stream.try_clone() {
            Ok(clone) => clone,
            Err(_) => return,
        });
        let mut writer = stream;
        let mut line = String::new();
        if reader.read_line(&mut line).unwrap_or(0) == 0 {
            return;
        }
        let id = serde_json::from_str::<Value>(line.trim_end())
            .ok()
            .and_then(|v| v.get("id").cloned())
            .unwrap_or(Value::Null);
        let reply = naas_engine::service::ok_line(
            &id,
            serde_json::parse_str(r#"{"protocol": 2, "capabilities": ["evaluate_shard"]}"#)
                .unwrap(),
        );
        let _ = writeln!(writer, "{reply}").and_then(|_| writer.flush());
    });

    let mut worker = naas_engine::RemoteWorker::new(&addr);
    worker.enable_handshake("v3-client");
    let err = worker.connect().expect_err("v2 worker must be refused");
    assert!(
        matches!(err, naas_engine::RemoteError::Incompatible(_)),
        "got {err}"
    );
    assert!(err.to_string().contains("protocol 2"), "got {err}");
    assert!(
        !worker.is_connected(),
        "mismatch must not leave a connection"
    );
}

/// Scheduler-flag validation is a parse-time contract: the exact
/// refusals the CLI prints for a zero steal deadline and for more
/// micro-shards than candidates are pinned here, so `naas_search`
/// keeps rejecting these before any worker is dialed.
#[test]
fn scheduler_flag_validation_rejects_degenerate_plans() {
    let err = naas::validate_scheduler_flags(6, 0, 10)
        .expect_err("a zero steal deadline must be refused");
    assert!(
        err.contains("--steal-deadline must be at least 1 ms"),
        "got {err}"
    );
    assert!(
        err.contains("speculatively duplicate all work"),
        "the refusal must say why: got {err}"
    );

    let err = naas::validate_scheduler_flags(11, 500, 10)
        .expect_err("more micro-shards than candidates must be refused");
    assert!(
        err.contains("--microshards 11 exceeds the population size 10"),
        "got {err}"
    );
    assert!(err.contains("at most one per candidate"), "got {err}");

    // The boundary cases stay legal: unset shards (0 means "default"),
    // the minimum deadline, and exactly one shard per candidate.
    naas::validate_scheduler_flags(0, 1, 1).expect("defaults are valid");
    naas::validate_scheduler_flags(10, 500, 10).expect("one shard per candidate is valid");
}
