//! Table III: NAAS (accelerator only) against NASAIC's heterogeneous
//! design, inferencing the same CIFAR network under the same design
//! constraints.

use crate::budget::Budget;
use crate::table;
use naas::baselines::{search_nasaic_allocation, NasaicConfig};
use naas::prelude::*;
use naas::search_accelerator;
use serde::{Deserialize, Serialize};

/// One row of Table III.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table3Row {
    /// Search approach.
    pub approach: String,
    /// Architecture description.
    pub arch: String,
    /// CIFAR-10 accuracy (percent) — NASAIC's published number for the
    /// shared network (accuracy does not depend on the accelerator).
    pub accuracy: f64,
    /// Latency in cycles.
    pub latency_cycles: u64,
    /// Energy in nJ.
    pub energy_nj: f64,
    /// EDP in cycles · nJ.
    pub edp: f64,
}

/// Table III result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table3 {
    /// NASAIC and NAAS rows.
    pub rows: Vec<Table3Row>,
}

/// CIFAR-10 accuracy NASAIC reports for its searched network on the DLA
/// IP — carried as a constant because both rows run the *same* network.
pub const NASAIC_DLA_ACCURACY: f64 = 93.2;

/// Runs the Table III comparison.
pub fn run(budget: &Budget, seed: u64) -> Table3 {
    let model = CostModel::new();
    let net = models::nasaic_cifar_net();
    let nasaic_cfg = NasaicConfig::default();

    let nasaic = search_nasaic_allocation(&model, &net, &nasaic_cfg)
        .expect("NASAIC allocation search succeeds");

    // NAAS searches a homogeneous design in the same total budget.
    let envelope = ResourceConstraint::new(
        "nasaic_budget",
        nasaic_cfg.total_pes,
        nasaic_cfg.total_onchip_bytes,
        nasaic_cfg.total_bandwidth,
        nasaic_cfg.dram_bandwidth,
    );
    let naas = search_accelerator(
        &model,
        std::slice::from_ref(&net),
        &envelope,
        &budget.accel_cfg(seed),
    );
    let naas_cost = &naas.best.per_network[0];

    Table3 {
        rows: vec![
            Table3Row {
                approach: "NASAIC".into(),
                arch: format!("DLA({} PEs) + Shi({} PEs)", nasaic.dla_pes, nasaic.shi_pes),
                accuracy: NASAIC_DLA_ACCURACY,
                latency_cycles: nasaic.latency_cycles,
                energy_nj: nasaic.energy_nj,
                edp: nasaic.edp,
            },
            Table3Row {
                approach: "NAAS".into(),
                arch: naas.best.accelerator.connectivity().to_string(),
                accuracy: NASAIC_DLA_ACCURACY,
                latency_cycles: naas_cost.cycles(),
                energy_nj: naas_cost.energy_nj(),
                edp: naas_cost.edp(),
            },
        ],
    }
}

impl Table3 {
    /// Paper-style rendering.
    pub fn render(&self) -> String {
        let mut out = String::from("Table III — NAAS (accelerator only) vs NASAIC\n");
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.approach.clone(),
                    r.arch.clone(),
                    format!("{:.1}", r.accuracy),
                    table::sci(r.latency_cycles as f64),
                    table::sci(r.energy_nj),
                    table::sci(r.edp),
                ]
            })
            .collect();
        out.push_str(&table::render(
            &[
                "approach",
                "arch",
                "CIFAR acc",
                "latency (cyc)",
                "energy (nJ)",
                "EDP",
            ],
            &rows,
        ));
        if self.rows.len() == 2 {
            let (nasaic, naas) = (&self.rows[0], &self.rows[1]);
            out.push_str(&format!(
                "NAAS vs NASAIC: {} latency, {} energy, {} EDP\n",
                table::ratio(nasaic.latency_cycles as f64 / naas.latency_cycles as f64),
                table::ratio(nasaic.energy_nj / naas.energy_nj),
                table::ratio(nasaic.edp / naas.edp),
            ));
        }
        out
    }

    /// The paper's claim: NAAS wins EDP through a large latency win
    /// (paper: 3.75× latency, 1.88× EDP, at 2× energy cost).
    pub fn naas_wins_edp(&self) -> bool {
        self.rows.len() == 2 && self.rows[1].edp <= self.rows[0].edp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Preset;

    #[test]
    fn table3_smoke() {
        let out = run(&Budget::new(Preset::Smoke), 4);
        assert_eq!(out.rows.len(), 2);
        assert!(out.rows.iter().all(|r| r.edp > 0.0));
        assert!(out.render().contains("NASAIC"));
    }
}
