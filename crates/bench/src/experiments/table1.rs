//! Table I: the neural-accelerator search space — rendered with the
//! *measured* cardinality of each sub-space under the EdgeTPU envelope,
//! grounding the paper's §I size claims (≥10¹¹ hardware candidates,
//! ~10¹⁷ mappings per layer, ~10⁸⁶¹ joint for ResNet-50).

use crate::budget::Budget;
use crate::table;
use naas::prelude::*;
use naas_opt::design_space::{
    log10_hardware_candidates, log10_joint_space, log10_mapping_candidates,
};
use serde::{Deserialize, Serialize};

/// Table I result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1 {
    /// log₁₀ of the hardware candidate count (EdgeTPU envelope).
    pub log10_hardware: f64,
    /// log₁₀ of the mapping candidates of a representative ResNet layer.
    pub log10_mapping_per_layer: f64,
    /// log₁₀ of the joint space for ResNet-50.
    pub log10_joint_resnet50: f64,
}

/// Computes the space sizes (budget-independent; kept for interface
/// uniformity with the other experiments).
pub fn run(_budget: &Budget, _seed: u64) -> Table1 {
    let envelope = ResourceConstraint::from_design(&baselines::edge_tpu());
    let net = models::resnet50(224);
    let mid = net
        .iter()
        .find(|l| l.name() == "s2b1_conv3")
        .expect("representative layer exists")
        .clone();
    Table1 {
        log10_hardware: log10_hardware_candidates(&envelope),
        log10_mapping_per_layer: log10_mapping_candidates(&mid, 2),
        log10_joint_resnet50: log10_joint_space(&envelope, &net, 2),
    }
}

impl Table1 {
    /// Renders the search-space table with measured cardinalities.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "Table I — search space, with measured cardinalities (EdgeTPU envelope)\n",
        );
        let rows = vec![
            vec![
                "Accelerator".into(),
                "array size/shape, buffers, bandwidth, PE inter-connection".into(),
                format!("10^{:.1}", self.log10_hardware),
            ],
            vec![
                "Compiler mapping (per layer)".into(),
                "loop order, loop tiling at each array level".into(),
                format!("10^{:.1}", self.log10_mapping_per_layer),
            ],
            vec![
                "Joint (ResNet-50)".into(),
                "hardware × 54 per-layer mappings".into(),
                format!("10^{:.0}", self.log10_joint_resnet50),
            ],
        ];
        out.push_str(&table::render(&["space", "knobs", "candidates"], &rows));
        out.push_str("paper §I: ≥10^11 hardware, ~10^17 mapping/layer, ~10^861 joint\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Preset;

    #[test]
    fn claims_hold() {
        let t = run(&Budget::new(Preset::Smoke), 0);
        assert!(t.log10_hardware >= 11.0);
        assert!(t.log10_mapping_per_layer >= 14.0);
        assert!(t.log10_joint_resnet50 >= 400.0);
        assert!(t.render().contains("10^"));
    }
}
