//! One runner per paper artifact. Every runner takes a [`crate::Budget`]
//! and a seed, returns a serializable result struct, and renders a
//! paper-style table via `render()`.

pub mod fig10;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod pareto;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
