//! Figure 10: accuracy vs. normalized EDP on ImageNet under the Eyeriss
//! envelope — the payoff of integrating NAS.
//!
//! Four points, as in the paper: (1) Eyeriss running ResNet-50;
//! (2) NHAS (NN + sizing-only co-search, heuristic mapping);
//! (3) NAAS accelerator-compiler co-search with ResNet-50 fixed;
//! (4) NAAS accelerator-compiler-NN joint co-search.

use crate::budget::Budget;
use crate::table;
use naas::baselines::{baseline_network_cost, search_nhas, NhasConfig};
use naas::prelude::*;
use naas::search_accelerator_seeded;
use naas_nas::{AccuracyModel, Subnet};
use serde::{Deserialize, Serialize};

/// One scatter point of Fig. 10.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParetoPoint {
    /// Approach label.
    pub approach: String,
    /// Predicted ImageNet top-1 accuracy (percent).
    pub accuracy: f64,
    /// EDP normalized to the Eyeriss + ResNet-50 point.
    pub normalized_edp: f64,
}

/// Figure 10 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig10 {
    /// Points in the paper's order.
    pub points: Vec<ParetoPoint>,
}

/// Runs the Fig. 10 experiment.
pub fn run(budget: &Budget, seed: u64) -> Fig10 {
    let model = CostModel::new();
    let accuracy_model = AccuracyModel::default();
    let eyeriss = baselines::eyeriss();
    let envelope = ResourceConstraint::from_design(&eyeriss);
    let resnet = Subnet::resnet50_baseline();
    let resnet_net = resnet.to_network();
    let resnet_acc = accuracy_model.predict(&resnet);

    // (1) Eyeriss + ResNet-50 (fair mapping search on the fixed design).
    let eyeriss_cost =
        baseline_network_cost(&model, &resnet_net, &eyeriss, &budget.mapping_cfg(seed))
            .expect("eyeriss runs resnet50");
    let norm = eyeriss_cost.edp();
    let mut points = vec![ParetoPoint {
        approach: "Eyeriss (ResNet-50)".into(),
        accuracy: resnet_acc,
        normalized_edp: 1.0,
    }];

    // (2) NHAS: NN + sizing-only. Its *search* uses the heuristic
    // compiler it was published with, but the reported point re-compiles
    // the final (design, subnet) pair with the same mapping search every
    // other point enjoys — you would not deploy with a worse compiler.
    let mut nhas_nas = budget.nas_cfg(seed + 1);
    nhas_nas.accuracy_floor = 76.5; // must beat the ResNet-50 baseline
    let nhas_cfg = NhasConfig {
        population: budget.accel_population.div_ceil(2),
        iterations: budget.accel_iterations.div_ceil(2),
        nas: nhas_nas,
        seed: seed + 1,
        ..NhasConfig::quick(seed + 1)
    };
    if let Some(nhas) = search_nhas(&model, &eyeriss, &envelope, &accuracy_model, &nhas_cfg) {
        let recompiled = naas::mapping_search::network_mapping_search(
            &model,
            &nhas.subnet.to_network(),
            &nhas.accelerator,
            &budget.mapping_cfg(seed + 1),
        )
        .map_or(nhas.edp, |c| c.edp());
        points.push(ParetoPoint {
            approach: "NHAS (NN + sizing)".into(),
            accuracy: nhas.accuracy,
            normalized_edp: recompiled / norm,
        });
    }

    // (3) NAAS accelerator-compiler co-search, network fixed.
    let accel_only = search_accelerator_seeded(
        &model,
        std::slice::from_ref(&resnet_net),
        &envelope,
        &budget.accel_cfg(seed + 2),
        std::slice::from_ref(&eyeriss),
    );
    points.push(ParetoPoint {
        approach: "NAAS (accel-compiler)".into(),
        accuracy: resnet_acc,
        normalized_edp: accel_only.best.reward / norm,
    });

    // (4) NAAS joint co-search, with the paper's "guaranteed accuracy":
    // the floor is set above the ResNet-50 baseline so the search must
    // deliver an accuracy *gain* along with the EDP gain.
    let mut joint_nas = budget.nas_cfg(seed + 3);
    joint_nas.accuracy_floor = 77.0;
    let joint_cfg = naas::JointConfig {
        accel: budget.accel_cfg(seed + 3),
        nas: joint_nas,
    };
    if let Some(joint) = naas::search_joint(&model, &envelope, &accuracy_model, &joint_cfg) {
        points.push(ParetoPoint {
            approach: "NAAS (accel-compiler-NN)".into(),
            accuracy: joint.accuracy,
            normalized_edp: joint.edp / norm,
        });
    }

    Fig10 { points }
}

impl Fig10 {
    /// Paper-style rendering.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "Fig. 10 — accuracy vs normalized EDP (Eyeriss resources, ResNet-50 space)\n",
        );
        let rows: Vec<Vec<String>> = self
            .points
            .iter()
            .map(|p| {
                vec![
                    p.approach.clone(),
                    format!("{:.1}%", p.accuracy),
                    format!("{:.3}", p.normalized_edp),
                ]
            })
            .collect();
        out.push_str(&table::render(
            &["approach", "top-1 accuracy", "normalized EDP"],
            &rows,
        ));
        if let (Some(accel), Some(joint)) = (
            self.point("NAAS (accel-compiler)"),
            self.point("NAAS (accel-compiler-NN)"),
        ) {
            out.push_str(&format!(
                "joint vs accel-only: {} EDP, {:+.1}% accuracy\n",
                table::ratio(accel.normalized_edp / joint.normalized_edp),
                joint.accuracy - accel.accuracy
            ));
        }
        out
    }

    /// Looks up a point by approach label.
    pub fn point(&self, approach: &str) -> Option<&ParetoPoint> {
        self.points.iter().find(|p| p.approach == approach)
    }

    /// The headline claim: the joint search dominates the fixed-network
    /// points — higher accuracy at no EDP cost, or lower EDP.
    pub fn joint_improves(&self) -> bool {
        match (
            self.point("NAAS (accel-compiler)"),
            self.point("NAAS (accel-compiler-NN)"),
        ) {
            (Some(a), Some(j)) => {
                j.accuracy >= a.accuracy - 0.3 || j.normalized_edp <= a.normalized_edp
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Preset;

    #[test]
    fn smoke_produces_at_least_three_points() {
        let out = run(&Budget::new(Preset::Smoke), 2);
        assert!(out.points.len() >= 3, "got {:?}", out.points);
        assert!(out.point("Eyeriss (ResNet-50)").is_some());
        let text = out.render();
        assert!(text.contains("normalized EDP"));
    }
}
