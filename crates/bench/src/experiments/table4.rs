//! Table IV: development cost of the three approaches for `N` deployment
//! scenarios, in GPU days / AWS dollars / CO₂ pounds — plus this
//! reproduction's *measured* co-search cost, grounding the `< 0.25 N Gd`
//! claim.

use crate::budget::Budget;
use crate::table;
use naas::cost_accounting::{measured_co_search_gd, naas_cost, nasaic_cost, nhas_cost, SearchCost};
use naas::prelude::*;
use naas::search_accelerator;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Table IV result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table4 {
    /// Number of deployment scenarios the costs are quoted for.
    pub n: u32,
    /// Analytic rows (NASAIC, NHAS, NAAS) per the paper's formulas.
    pub rows: Vec<AnalyticRow>,
    /// Measured cost-model throughput (evaluations per second).
    pub measured_evals_per_second: f64,
    /// Measured evaluations in one representative scenario search.
    pub measured_evaluations: u64,
    /// Measured co-search cost in GPU-day-equivalents per scenario.
    pub measured_co_search_gd: f64,
}

/// One analytic row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalyticRow {
    /// Approach label.
    pub approach: String,
    /// Co-search GPU days.
    pub co_search_gd: f64,
    /// Training GPU days.
    pub training_gd: f64,
    /// Total GPU days.
    pub total_gd: f64,
    /// AWS dollars.
    pub aws_dollars: f64,
    /// CO₂ pounds.
    pub co2_lbs: f64,
}

impl From<SearchCost> for AnalyticRow {
    fn from(c: SearchCost) -> Self {
        AnalyticRow {
            approach: c.approach.to_string(),
            co_search_gd: c.co_search_gd,
            training_gd: c.training_gd,
            total_gd: c.total_gd(),
            aws_dollars: c.aws_dollars(),
            co2_lbs: c.co2_lbs(),
        }
    }
}

/// Runs Table IV for `n = 1` scenario, measuring this machine's actual
/// search throughput on a representative workload.
pub fn run(budget: &Budget, seed: u64) -> Table4 {
    let n = 1u32;

    // Measure cost-model throughput.
    let model = CostModel::new();
    let accel = baselines::eyeriss();
    let net = models::mobilenet_v2(224);
    let mappings: Vec<Mapping> = net.iter().map(|l| Mapping::balanced(l, &accel)).collect();
    let start = Instant::now();
    let mut sink = 0.0f64;
    let reps = 200usize;
    for _ in 0..reps {
        for (layer, mapping) in net.iter().zip(&mappings) {
            if let Ok(cost) = model.evaluate(layer, &accel, mapping) {
                sink += cost.energy_pj;
            }
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    let evals = (reps * net.len()) as f64;
    let eps = evals / elapsed.max(1e-9);
    assert!(sink > 0.0, "throughput probe must do real work");

    // Measure a representative scenario search's evaluation count.
    let envelope = ResourceConstraint::from_design(&accel);
    let result = search_accelerator(
        &model,
        std::slice::from_ref(&net),
        &envelope,
        &budget.accel_cfg(seed),
    );
    // Each candidate evaluation runs a full mapping search per distinct
    // layer shape; convert to raw cost-model calls.
    let mapping_evals_per_candidate = (budget.map_population * budget.map_iterations) as u64;
    let distinct_shapes = 40u64; // MobileNetV2-scale upper bound
    let measured_evaluations =
        result.evaluations as u64 * distinct_shapes * mapping_evals_per_candidate;
    let measured_gd = measured_co_search_gd(measured_evaluations, eps);

    Table4 {
        n,
        rows: vec![
            nasaic_cost(n).into(),
            nhas_cost(n).into(),
            naas_cost(n).into(),
        ],
        measured_evals_per_second: eps,
        measured_evaluations,
        measured_co_search_gd: measured_gd,
    }
}

impl Table4 {
    /// Paper-style rendering.
    pub fn render(&self) -> String {
        let mut out = format!("Table IV — search cost for N = {} scenario(s)\n", self.n);
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.approach.clone(),
                    format!("{:.2}", r.co_search_gd),
                    format!("{:.0}", r.training_gd),
                    format!("{:.2}", r.total_gd),
                    format!("${:.0}", r.aws_dollars),
                    format!("{:.0} lbs", r.co2_lbs),
                ]
            })
            .collect();
        out.push_str(&table::render(
            &[
                "approach",
                "co-search (Gd)",
                "training (Gd)",
                "total (Gd)",
                "AWS",
                "CO2",
            ],
            &rows,
        ));
        out.push_str(&format!(
            "\nmeasured: {:.0} cost-model evals/s on this machine; a scenario search\nof ~{} evaluations costs {:.5} machine-days — well under the paper's 0.25 Gd bound\n",
            self.measured_evals_per_second, self.measured_evaluations, self.measured_co_search_gd
        ));
        out
    }

    /// The paper's claim: ≥ 120× total-cost advantage over NASAIC.
    pub fn saves_120x_vs_nasaic(&self) -> bool {
        self.rows[0].total_gd / self.rows[2].total_gd >= 119.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Preset;

    #[test]
    fn table4_smoke() {
        let out = run(&Budget::new(Preset::Smoke), 1);
        assert_eq!(out.rows.len(), 3);
        assert!(out.saves_120x_vs_nasaic());
        assert!(out.measured_co_search_gd < 0.25);
        assert!(out.render().contains("Table IV"));
    }
}
