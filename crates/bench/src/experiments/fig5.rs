//! Figure 5: speedup and energy saving of the NAAS-searched design over
//! each baseline, with one search per resource envelope rewarded by the
//! geomean EDP across the benchmark set.
//!
//! Large-model set {VGG16, ResNet50, UNet} under {EdgeTPU, NVDLA-1024};
//! mobile set {MobileNetV2, SqueezeNet, MNasNet} under
//! {Eyeriss, NVDLA-256, ShiDianNao}. Baselines keep their canonical
//! dataflow but receive the same per-layer mapping search (the comparison
//! isolates architecture quality).

use crate::budget::Budget;
use crate::table;
use naas::baselines::heuristic_network_cost;
use naas::geomean;
use naas::prelude::*;
use serde::{Deserialize, Serialize};

/// Per-network comparison of the searched design against a baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetRow {
    /// Network name.
    pub network: String,
    /// Baseline latency / NAAS latency.
    pub speedup: f64,
    /// Baseline energy / NAAS energy.
    pub energy_saving: f64,
    /// Baseline EDP / NAAS EDP.
    pub edp_reduction: f64,
}

/// One deployment scenario (one baseline envelope).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Baseline design name (the envelope source).
    pub baseline: String,
    /// The searched design's card (Fig. 7 format).
    pub design_card: String,
    /// Per-network rows.
    pub rows: Vec<NetRow>,
    /// Geomean speedup across the set.
    pub geomean_speedup: f64,
    /// Geomean energy saving across the set.
    pub geomean_energy: f64,
}

/// Figure 5 result: all five scenarios.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig5 {
    /// Scenarios in the paper's order.
    pub scenarios: Vec<Scenario>,
}

/// Runs one scenario: NAAS multi-network search within `baseline`'s
/// envelope, compared per network against the baseline itself.
///
/// The baseline comparison runs on the same engine as the search: the
/// baseline was the warm-start seed of generation 0, so its per-layer
/// mapping results are already in the shared cache and the denominator
/// of every ratio is (mostly) free.
pub fn run_scenario(
    model: &CostModel,
    baseline: &Accelerator,
    networks: &[Network],
    budget: &Budget,
    seed: u64,
) -> Scenario {
    let envelope = ResourceConstraint::from_design(baseline);
    let engine = CoSearchEngine::new(0);
    let result = search_accelerator_with(
        &engine,
        model,
        networks,
        &envelope,
        &budget.accel_cfg(seed),
        std::slice::from_ref(baseline),
        None,
    );

    let mut rows = Vec::with_capacity(networks.len());
    for (net, naas_cost) in networks.iter().zip(&result.best.per_network) {
        let base = network_mapping_search_cached(
            model,
            net,
            baseline,
            &budget.mapping_cfg(seed),
            engine.cache(),
        )
        .or_else(|| heuristic_network_cost(model, net, baseline))
        .expect("baseline designs can run the paper benchmarks");
        rows.push(NetRow {
            network: net.name().to_string(),
            speedup: base.cycles() as f64 / naas_cost.cycles() as f64,
            energy_saving: base.energy_pj() / naas_cost.energy_pj(),
            edp_reduction: base.edp() / naas_cost.edp(),
        });
    }
    let geomean_speedup = geomean(&rows.iter().map(|r| r.speedup).collect::<Vec<_>>());
    let geomean_energy = geomean(&rows.iter().map(|r| r.energy_saving).collect::<Vec<_>>());
    Scenario {
        baseline: baseline.name().to_string(),
        design_card: result.best.accelerator.design_card(),
        rows,
        geomean_speedup,
        geomean_energy,
    }
}

/// Runs all five scenarios of Fig. 5.
pub fn run(budget: &Budget, seed: u64) -> Fig5 {
    let model = CostModel::new();
    let large = models::large_benchmarks();
    let mobile = models::mobile_benchmarks();

    let mut scenarios = Vec::new();
    for (i, baseline) in [baselines::edge_tpu(), baselines::nvdla_1024()]
        .into_iter()
        .enumerate()
    {
        scenarios.push(run_scenario(
            &model,
            &baseline,
            &large,
            budget,
            seed + i as u64,
        ));
    }
    for (i, baseline) in [
        baselines::eyeriss(),
        baselines::nvdla_256(),
        baselines::shidiannao(),
    ]
    .into_iter()
    .enumerate()
    {
        scenarios.push(run_scenario(
            &model,
            &baseline,
            &mobile,
            budget,
            seed + 10 + i as u64,
        ));
    }
    Fig5 { scenarios }
}

impl Fig5 {
    /// Paper-style rendering: one block per scenario.
    pub fn render(&self) -> String {
        let mut out = String::from("Fig. 5 — NAAS vs baselines (multi-network geomean reward)\n\n");
        for s in &self.scenarios {
            out.push_str(&format!("== within {} resources ==\n", s.baseline));
            let rows: Vec<Vec<String>> = s
                .rows
                .iter()
                .map(|r| {
                    vec![
                        r.network.clone(),
                        table::ratio(r.speedup),
                        table::ratio(r.energy_saving),
                        table::ratio(r.edp_reduction),
                    ]
                })
                .chain(std::iter::once(vec![
                    "geomean".to_string(),
                    table::ratio(s.geomean_speedup),
                    table::ratio(s.geomean_energy),
                    String::new(),
                ]))
                .collect();
            out.push_str(&table::render(
                &["network", "speedup", "energy saving", "EDP reduction"],
                &rows,
            ));
            out.push('\n');
        }
        out
    }

    /// The headline claim of Fig. 5: NAAS never loses to a baseline on
    /// geomean EDP within that baseline's own envelope.
    pub fn never_worse(&self) -> bool {
        self.scenarios
            .iter()
            .all(|s| s.geomean_speedup * s.geomean_energy >= 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Preset;

    #[test]
    fn single_scenario_smoke() {
        let model = CostModel::new();
        let budget = Budget::new(Preset::Smoke);
        let nets = [models::mobilenet_v2(224)];
        let s = run_scenario(&model, &baselines::eyeriss(), &nets, &budget, 5);
        assert_eq!(s.rows.len(), 1);
        assert!(s.rows[0].speedup > 0.0);
        assert!(s.design_card.contains("Array Size"));
    }
}
