//! Figure 4: population-mean EDP vs. search iteration, NAAS's evolution
//! strategy against random search.
//!
//! Paper setup: one hardware-design search; the plot shows the average
//! EDP of each generation's candidates (log scale, normalized) staying
//! flat for random search while NAAS's decreases as the sampling
//! distribution tightens around good designs.

use crate::budget::Budget;
use crate::table;
use naas::prelude::*;
use naas::SearchStrategy;
use serde::{Deserialize, Serialize};

/// One plotted series point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// Generation (1-based, as in the paper's x-axis).
    pub iteration: usize,
    /// Normalized population-mean EDP of the NAAS run.
    pub naas_mean: f64,
    /// Normalized population-mean EDP of the random-search run.
    pub random_mean: f64,
}

/// Figure 4 result: the two convergence curves.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig4 {
    /// Per-iteration series, normalized to the best EDP NAAS found.
    pub points: Vec<Point>,
    /// Best (unnormalized) EDP of the NAAS run, cycles · nJ.
    pub naas_best_edp: f64,
    /// Best (unnormalized) EDP of the random run.
    pub random_best_edp: f64,
}

/// Runs the Fig. 4 experiment: MobileNetV2 under the Eyeriss envelope.
///
/// Both runs share one [`CoSearchEngine`]: any design the random walk
/// happens to revisit from the evolution's trajectory is answered from
/// the mapping cache instead of re-searched.
pub fn run(budget: &Budget, seed: u64) -> Fig4 {
    let model = CostModel::new();
    let envelope = ResourceConstraint::from_design(&baselines::eyeriss());
    let nets = [models::mobilenet_v2(224)];

    let engine = CoSearchEngine::new(0);
    let evo = search_accelerator_with(
        &engine,
        &model,
        &nets,
        &envelope,
        &budget.accel_cfg(seed),
        &[],
        None,
    );
    let rnd_cfg = AccelSearchConfig {
        strategy: SearchStrategy::Random,
        ..budget.accel_cfg(seed)
    };
    let rnd = search_accelerator_with(&engine, &model, &nets, &envelope, &rnd_cfg, &[], None);

    let norm = evo.best.reward;
    let points = evo
        .history
        .iter()
        .zip(&rnd.history)
        .map(|(e, r)| Point {
            iteration: e.iteration + 1,
            naas_mean: e.mean_edp / norm,
            random_mean: r.mean_edp / norm,
        })
        .collect();
    Fig4 {
        points,
        naas_best_edp: evo.best.reward,
        random_best_edp: rnd.best.reward,
    }
}

impl Fig4 {
    /// Paper-style table of the two series.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .points
            .iter()
            .map(|p| {
                vec![
                    p.iteration.to_string(),
                    format!("{:.2}", p.naas_mean),
                    format!("{:.2}", p.random_mean),
                ]
            })
            .collect();
        let mut out =
            String::from("Fig. 4 — population-mean EDP vs iteration (normalized to NAAS best)\n");
        out.push_str(&table::render(&["iter", "NAAS mean", "Random mean"], &rows));
        out.push_str(&format!(
            "best EDP: NAAS {} vs Random {} ({})\n",
            table::sci(self.naas_best_edp),
            table::sci(self.random_best_edp),
            table::ratio(self.random_best_edp / self.naas_best_edp)
        ));
        out
    }

    /// The paper's qualitative claim: the evolution's population improves
    /// over the run while random stays (statistically) flat.
    pub fn naas_improves(&self) -> bool {
        let first = self.points.first().map(|p| p.naas_mean).unwrap_or(1.0);
        let last = self.points.last().map(|p| p.naas_mean).unwrap_or(1.0);
        last < first
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Preset;

    #[test]
    fn smoke_run_produces_series() {
        let out = run(&Budget::new(Preset::Smoke), 3);
        assert_eq!(out.points.len(), 3);
        assert!(out.naas_best_edp > 0.0);
        let text = out.render();
        assert!(text.contains("Fig. 4"));
    }
}
