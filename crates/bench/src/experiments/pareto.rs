//! Extension experiment (beyond the paper): the full accuracy-vs-EDP
//! Pareto curve of the joint co-design space, swept over accuracy floors
//! — Fig. 10 shows one point of this curve; here is the whole frontier.

use crate::budget::Budget;
use crate::table;
use naas::prelude::*;
use naas::{pareto_sweep, JointConfig};
use naas_nas::AccuracyModel;
use serde::{Deserialize, Serialize};

/// One frontier point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrontierPoint {
    /// Accuracy floor the joint search was run under (percent).
    pub floor: f64,
    /// Achieved accuracy (percent).
    pub accuracy: f64,
    /// Achieved EDP (cycles · nJ).
    pub edp: f64,
    /// The matched design's dataflow label.
    pub dataflow: String,
}

/// Pareto-sweep result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pareto {
    /// Frontier points in floor order.
    pub points: Vec<FrontierPoint>,
}

/// Sweeps the joint search over accuracy floors under the Eyeriss
/// envelope.
pub fn run(budget: &Budget, seed: u64) -> Pareto {
    let model = CostModel::new();
    let accuracy_model = AccuracyModel::default();
    let envelope = ResourceConstraint::from_design(&baselines::eyeriss());
    let cfg = JointConfig {
        accel: budget.accel_cfg(seed),
        nas: budget.nas_cfg(seed),
    };
    let floors = [74.0, 75.5, 76.5, 77.5, 78.5];
    let entries = pareto_sweep(&model, &envelope, &accuracy_model, &cfg, &floors);
    Pareto {
        points: entries
            .into_iter()
            .map(|e| FrontierPoint {
                floor: e.floor,
                accuracy: e.result.accuracy,
                edp: e.result.edp,
                dataflow: e.result.accelerator.connectivity().dataflow_label(),
            })
            .collect(),
    }
}

impl Pareto {
    /// Renders the frontier table.
    pub fn render(&self) -> String {
        let mut out =
            String::from("Pareto sweep (extension) — accuracy floor vs achieved (accuracy, EDP)\n");
        let rows: Vec<Vec<String>> = self
            .points
            .iter()
            .map(|p| {
                vec![
                    format!("{:.1}%", p.floor),
                    format!("{:.1}%", p.accuracy),
                    table::sci(p.edp),
                    p.dataflow.clone(),
                ]
            })
            .collect();
        out.push_str(&table::render(
            &["floor", "accuracy", "EDP", "dataflow"],
            &rows,
        ));
        out
    }

    /// Frontier sanity: accuracy never drops below the floor.
    pub fn floors_respected(&self) -> bool {
        self.points.iter().all(|p| p.accuracy >= p.floor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Preset;

    #[test]
    fn sweep_produces_feasible_frontier() {
        let out = run(&Budget::new(Preset::Smoke), 6);
        assert!(!out.points.is_empty());
        assert!(out.floors_respected());
        assert!(out.render().contains("Pareto"));
    }
}
