//! Extension experiment (beyond the paper): the multi-objective front of
//! the joint co-design space, taken from the search's first-class
//! bounded Pareto archive (`naas::ParetoArchive`). The joint search runs
//! once in `--objectives pareto` mode — the scalarized trajectory is
//! unchanged — and every candidate's `(latency, energy, area, accuracy)`
//! objective vector is offered to the archive; the surviving
//! non-dominated set *is* the frontier reported here. Fig. 10 shows one
//! point of this trade-off; here is the whole front.

use crate::budget::Budget;
use crate::table;
use naas::prelude::*;
use naas::{joint_search_init, joint_search_step, JointConfig, ObjectivePolicy};
use naas_cost::ObjectiveVector;
use naas_nas::AccuracyModel;
use serde::{Deserialize, Serialize};

/// One frontier point — an archive entry flattened for reporting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrontierPoint {
    /// Global candidate index (`iteration * population + slot`) of the
    /// evaluation that produced this point — the archive's stable
    /// tie-break key.
    pub candidate: u64,
    /// The candidate's objective vector.
    pub objectives: ObjectiveVector,
    /// The matched design's dataflow label.
    pub dataflow: String,
}

/// Pareto-front result: the archive's surviving entries plus its
/// bookkeeping counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pareto {
    /// Frontier points in candidate order.
    pub points: Vec<FrontierPoint>,
    /// Dominated hypervolume of the front (normalized space).
    pub hypervolume: f64,
    /// Total archive insertions over the run.
    pub inserts: u64,
    /// Offers rejected as dominated-or-equal.
    pub rejections: u64,
}

/// Runs the joint search once in Pareto mode under the Eyeriss envelope
/// and returns the archive's front.
pub fn run(budget: &Budget, seed: u64) -> Pareto {
    let model = CostModel::new();
    let accuracy_model = AccuracyModel::default();
    let envelope = ResourceConstraint::from_design(&baselines::eyeriss());
    let mut cfg = JointConfig {
        accel: budget.accel_cfg(seed),
        nas: budget.nas_cfg(seed),
    };
    cfg.accel.objectives = ObjectivePolicy::Pareto;

    let engine = CoSearchEngine::new(cfg.accel.threads);
    let mut state = joint_search_init(&envelope, &cfg);
    while joint_search_step(&engine, &model, &accuracy_model, &mut state) {}
    let archive = state
        .archive()
        .expect("pareto policy always keeps an archive");
    Pareto {
        points: archive
            .entries()
            .iter()
            .map(|e| FrontierPoint {
                candidate: e.candidate_index,
                objectives: e.objectives,
                dataflow: e.accelerator.connectivity().dataflow_label(),
            })
            .collect(),
        hypervolume: archive.hypervolume(),
        inserts: archive.inserts,
        rejections: archive.rejections,
    }
}

impl Pareto {
    /// Renders the frontier table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Pareto front (extension) — joint co-design archive: {} point(s), \
             hypervolume {:.6e}, {} insert(s), {} dominated rejection(s)\n",
            self.points.len(),
            self.hypervolume,
            self.inserts,
            self.rejections
        );
        let rows: Vec<Vec<String>> = self
            .points
            .iter()
            .map(|p| {
                vec![
                    format!("#{}", p.candidate),
                    format!("{}", p.objectives.latency_cycles),
                    table::sci(p.objectives.energy_nj),
                    table::sci(p.objectives.area_um2),
                    format!("{:.1}%", p.objectives.accuracy),
                    p.dataflow.clone(),
                ]
            })
            .collect();
        out.push_str(&table::render(
            &[
                "candidate",
                "latency (cyc)",
                "energy (nJ)",
                "area (um2)",
                "accuracy",
                "dataflow",
            ],
            &rows,
        ));
        out
    }

    /// Frontier sanity: no reported point dominates another — the
    /// defining invariant of a Pareto front.
    pub fn non_dominated(&self) -> bool {
        self.points.iter().all(|a| {
            self.points
                .iter()
                .all(|b| a.candidate == b.candidate || !a.objectives.dominates(&b.objectives))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Preset;

    #[test]
    fn archive_front_is_mutually_non_dominated() {
        let out = run(&Budget::new(Preset::Smoke), 6);
        assert!(!out.points.is_empty(), "smoke search reaches the archive");
        assert!(
            out.non_dominated(),
            "front points must not dominate each other"
        );
        assert!(out.inserts >= out.points.len() as u64);
        assert!(out.render().contains("Pareto front"));
    }
}
