//! Figure 8: the value of searching connectivity + mapping, not just
//! sizes. NAAS against the architectural-sizing-only search of prior
//! work (NASAIC, NHAS), on VGG16 and MobileNetV2 under the
//! EdgeTPU and NVDLA-1024 envelopes.

use crate::budget::Budget;
use crate::table;
use naas::baselines::{baseline_network_cost, search_sizing_only, SizingOnlyConfig};
use naas::prelude::*;
use naas::search_accelerator_seeded;
use serde::{Deserialize, Serialize};

/// One bar pair of Fig. 8.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BarPair {
    /// Envelope source design.
    pub resource: String,
    /// Workload.
    pub network: String,
    /// Baseline EDP / sizing-only-searched EDP.
    pub sizing_only_reduction: f64,
    /// Baseline EDP / NAAS EDP.
    pub naas_reduction: f64,
}

/// Figure 8 result: the four bar pairs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig8 {
    /// Bars in the paper's order.
    pub bars: Vec<BarPair>,
}

/// Runs the Fig. 8 ablation.
pub fn run(budget: &Budget, seed: u64) -> Fig8 {
    let model = CostModel::new();
    let mut bars = Vec::new();
    let mut salt = 0u64;
    for baseline in [baselines::edge_tpu(), baselines::nvdla_1024()] {
        let envelope = ResourceConstraint::from_design(&baseline);
        for net in [models::vgg16(224), models::mobilenet_v2(224)] {
            salt += 1;
            let base_cost =
                baseline_network_cost(&model, &net, &baseline, &budget.mapping_cfg(seed + salt))
                    .expect("baselines run the benchmarks");

            let sizing_cfg = SizingOnlyConfig {
                population: budget.accel_population,
                iterations: budget.accel_iterations,
                seed: seed + salt,
                ..SizingOnlyConfig::default()
            };
            let sizing = search_sizing_only(
                &model,
                std::slice::from_ref(&net),
                &baseline,
                &envelope,
                &sizing_cfg,
            )
            .expect("sizing-only finds a design");

            // The sizing-only space is a strict subset of NAAS's: seed
            // the full search with both the baseline and the sizing-only
            // winner, so the comparison isolates what the *extra*
            // dimensions (connectivity + mapping) buy.
            let naas = search_accelerator_seeded(
                &model,
                std::slice::from_ref(&net),
                &envelope,
                &budget.accel_cfg(seed + salt),
                &[baseline.clone(), sizing.accelerator.clone()],
            );

            bars.push(BarPair {
                resource: baseline.name().to_string(),
                network: net.name().to_string(),
                sizing_only_reduction: base_cost.edp() / sizing.per_network[0].edp(),
                naas_reduction: base_cost.edp() / naas.best.per_network[0].edp(),
            });
        }
    }
    Fig8 { bars }
}

impl Fig8 {
    /// Paper-style rendering.
    pub fn render(&self) -> String {
        let mut out =
            String::from("Fig. 8 — EDP reduction vs baseline: sizing-only search vs full NAAS\n");
        let rows: Vec<Vec<String>> = self
            .bars
            .iter()
            .map(|b| {
                vec![
                    b.resource.clone(),
                    b.network.clone(),
                    table::ratio(b.sizing_only_reduction),
                    table::ratio(b.naas_reduction),
                    table::ratio(b.naas_reduction / b.sizing_only_reduction),
                ]
            })
            .collect();
        out.push_str(&table::render(
            &[
                "resource",
                "network",
                "sizing-only",
                "NAAS",
                "NAAS / sizing-only",
            ],
            &rows,
        ));
        out
    }

    /// The ablation claim: full NAAS beats sizing-only on every pair
    /// (paper: by 1.42×–3.52×).
    pub fn naas_always_wins(&self) -> bool {
        self.bars
            .iter()
            .all(|b| b.naas_reduction >= b.sizing_only_reduction)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Preset;

    #[test]
    fn one_pair_smoke() {
        // Cheapest pair: MobileNetV2 under NVDLA-1024.
        let model = CostModel::new();
        let budget = Budget::new(Preset::Smoke);
        let baseline = baselines::nvdla_1024();
        let envelope = ResourceConstraint::from_design(&baseline);
        let net = models::mobilenet_v2(224);
        let sizing = search_sizing_only(
            &model,
            std::slice::from_ref(&net),
            &baseline,
            &envelope,
            &SizingOnlyConfig::quick(2),
        )
        .expect("sizing-only finds a design");
        let naas = search_accelerator_seeded(
            &model,
            std::slice::from_ref(&net),
            &envelope,
            &budget.accel_cfg(2),
            std::slice::from_ref(&baseline),
        );
        // NAAS's space strictly contains the sizing-only space *plus*
        // mapping search, so with any reasonable budget it should not
        // lose by much; with matched seeds we only smoke-check validity.
        assert!(naas.best.reward > 0.0);
        assert!(sizing.reward > 0.0);
    }
}
