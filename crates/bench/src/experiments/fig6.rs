//! Figure 6: speedup and energy savings when NAAS specializes the
//! accelerator and mapping for a *single* network inside each baseline
//! envelope — the 6-network × 5-envelope matrix.

use crate::budget::Budget;
use crate::experiments::fig5::{run_scenario, Scenario};
use crate::table;
use naas::prelude::*;
use serde::{Deserialize, Serialize};

/// Figure 6 result: one single-network scenario per (envelope, network)
/// pair, following the paper's set split (large nets on large envelopes).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig6 {
    /// `(baseline name, network name, speedup, energy saving)` cells.
    pub cells: Vec<Scenario>,
}

/// Runs Fig. 6: each benchmark network searched alone under its set's
/// envelopes.
pub fn run(budget: &Budget, seed: u64) -> Fig6 {
    let model = CostModel::new();
    let mut cells = Vec::new();
    let mut salt = 0u64;

    let large_envelopes = [baselines::edge_tpu(), baselines::nvdla_1024()];
    for net in models::large_benchmarks() {
        for baseline in &large_envelopes {
            salt += 1;
            cells.push(run_scenario(
                &model,
                baseline,
                std::slice::from_ref(&net),
                budget,
                seed + salt,
            ));
        }
    }
    let mobile_envelopes = [
        baselines::eyeriss(),
        baselines::nvdla_256(),
        baselines::shidiannao(),
    ];
    for net in models::mobile_benchmarks() {
        for baseline in &mobile_envelopes {
            salt += 1;
            cells.push(run_scenario(
                &model,
                baseline,
                std::slice::from_ref(&net),
                budget,
                seed + salt,
            ));
        }
    }
    Fig6 { cells }
}

impl Fig6 {
    /// Paper-style rendering: the speedup/energy matrix.
    pub fn render(&self) -> String {
        let mut out =
            String::from("Fig. 6 — single-network NAAS vs baselines (one search per cell)\n");
        let rows: Vec<Vec<String>> = self
            .cells
            .iter()
            .map(|s| {
                let r = &s.rows[0];
                vec![
                    s.baseline.clone(),
                    r.network.clone(),
                    table::ratio(r.speedup),
                    table::ratio(r.energy_saving),
                    table::ratio(r.edp_reduction),
                ]
            })
            .collect();
        out.push_str(&table::render(
            &[
                "resource",
                "network",
                "speedup",
                "energy saving",
                "EDP reduction",
            ],
            &rows,
        ));
        out
    }

    /// Specialization claim: per-network searches should win on EDP in
    /// (at least) the overwhelming majority of cells.
    pub fn win_fraction(&self) -> f64 {
        let wins = self
            .cells
            .iter()
            .filter(|s| s.rows[0].edp_reduction >= 1.0)
            .count();
        wins as f64 / self.cells.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::{Budget, Preset};
    use naas::baselines::baseline_network_cost;
    use naas::search_accelerator;

    #[test]
    fn single_cell_specialization_beats_baseline_edp() {
        // One cell of the matrix, checked end to end: MobileNetV2 under
        // the ShiDianNao envelope (the paper's biggest win is 16.5×).
        let model = CostModel::new();
        let budget = Budget::new(Preset::Smoke);
        let net = models::mobilenet_v2(224);
        let base = baselines::shidiannao();
        let envelope = ResourceConstraint::from_design(&base);
        let result = search_accelerator(
            &model,
            std::slice::from_ref(&net),
            &envelope,
            &budget.accel_cfg(9),
        );
        let baseline = baseline_network_cost(&model, &net, &base, &budget.mapping_cfg(9))
            .expect("shidiannao runs mobilenet");
        assert!(
            result.best.per_network[0].edp() <= baseline.edp(),
            "specialized design must not lose to the baseline"
        );
    }
}
