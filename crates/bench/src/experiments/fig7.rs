//! Figure 7: the searched-architecture showcases — NAAS proposes
//! *different* array shapes, dataflows and buffer splits for different
//! (network, resource) pairs, beyond numerical tuning.
//!
//! Paper examples: (a) 2D `K-X'`-parallel array for ResNet under Eyeriss
//! resources; (b) 2D `C-X'` for VGG16 under EdgeTPU resources;
//! (c) 3D `C-K-X'` for VGG16 under ShiDianNao resources.

use crate::budget::Budget;
use naas::prelude::*;
use naas::search_accelerator_seeded;
use serde::{Deserialize, Serialize};

/// One showcased design.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Showcase {
    /// Workload name.
    pub network: String,
    /// Envelope source design.
    pub resource: String,
    /// The searched design card (array size, dataflow, buffers).
    pub design_card: String,
    /// The dataflow label (e.g. `"K-X' Parallel"`).
    pub dataflow: String,
    /// Number of array dimensions chosen by the search.
    pub ndim: usize,
}

/// Figure 7 result: the three showcases.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig7 {
    /// Showcases in the paper's order.
    pub showcases: Vec<Showcase>,
}

/// Runs the three (network, resource) showcases of Fig. 7.
pub fn run(budget: &Budget, seed: u64) -> Fig7 {
    let model = CostModel::new();
    let cases = [
        (models::resnet50(224), baselines::eyeriss()),
        (models::vgg16(224), baselines::edge_tpu()),
        (models::vgg16(224), baselines::shidiannao()),
    ];
    let mut showcases = Vec::new();
    for (i, (net, baseline)) in cases.into_iter().enumerate() {
        let envelope = ResourceConstraint::from_design(&baseline);
        let result = search_accelerator_seeded(
            &model,
            std::slice::from_ref(&net),
            &envelope,
            &budget.accel_cfg(seed + i as u64),
            std::slice::from_ref(&baseline),
        );
        let design = &result.best.accelerator;
        showcases.push(Showcase {
            network: net.name().to_string(),
            resource: baseline.name().to_string(),
            design_card: design.design_card(),
            dataflow: design.connectivity().dataflow_label(),
            ndim: design.connectivity().ndim(),
        });
    }
    Fig7 { showcases }
}

impl Fig7 {
    /// Renders the three design cards.
    pub fn render(&self) -> String {
        let mut out = String::from("Fig. 7 — searched architectures per (network, resource)\n\n");
        for s in &self.showcases {
            out.push_str(&format!(
                "--- {} @ {} resources ---\n",
                s.network, s.resource
            ));
            out.push_str(&s.design_card);
            out.push_str("\n\n");
        }
        out
    }

    /// The diversity claim: the searches should not all land on one
    /// dataflow.
    pub fn distinct_dataflows(&self) -> usize {
        let mut labels: Vec<&str> = self.showcases.iter().map(|s| s.dataflow.as_str()).collect();
        labels.sort_unstable();
        labels.dedup();
        labels.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Preset;

    #[test]
    fn showcases_render_cards() {
        // Smoke: only check plumbing on the cheapest case.
        let model = CostModel::new();
        let budget = Budget::new(Preset::Smoke);
        let net = models::mobilenet_v2(224);
        let baseline = baselines::shidiannao();
        let envelope = ResourceConstraint::from_design(&baseline);
        let result = search_accelerator(
            &model,
            std::slice::from_ref(&net),
            &envelope,
            &budget.accel_cfg(1),
        );
        let card = result.best.accelerator.design_card();
        assert!(card.contains("Dataflow"));
    }
}
