//! Table II: the correlation between neural and accelerator design
//! spaces, *derived empirically* from our substrate rather than asserted.
//!
//! The paper's table marks which neural-architecture parameters (input
//! channels, output channels, kernel size, feature-map size) interact
//! with which accelerator parameters (array rows/cols, I/W/O buffer
//! sizes), and shows the marks differ between NVDLA and Eyeriss.
//! We reproduce the marks mechanically:
//!
//! * **array rows/cols** — an axis is sensitive to an NN parameter iff
//!   its spatially-mapped tensor dimension is derived from that parameter
//!   (the axis utilization is `extent/(s·ceil(extent/s))`);
//! * **buffer sizes** — a buffer is sensitive iff the full-reuse working
//!   set of its tensor (the buffer size needed to avoid refetch) moves by
//!   more than 10 % when the parameter doubles.

use crate::budget::Budget;
use crate::table;
use naas::prelude::*;
use naas_cost::Tensor;
use serde::{Deserialize, Serialize};

/// The four neural-architecture parameters of the paper's Table II.
pub const NN_PARAMS: [&str; 4] = [
    "input channels",
    "output channels",
    "kernel size",
    "feature map size",
];

/// One row of the correlation table: a hardware parameter of one design
/// and its sensitivity to each NN parameter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorrelationRow {
    /// Design name (`NVDLA` or `Eyeriss`).
    pub design: String,
    /// Hardware parameter name.
    pub hw_param: String,
    /// Sensitivity flags, indexed like [`NN_PARAMS`].
    pub sensitive: [bool; 4],
}

/// Table II result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2 {
    /// All rows, NVDLA first.
    pub rows: Vec<CorrelationRow>,
}

/// The probe layer and its four doubled variants.
fn probe() -> ConvSpec {
    ConvSpec::conv2d("probe", 24, 40, (28, 28), (3, 3), 1, 1).expect("probe layer valid")
}

fn variant(which: usize) -> ConvSpec {
    match which {
        0 => ConvSpec::conv2d("v", 48, 40, (28, 28), (3, 3), 1, 1),
        1 => ConvSpec::conv2d("v", 24, 80, (28, 28), (3, 3), 1, 1),
        2 => ConvSpec::conv2d("v", 24, 40, (28, 28), (5, 5), 1, 2),
        _ => ConvSpec::conv2d("v", 24, 40, (56, 56), (3, 3), 1, 1),
    }
    .expect("variant layers valid")
}

/// Which NN parameter classes drive each tensor dimension.
fn dim_param(dim: Dim) -> usize {
    match dim {
        Dim::C => 0,
        Dim::K => 1,
        Dim::R | Dim::S => 2,
        Dim::Y | Dim::X => 3,
    }
}

/// Full-reuse working set (elements) of one tensor — the buffer size
/// needed to never refetch it.
fn working_set(layer: &ConvSpec, t: Tensor) -> f64 {
    t.total_elems(layer) as f64
}

/// Derives the correlation rows for one design.
fn derive(design: &Accelerator) -> Vec<CorrelationRow> {
    let mut rows = Vec::new();
    // Array axes: sensitivity is structural (which dim is spatial).
    let conn = design.connectivity();
    for (axis, &p) in conn.parallel_dims().iter().enumerate() {
        let mut sensitive = [false; 4];
        sensitive[dim_param(p)] = true;
        rows.push(CorrelationRow {
            design: design.name().to_string(),
            hw_param: format!("array dim {} ({}-parallel)", axis, p.paper_name()),
            sensitive,
        });
    }
    // Buffers: empirical working-set sensitivity.
    for (t, label) in [
        (Tensor::Inputs, "IBUF size"),
        (Tensor::Weights, "WBUF size"),
        (Tensor::Outputs, "OBUF size"),
    ] {
        let base = working_set(&probe(), t);
        let sensitive = std::array::from_fn(|i| {
            let v = working_set(&variant(i), t);
            (v - base).abs() / base > 0.10
        });
        rows.push(CorrelationRow {
            design: design.name().to_string(),
            hw_param: label.to_string(),
            sensitive,
        });
    }
    rows
}

/// Derives Table II for NVDLA-256 and Eyeriss.
pub fn run(_budget: &Budget, _seed: u64) -> Table2 {
    let mut rows = derive(&baselines::nvdla_256());
    rows.extend(derive(&baselines::eyeriss()));
    Table2 { rows }
}

impl Table2 {
    /// Renders the ✓/· correlation matrix.
    pub fn render(&self) -> String {
        let mut out =
            String::from("Table II — empirically derived neural/accelerator correlations\n");
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                let mut cells = vec![r.design.clone(), r.hw_param.clone()];
                cells.extend(r.sensitive.iter().map(|&s| {
                    if s {
                        "Y".to_string()
                    } else {
                        "·".to_string()
                    }
                }));
                cells
            })
            .collect();
        out.push_str(&table::render(
            &[
                "design",
                "hw parameter",
                "in-ch",
                "out-ch",
                "kernel",
                "fmap",
            ],
            &rows,
        ));
        out
    }

    /// Finds a row.
    pub fn row(&self, design: &str, hw_param_prefix: &str) -> Option<&CorrelationRow> {
        self.rows
            .iter()
            .find(|r| r.design.starts_with(design) && r.hw_param.starts_with(hw_param_prefix))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::{Budget, Preset};

    #[test]
    fn reproduces_papers_key_marks() {
        let t = run(&Budget::new(Preset::Smoke), 0);
        // NVDLA rows are C-parallel → sensitive to input channels.
        let r = t.row("NVDLA", "array dim 0").unwrap();
        assert!(r.sensitive[0] && !r.sensitive[2]);
        // Eyeriss rows are R-parallel → sensitive to kernel size.
        let r = t.row("Eyeriss", "array dim 0").unwrap();
        assert!(r.sensitive[2] && !r.sensitive[0]);
        // WBUF depends on in-ch, out-ch and kernel — never on fmap size.
        for design in ["NVDLA", "Eyeriss"] {
            let r = t.row(design, "WBUF").unwrap();
            assert_eq!(r.sensitive, [true, true, true, false]);
            // OBUF depends on out-ch and fmap, not on in-ch/kernel.
            let r = t.row(design, "OBUF").unwrap();
            assert_eq!(r.sensitive, [false, true, false, true]);
            // IBUF depends on in-ch and fmap.
            let r = t.row(design, "IBUF").unwrap();
            assert!(r.sensitive[0] && r.sensitive[3]);
        }
    }

    #[test]
    fn designs_disagree_somewhere() {
        // The paper's point: the correlation pattern differs per design.
        let t = run(&Budget::new(Preset::Smoke), 0);
        let n = t.row("NVDLA", "array dim 0").unwrap();
        let e = t.row("Eyeriss", "array dim 0").unwrap();
        assert_ne!(n.sensitive, e.sensitive);
    }
}
