//! Figure 9: importance-based vs index-based encoding, for both the
//! hardware vector and the mapping vector (2×2 ablation).
//!
//! The paper reports EDP reductions of 1.4× (index/index) up to 7.4×
//! (importance/importance) relative to the un-searched baseline — the
//! importance encoding is what makes the evolution's arithmetic
//! meaningful on orderings.

use crate::budget::Budget;
use crate::table;
use naas::baselines::baseline_network_cost;
use naas::prelude::*;
use serde::{Deserialize, Serialize};

/// One cell of the 2×2 ablation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EncodingCell {
    /// Hardware-vector encoding.
    pub hw_scheme: String,
    /// Mapping-vector encoding.
    pub map_scheme: String,
    /// Baseline EDP / searched EDP.
    pub edp_reduction: f64,
}

/// Figure 9 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig9 {
    /// The four cells, index/index first.
    pub cells: Vec<EncodingCell>,
}

fn scheme_name(s: EncodingScheme) -> &'static str {
    match s {
        EncodingScheme::Importance => "importance",
        EncodingScheme::Index => "index",
    }
}

/// Runs the encoding ablation: MobileNetV2 under the Eyeriss envelope.
///
/// Unlike the headline experiments, the ablation runs *from scratch* (no
/// warm-start seed — both encodings must discover designs on their own,
/// which is exactly what the paper's comparison measures) and averages
/// three seeds per cell, since single-run search noise at small budgets
/// can exceed the encoding effect.
pub fn run(budget: &Budget, seed: u64) -> Fig9 {
    let model = CostModel::new();
    let baseline = baselines::eyeriss();
    let envelope = ResourceConstraint::from_design(&baseline);
    let net = models::mobilenet_v2(224);
    let base_cost = baseline_network_cost(&model, &net, &baseline, &budget.mapping_cfg(seed))
        .expect("eyeriss runs mobilenet");
    let replicas: u64 = if budget.preset == crate::budget::Preset::Smoke {
        1
    } else {
        3
    };

    let mut cells = Vec::new();
    for hw in [EncodingScheme::Index, EncodingScheme::Importance] {
        for map in [EncodingScheme::Index, EncodingScheme::Importance] {
            let mut log_sum = 0.0;
            for replica in 0..replicas {
                let mut cfg = budget.accel_cfg(seed + 1000 * replica);
                cfg.scheme = hw;
                cfg.mapping.scheme = map;
                // The encodings must find mappings unaided.
                cfg.mapping.seed_with_heuristic = false;
                let result =
                    naas::search_accelerator(&model, std::slice::from_ref(&net), &envelope, &cfg);
                log_sum += (base_cost.edp() / result.best.reward).ln();
            }
            cells.push(EncodingCell {
                hw_scheme: scheme_name(hw).to_string(),
                map_scheme: scheme_name(map).to_string(),
                edp_reduction: (log_sum / replicas as f64).exp(),
            });
        }
    }
    Fig9 { cells }
}

impl Fig9 {
    /// Paper-style rendering.
    pub fn render(&self) -> String {
        let mut out = String::from("Fig. 9 — encoding ablation (EDP reduction vs Eyeriss)\n");
        let rows: Vec<Vec<String>> = self
            .cells
            .iter()
            .map(|c| {
                vec![
                    c.hw_scheme.clone(),
                    c.map_scheme.clone(),
                    table::ratio(c.edp_reduction),
                ]
            })
            .collect();
        out.push_str(&table::render(
            &["hw encoding", "mapping encoding", "EDP reduction"],
            &rows,
        ));
        out
    }

    /// The ablation's dominant effect, as in the paper's Fig. 9: the
    /// all-index cell (1.4× there) trails every cell that uses the
    /// importance encoding somewhere (6.7×–7.4× there).
    pub fn index_index_is_worst(&self) -> bool {
        let idx_idx = self
            .cells
            .iter()
            .find(|c| c.hw_scheme == "index" && c.map_scheme == "index")
            .expect("index/index cell present");
        self.cells
            .iter()
            .filter(|c| c.hw_scheme == "importance" || c.map_scheme == "importance")
            .all(|c| c.edp_reduction >= idx_idx.edp_reduction)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Preset;

    #[test]
    fn importance_not_worse_than_index_on_mapping_search() {
        // Direct head-to-head at equal budget on one layer-level search:
        // the importance encoding should find an equal or better mapping.
        use naas::search_layer_mapping;
        let model = CostModel::new();
        let accel = baselines::eyeriss();
        let layer = models::mobilenet_v2(224).layers()[4].clone();
        let budget = Budget::new(Preset::Quick);
        let mut imp_cfg = budget.mapping_cfg(3);
        imp_cfg.scheme = EncodingScheme::Importance;
        let mut idx_cfg = budget.mapping_cfg(3);
        idx_cfg.scheme = EncodingScheme::Index;
        let imp = search_layer_mapping(&model, &layer, &accel, &imp_cfg).unwrap();
        let idx = search_layer_mapping(&model, &layer, &accel, &idx_cfg).unwrap();
        assert!(imp.cost.edp() <= idx.cost.edp() * 1.25);
    }
}
