//! Search-budget presets shared by all experiments.

use naas::{AccelSearchConfig, MappingSearchConfig};
use naas_nas::NasConfig;
use serde::{Deserialize, Serialize};

/// Named budget presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Preset {
    /// Minimal budgets for CI smoke tests and Criterion benches.
    Smoke,
    /// Laptop-scale budgets: minutes per experiment, same qualitative
    /// results.
    Quick,
    /// The paper's budgets (population 20 × 15 iterations outer loop).
    Paper,
}

impl Preset {
    /// Parses a preset name (case-insensitive).
    pub fn parse(s: &str) -> Option<Preset> {
        match s.to_ascii_lowercase().as_str() {
            "smoke" => Some(Preset::Smoke),
            "quick" => Some(Preset::Quick),
            "paper" => Some(Preset::Paper),
            _ => None,
        }
    }
}

/// Concrete budgets derived from a preset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Budget {
    /// The preset this budget came from.
    pub preset: Preset,
    /// Outer-loop population.
    pub accel_population: usize,
    /// Outer-loop iterations.
    pub accel_iterations: usize,
    /// Inner-loop (mapping) population.
    pub map_population: usize,
    /// Inner-loop (mapping) iterations.
    pub map_iterations: usize,
    /// NAS population (joint search).
    pub nas_population: usize,
    /// NAS generations (joint search).
    pub nas_generations: usize,
}

impl Budget {
    /// Builds the budget for a preset.
    pub fn new(preset: Preset) -> Self {
        match preset {
            Preset::Smoke => Budget {
                preset,
                accel_population: 5,
                accel_iterations: 3,
                map_population: 6,
                map_iterations: 2,
                nas_population: 4,
                nas_generations: 2,
            },
            Preset::Quick => Budget {
                preset,
                accel_population: 10,
                accel_iterations: 8,
                map_population: 12,
                map_iterations: 4,
                nas_population: 8,
                nas_generations: 4,
            },
            Preset::Paper => Budget {
                preset,
                accel_population: 20,
                accel_iterations: 15,
                map_population: 16,
                map_iterations: 6,
                nas_population: 16,
                nas_generations: 8,
            },
        }
    }

    /// Budget from the `NAAS_PRESET` environment variable
    /// (default `quick`).
    pub fn from_env() -> Self {
        let preset = std::env::var("NAAS_PRESET")
            .ok()
            .and_then(|s| Preset::parse(&s))
            .unwrap_or(Preset::Quick);
        Budget::new(preset)
    }

    /// Mapping-search configuration at this budget.
    pub fn mapping_cfg(&self, seed: u64) -> MappingSearchConfig {
        MappingSearchConfig {
            population: self.map_population,
            iterations: self.map_iterations,
            seed,
            ..MappingSearchConfig::default()
        }
    }

    /// Accelerator-search configuration at this budget.
    pub fn accel_cfg(&self, seed: u64) -> AccelSearchConfig {
        AccelSearchConfig {
            population: self.accel_population,
            iterations: self.accel_iterations,
            mapping: self.mapping_cfg(seed),
            seed,
            ..AccelSearchConfig::paper(seed)
        }
    }

    /// NAS configuration at this budget.
    pub fn nas_cfg(&self, seed: u64) -> NasConfig {
        NasConfig {
            population: self.nas_population,
            generations: self.nas_generations,
            seed,
            ..NasConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_parse() {
        assert_eq!(Preset::parse("smoke"), Some(Preset::Smoke));
        assert_eq!(Preset::parse("QUICK"), Some(Preset::Quick));
        assert_eq!(Preset::parse("Paper"), Some(Preset::Paper));
        assert_eq!(Preset::parse("huge"), None);
    }

    #[test]
    fn paper_budget_matches_paper_counts() {
        let b = Budget::new(Preset::Paper);
        assert_eq!(b.accel_population, 20);
        assert_eq!(b.accel_iterations, 15);
    }

    #[test]
    fn configs_inherit_budget() {
        let b = Budget::new(Preset::Smoke);
        let cfg = b.accel_cfg(7);
        assert_eq!(cfg.population, 5);
        assert_eq!(cfg.mapping.population, 6);
        assert_eq!(cfg.seed, 7);
    }
}
