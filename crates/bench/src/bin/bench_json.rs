//! Machine-readable perf snapshot: re-runs the `mapping_throughput` and
//! `service_throughput` benchmark workloads — plus a
//! `distributed_throughput` straggler workload over a live in-process
//! fleet and a `pareto_search` workload comparing scalar-objective and
//! Pareto-archive search at the same seed and budget — with plain
//! wall-clock timing and writes one JSON summary: the `BENCH_*.json`
//! trajectory that future optimization PRs (surrogate pre-filter, SIMD
//! hot path) are judged against.
//!
//! ```text
//! cargo run -p naas-bench --release --bin bench_json [-- OUT.json]
//! ```
//!
//! The default output path is `BENCH_9.json`. Each measurement is the
//! median of several timed iterations after a warmup pass — noisier
//! than criterion's estimator, but dependency-light and fast enough to
//! run on every perf-relevant change.

use naas::service::{BatchEvalService, ServiceConfig, ServiceServer};
use naas::MappingSearchConfig;
use naas_opt::{EncodingScheme, MappingEncoder, Optimizer, RandomSearch};
use serde::Value;
use std::net::TcpListener;
use std::sync::Arc;
use std::time::Instant;

const POPULATION: usize = 64;

/// Median wall-clock milliseconds of `runs` timed calls to `f`, after
/// one untimed warmup call.
fn median_ms(runs: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("elapsed times are finite"));
    samples[samples.len() / 2]
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn mapping_throughput() -> Value {
    let model = naas_cost::CostModel::new();
    let layer = naas_ir::ConvSpec::conv2d("c", 64, 128, (28, 28), (3, 3), 1, 1).unwrap();

    // Full cold-cache per-layer search at the default budget — the unit
    // of work the outer loop pays per (design, layer-shape) cache miss.
    let mut searches = Vec::new();
    for accel in [
        naas_accel::baselines::eyeriss(),
        naas_accel::baselines::nvdla_256(),
    ] {
        let cfg = MappingSearchConfig {
            seed: 7,
            ..MappingSearchConfig::default()
        };
        let ms = median_ms(5, || {
            std::hint::black_box(
                naas::search_layer_mapping(&model, &layer, &accel, &cfg).expect("maps"),
            );
        });
        searches.push((accel.name().to_string(), ms));
    }

    // Raw population scoring, scalar versus batched (the same 64
    // candidates through both API shapes).
    let accel = naas_accel::baselines::eyeriss();
    let encoder = MappingEncoder::new(accel.connectivity().ndim(), EncodingScheme::Importance);
    let mut sampler = RandomSearch::new(encoder.dim(), 3);
    let thetas: Vec<Vec<f64>> = (0..POPULATION).map(|_| sampler.ask()).collect();
    let scalar_ms = median_ms(30, || {
        let mut acc = 0.0;
        for theta in &thetas {
            let mapping = encoder.decode(theta, &layer, accel.connectivity());
            if let Ok(cost) = model.evaluate(&layer, &accel, &mapping) {
                acc += cost.edp();
            }
        }
        std::hint::black_box(acc);
    });
    let mut mappings = vec![naas_mapping::Mapping::new(Vec::new(), naas_ir::DIMS); thetas.len()];
    let mut scratch = naas_cost::EvalScratch::new();
    let mut results = Vec::new();
    let batched_ms = median_ms(30, || {
        for (theta, slot) in thetas.iter().zip(&mut mappings) {
            encoder.decode_into(theta, &layer, accel.connectivity(), slot);
        }
        model.evaluate_batch(&layer, &accel, &mappings, &mut scratch, &mut results);
        let acc: f64 = results
            .iter()
            .filter_map(|r| r.as_ref().ok().map(|c| c.edp()))
            .sum();
        std::hint::black_box(acc);
    });

    let mut fields = Vec::new();
    for (name, ms) in &searches {
        let key = format!(
            "layer_search_{}_ms",
            name.to_lowercase().replace(['-', ' '], "_")
        );
        fields.push((key, Value::F64(*ms)));
    }
    fields.push((
        format!("population_eval_{POPULATION}_scalar_ms"),
        Value::F64(scalar_ms),
    ));
    fields.push((
        format!("population_eval_{POPULATION}_batched_ms"),
        Value::F64(batched_ms),
    ));
    Value::Object(fields)
}

fn service_throughput() -> Value {
    let layer = naas_ir::ConvSpec::conv2d("c", 64, 128, (28, 28), (3, 3), 1, 1).unwrap();
    let accel = naas_accel::baselines::eyeriss();
    let encoder = MappingEncoder::new(accel.connectivity().ndim(), EncodingScheme::Importance);
    let mut sampler = RandomSearch::new(encoder.dim(), 3);
    let mappings: Vec<naas_mapping::Mapping> = (0..POPULATION)
        .map(|_| encoder.decode(&sampler.ask(), &layer, accel.connectivity()))
        .collect();

    let layer_json = serde_json::to_string(&layer).unwrap();
    let scalar_requests: Vec<String> = mappings
        .iter()
        .map(|m| {
            format!(
                r#"{{"id":1,"cmd":"evaluate_batch","layer":{},"design":"Eyeriss","mappings":[{}]}}"#,
                layer_json,
                serde_json::to_string(m).unwrap()
            )
        })
        .collect();
    let batched_request = format!(
        r#"{{"id":1,"cmd":"evaluate_batch","layer":{},"design":"Eyeriss","mappings":{}}}"#,
        layer_json,
        serde_json::to_string(&mappings).unwrap()
    );

    let service = BatchEvalService::new(ServiceConfig {
        threads: 1,
        mapping: MappingSearchConfig::quick(7),
        cache_file: None,
        cache_cap: 0,
        eval_delay_us: 0,
    })
    .expect("no cache file");

    let scalar_ms = median_ms(10, || {
        for request in &scalar_requests {
            std::hint::black_box(service.respond(request));
        }
    });
    let batched_ms = median_ms(10, || {
        std::hint::black_box(service.respond(&batched_request));
    });
    obj(vec![
        ("population_64_scalar_requests_ms", Value::F64(scalar_ms)),
        ("population_64_batched_request_ms", Value::F64(batched_ms)),
        (
            "batched_speedup",
            Value::F64(if batched_ms > 0.0 {
                scalar_ms / batched_ms
            } else {
                0.0
            }),
        ),
    ])
}

/// Per-candidate injected delay of the "normal" machines in the
/// straggler fleet, microseconds.
const FAST_DELAY_US: u64 = 20_000;
/// The straggler: 4× slower than its three peers.
const SLOW_DELAY_US: u64 = 80_000;
/// Candidates per generation of the distributed workload.
const STRAGGLER_POPULATION: usize = 48;

/// Spawns a detached in-process TCP worker — the serving stack behind
/// `naas-search worker` — with an injected per-candidate evaluation
/// delay, and returns its address.
fn spawn_worker(eval_delay_us: u64) -> String {
    let service = BatchEvalService::new(ServiceConfig {
        threads: 1,
        mapping: MappingSearchConfig::quick(7),
        cache_file: None,
        cache_cap: 0,
        eval_delay_us,
    })
    .expect("no cache file");
    let server = Arc::new(ServiceServer::start(Arc::new(service)));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().expect("bound socket").to_string();
    std::thread::spawn(move || {
        let _ = server.serve_listener(listener);
    });
    addr
}

/// Runs one sharded `cifar-eyeriss` search over a fresh fleet with the
/// given per-worker delays and scheduler setting, returning each
/// generation's wall-clock (ms, in order) plus the scheduler and
/// overlap counters. `microshards == 0` selects the static
/// one-shard-per-worker baseline; `overlap` turns the speculative
/// ask/rollback reactor on.
fn straggler_run(
    delays: &[u64],
    microshards: usize,
    overlap: bool,
) -> (Vec<f64>, naas::SchedulerStats, naas::OverlapStats) {
    let scenario = naas_engine::scenario::find("cifar-eyeriss").expect("registered scenario");
    let job = scenario.resolve().expect("scenario resolves");
    let mut cfg = naas::AccelSearchConfig::quick(17);
    cfg.population = STRAGGLER_POPULATION;
    cfg.iterations = 6;
    cfg.mapping = MappingSearchConfig::quick(7);
    cfg.threads = 1;

    let addrs: Vec<String> = delays.iter().map(|&d| spawn_worker(d)).collect();
    let mut coordinator =
        naas::DistributedCoordinator::connect(&addrs, &scenario).expect("fleet reachable");
    coordinator.set_microshards(microshards);
    coordinator.set_overlap(overlap);

    let engine = naas::CoSearchEngine::new(1);
    let model = naas_cost::CostModel::new();
    let mut state = naas::accel_search_init(&job.constraint, &cfg, &[]);
    let mut gens = Vec::new();
    loop {
        let start = Instant::now();
        if !coordinator.step(&engine, &model, &job.networks, &mut state) {
            break;
        }
        gens.push(start.elapsed().as_secs_f64() * 1e3);
    }
    (
        gens,
        coordinator.scheduler_stats(),
        coordinator.overlap_stats(),
    )
}

/// Median of the warm generations (generation 0 is excluded: it pays
/// the cold mapping cache and, for the dynamic scheduler, runs before
/// any throughput EWMA exists).
fn warm_median_ms(gens: &[f64]) -> f64 {
    let mut warm: Vec<f64> = gens[1..].to_vec();
    warm.sort_by(|a, b| a.partial_cmp(b).expect("elapsed times are finite"));
    warm[warm.len() / 2]
}

/// The straggler workload (ISSUE 7's acceptance criterion): 4 workers,
/// one 4× slower. Per-generation wall-clock under the static
/// one-shard-per-worker baseline versus the micro-shard scheduler,
/// against the ideal of a uniform fleet of 4 fast machines. The
/// acceptance bar is micro ≤ 1.4× ideal while static ≥ 2× ideal.
fn distributed_throughput() -> Value {
    let straggler = [FAST_DELAY_US, FAST_DELAY_US, FAST_DELAY_US, SLOW_DELAY_US];
    let uniform = [FAST_DELAY_US; 4];

    eprintln!("bench_json: distributed_throughput — static scheduler on the straggler fleet...");
    let (static_gens, _, _) = straggler_run(&straggler, 0, false);
    eprintln!(
        "bench_json: distributed_throughput — micro-shard scheduler on the straggler fleet..."
    );
    let (micro_gens, stats, _) =
        straggler_run(&straggler, naas::distributed::DEFAULT_MICROSHARDS, false);
    eprintln!("bench_json: distributed_throughput — overlap reactor on the straggler fleet...");
    let (overlap_gens, _, overlap) =
        straggler_run(&straggler, naas::distributed::DEFAULT_MICROSHARDS, true);
    eprintln!("bench_json: distributed_throughput — ideal uniform fleet...");
    let (ideal_gens, _, _) = straggler_run(&uniform, 0, false);

    let static_ms = warm_median_ms(&static_gens);
    let micro_ms = warm_median_ms(&micro_gens);
    let overlap_ms = warm_median_ms(&overlap_gens);
    let ideal_ms = warm_median_ms(&ideal_gens);

    obj(vec![
        ("workers", Value::U64(4)),
        ("population", Value::U64(STRAGGLER_POPULATION as u64)),
        ("fast_delay_us", Value::U64(FAST_DELAY_US)),
        ("slow_delay_us", Value::U64(SLOW_DELAY_US)),
        ("generations_timed", Value::U64(static_gens.len() as u64)),
        ("static_straggler_gen_ms", Value::F64(static_ms)),
        ("microshard_straggler_gen_ms", Value::F64(micro_ms)),
        ("overlap_straggler_gen_ms", Value::F64(overlap_ms)),
        ("ideal_uniform_gen_ms", Value::F64(ideal_ms)),
        ("static_vs_ideal", Value::F64(static_ms / ideal_ms)),
        ("microshard_vs_ideal", Value::F64(micro_ms / ideal_ms)),
        ("overlap_vs_ideal", Value::F64(overlap_ms / ideal_ms)),
        ("steals", Value::U64(stats.steals)),
        ("resplits", Value::U64(stats.resplits)),
        ("speculations", Value::U64(stats.speculations)),
        ("duplicate_replies", Value::U64(stats.duplicate_replies)),
        ("overlap_asks", Value::U64(overlap.asks)),
        ("overlap_hits", Value::U64(overlap.hits)),
        ("overlap_rollbacks", Value::U64(overlap.rollbacks)),
        ("joint_small_generation", joint_small_generation()),
    ])
}

/// Candidates per generation of the small-generation joint workload —
/// deliberately *half* the fleet, so whole-candidate (barrier) sharding
/// structurally strands two of the four workers.
const JOINT_POPULATION: usize = 2;
/// Outer accelerator generations of the joint workload.
const JOINT_ITERATIONS: usize = 4;

/// Runs one sharded joint search over a fresh uniform 4-worker fleet,
/// coarse whole-candidate shards (`overlap == false`, the barrier path)
/// versus `joint_unit` sub-candidate sharding under the overlap
/// reactor, returning per-generation wall-clock plus overlap counters.
fn joint_run(overlap: bool) -> (Vec<f64>, naas::OverlapStats) {
    let envelope = naas_accel::ResourceConstraint::from_design(&naas_accel::baselines::eyeriss());
    let mut cfg = naas::JointConfig::quick(29);
    cfg.accel.population = JOINT_POPULATION;
    cfg.accel.iterations = JOINT_ITERATIONS;
    // A mapping budget near the paper's scale, so one subnet evaluation
    // carries real work — the regime where sub-candidate sharding pays.
    cfg.accel.mapping = MappingSearchConfig {
        population: 32,
        iterations: 100,
        seed: 7,
        ..MappingSearchConfig::default()
    };
    cfg.accel.threads = 1;

    let addrs: Vec<String> = (0..4).map(|_| spawn_worker(0)).collect();
    let mut coordinator =
        naas::DistributedCoordinator::connect_joint(&addrs).expect("fleet reachable");
    coordinator.set_overlap(overlap);

    let engine = naas::CoSearchEngine::new(1);
    let model = naas_cost::CostModel::new();
    let accuracy = naas_nas::AccuracyModel::default();
    let mut state = naas::joint_search_init(&envelope, &cfg);
    let mut gens = Vec::new();
    loop {
        let start = Instant::now();
        if !coordinator.step_joint(&engine, &model, &accuracy, &mut state) {
            break;
        }
        gens.push(start.elapsed().as_secs_f64() * 1e3);
    }
    (gens, coordinator.overlap_stats())
}

/// The small-generation joint workload (the overlap acceptance bar): a
/// 2-candidate joint generation on a 4-worker fleet. The barrier path
/// cannot shard below one NAS evolution, so half the fleet idles every
/// generation; `joint_unit` sharding under `--overlap on` decomposes
/// each candidate into per-subnet units and saturates all four workers.
fn joint_small_generation() -> Value {
    eprintln!("bench_json: distributed_throughput — joint barrier (whole-candidate shards)...");
    let (barrier_gens, _) = joint_run(false);
    eprintln!("bench_json: distributed_throughput — joint overlap (joint_unit shards)...");
    let (overlap_gens, stats) = joint_run(true);

    let barrier_ms = warm_median_ms(&barrier_gens);
    let overlap_ms = warm_median_ms(&overlap_gens);
    obj(vec![
        ("workers", Value::U64(4)),
        ("population", Value::U64(JOINT_POPULATION as u64)),
        ("generations_timed", Value::U64(barrier_gens.len() as u64)),
        ("barrier_gen_ms", Value::F64(barrier_ms)),
        ("overlap_gen_ms", Value::F64(overlap_ms)),
        (
            "overlap_vs_barrier_speedup",
            Value::F64(if overlap_ms > 0.0 {
                barrier_ms / overlap_ms
            } else {
                0.0
            }),
        ),
        ("joint_units", Value::U64(stats.joint_units)),
    ])
}

/// Candidates per generation of the `pareto_search` workload.
const PARETO_POPULATION: usize = 16;
/// Generations of the `pareto_search` workload.
const PARETO_ITERATIONS: usize = 6;

/// Runs one in-process `cifar-eyeriss` accelerator search to completion
/// under the given objective policy, on a shared warm engine, returning
/// the final state.
fn objective_run(
    engine: &naas::CoSearchEngine,
    objectives: naas::ObjectivePolicy,
) -> naas::AccelSearchState {
    let scenario = naas_engine::scenario::find("cifar-eyeriss").expect("registered scenario");
    let job = scenario.resolve().expect("scenario resolves");
    let mut cfg = naas::AccelSearchConfig::quick(17);
    cfg.population = PARETO_POPULATION;
    cfg.iterations = PARETO_ITERATIONS;
    cfg.mapping = MappingSearchConfig::quick(7);
    cfg.threads = 1;
    cfg.objectives = objectives;
    let model = naas_cost::CostModel::new();
    let mut state = naas::accel_search_init(&job.constraint, &cfg, &[]);
    while naas::accel_search_step(engine, &model, &job.networks, &mut state) {}
    state
}

/// The archive-overhead workload (ISSUE 8): the same accelerator search
/// at the same seed and budget, scalar objectives versus the Pareto
/// archive. One untimed pass warms the shared mapping cache, so the
/// timed comparison isolates search-loop cost — the scalarized
/// trajectory is identical in both modes, and the delta is the price of
/// dominance inserts plus hypervolume truncation.
fn pareto_search() -> Value {
    let engine = naas::CoSearchEngine::new(1);
    let scalar_ms = median_ms(3, || {
        std::hint::black_box(objective_run(&engine, naas::ObjectivePolicy::Scalar));
    });
    let pareto_ms = median_ms(3, || {
        std::hint::black_box(objective_run(&engine, naas::ObjectivePolicy::Pareto));
    });
    let state = objective_run(&engine, naas::ObjectivePolicy::Pareto);
    let archive = state.archive().expect("pareto mode keeps an archive");
    obj(vec![
        ("population", Value::U64(PARETO_POPULATION as u64)),
        ("iterations", Value::U64(PARETO_ITERATIONS as u64)),
        ("scalar_search_ms", Value::F64(scalar_ms)),
        ("pareto_search_ms", Value::F64(pareto_ms)),
        (
            "archive_overhead",
            Value::F64(if scalar_ms > 0.0 {
                pareto_ms / scalar_ms
            } else {
                0.0
            }),
        ),
        ("front_size", Value::U64(archive.len() as u64)),
        ("archive_inserts", Value::U64(archive.inserts)),
        ("archive_rejections", Value::U64(archive.rejections)),
        ("hypervolume", Value::F64(archive.hypervolume())),
    ])
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_9.json".to_string());

    eprintln!("bench_json: timing mapping_throughput workloads...");
    let mapping = mapping_throughput();
    eprintln!("bench_json: timing service_throughput workloads...");
    let service = service_throughput();
    eprintln!("bench_json: timing distributed_throughput workloads...");
    let distributed = distributed_throughput();
    eprintln!("bench_json: timing pareto_search workload...");
    let pareto = pareto_search();

    let summary = obj(vec![
        ("bench", Value::Str("BENCH_9".to_string())),
        (
            "description",
            Value::Str(
                "median wall-clock ms of the mapping_throughput, service_throughput, \
                 distributed_throughput (straggler + overlap reactor + small-generation \
                 joint_unit workloads) and pareto_search benchmark workloads (see \
                 crates/bench/benches/, naas::distributed and naas::pareto)"
                    .to_string(),
            ),
        ),
        ("mapping_throughput", mapping),
        ("service_throughput", service),
        ("distributed_throughput", distributed),
        ("pareto_search", pareto),
    ]);
    let text = serde_json::to_string_pretty(&summary).expect("value serialization is infallible");
    std::fs::write(&out, format!("{text}\n")).unwrap_or_else(|e| {
        eprintln!("bench_json: cannot write {out}: {e}");
        std::process::exit(1);
    });
    println!("{text}");
    eprintln!("bench_json: wrote {out}");
}
