//! Machine-readable perf snapshot: re-runs the `mapping_throughput` and
//! `service_throughput` benchmark workloads with plain wall-clock
//! timing and writes one JSON summary — the `BENCH_*.json` trajectory
//! that future optimization PRs (surrogate pre-filter, SIMD hot path)
//! are judged against.
//!
//! ```text
//! cargo run -p naas-bench --release --bin bench_json [-- OUT.json]
//! ```
//!
//! The default output path is `BENCH_6.json`. Each measurement is the
//! median of several timed iterations after a warmup pass — noisier
//! than criterion's estimator, but dependency-light and fast enough to
//! run on every perf-relevant change.

use naas::service::{BatchEvalService, ServiceConfig};
use naas::MappingSearchConfig;
use naas_opt::{EncodingScheme, MappingEncoder, Optimizer, RandomSearch};
use serde::Value;
use std::time::Instant;

const POPULATION: usize = 64;

/// Median wall-clock milliseconds of `runs` timed calls to `f`, after
/// one untimed warmup call.
fn median_ms(runs: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("elapsed times are finite"));
    samples[samples.len() / 2]
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn mapping_throughput() -> Value {
    let model = naas_cost::CostModel::new();
    let layer = naas_ir::ConvSpec::conv2d("c", 64, 128, (28, 28), (3, 3), 1, 1).unwrap();

    // Full cold-cache per-layer search at the default budget — the unit
    // of work the outer loop pays per (design, layer-shape) cache miss.
    let mut searches = Vec::new();
    for accel in [
        naas_accel::baselines::eyeriss(),
        naas_accel::baselines::nvdla_256(),
    ] {
        let cfg = MappingSearchConfig {
            seed: 7,
            ..MappingSearchConfig::default()
        };
        let ms = median_ms(5, || {
            std::hint::black_box(
                naas::search_layer_mapping(&model, &layer, &accel, &cfg).expect("maps"),
            );
        });
        searches.push((accel.name().to_string(), ms));
    }

    // Raw population scoring, scalar versus batched (the same 64
    // candidates through both API shapes).
    let accel = naas_accel::baselines::eyeriss();
    let encoder = MappingEncoder::new(accel.connectivity().ndim(), EncodingScheme::Importance);
    let mut sampler = RandomSearch::new(encoder.dim(), 3);
    let thetas: Vec<Vec<f64>> = (0..POPULATION).map(|_| sampler.ask()).collect();
    let scalar_ms = median_ms(30, || {
        let mut acc = 0.0;
        for theta in &thetas {
            let mapping = encoder.decode(theta, &layer, accel.connectivity());
            if let Ok(cost) = model.evaluate(&layer, &accel, &mapping) {
                acc += cost.edp();
            }
        }
        std::hint::black_box(acc);
    });
    let mut mappings = vec![naas_mapping::Mapping::new(Vec::new(), naas_ir::DIMS); thetas.len()];
    let mut scratch = naas_cost::EvalScratch::new();
    let mut results = Vec::new();
    let batched_ms = median_ms(30, || {
        for (theta, slot) in thetas.iter().zip(&mut mappings) {
            encoder.decode_into(theta, &layer, accel.connectivity(), slot);
        }
        model.evaluate_batch(&layer, &accel, &mappings, &mut scratch, &mut results);
        let acc: f64 = results
            .iter()
            .filter_map(|r| r.as_ref().ok().map(|c| c.edp()))
            .sum();
        std::hint::black_box(acc);
    });

    let mut fields = Vec::new();
    for (name, ms) in &searches {
        let key = format!(
            "layer_search_{}_ms",
            name.to_lowercase().replace(['-', ' '], "_")
        );
        fields.push((key, Value::F64(*ms)));
    }
    fields.push((
        format!("population_eval_{POPULATION}_scalar_ms"),
        Value::F64(scalar_ms),
    ));
    fields.push((
        format!("population_eval_{POPULATION}_batched_ms"),
        Value::F64(batched_ms),
    ));
    Value::Object(fields)
}

fn service_throughput() -> Value {
    let layer = naas_ir::ConvSpec::conv2d("c", 64, 128, (28, 28), (3, 3), 1, 1).unwrap();
    let accel = naas_accel::baselines::eyeriss();
    let encoder = MappingEncoder::new(accel.connectivity().ndim(), EncodingScheme::Importance);
    let mut sampler = RandomSearch::new(encoder.dim(), 3);
    let mappings: Vec<naas_mapping::Mapping> = (0..POPULATION)
        .map(|_| encoder.decode(&sampler.ask(), &layer, accel.connectivity()))
        .collect();

    let layer_json = serde_json::to_string(&layer).unwrap();
    let scalar_requests: Vec<String> = mappings
        .iter()
        .map(|m| {
            format!(
                r#"{{"id":1,"cmd":"evaluate_batch","layer":{},"design":"Eyeriss","mappings":[{}]}}"#,
                layer_json,
                serde_json::to_string(m).unwrap()
            )
        })
        .collect();
    let batched_request = format!(
        r#"{{"id":1,"cmd":"evaluate_batch","layer":{},"design":"Eyeriss","mappings":{}}}"#,
        layer_json,
        serde_json::to_string(&mappings).unwrap()
    );

    let service = BatchEvalService::new(ServiceConfig {
        threads: 1,
        mapping: MappingSearchConfig::quick(7),
        cache_file: None,
        cache_cap: 0,
    })
    .expect("no cache file");

    let scalar_ms = median_ms(10, || {
        for request in &scalar_requests {
            std::hint::black_box(service.respond(request));
        }
    });
    let batched_ms = median_ms(10, || {
        std::hint::black_box(service.respond(&batched_request));
    });
    obj(vec![
        ("population_64_scalar_requests_ms", Value::F64(scalar_ms)),
        ("population_64_batched_request_ms", Value::F64(batched_ms)),
        (
            "batched_speedup",
            Value::F64(if batched_ms > 0.0 {
                scalar_ms / batched_ms
            } else {
                0.0
            }),
        ),
    ])
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_6.json".to_string());

    eprintln!("bench_json: timing mapping_throughput workloads...");
    let mapping = mapping_throughput();
    eprintln!("bench_json: timing service_throughput workloads...");
    let service = service_throughput();

    let summary = obj(vec![
        ("bench", Value::Str("BENCH_6".to_string())),
        (
            "description",
            Value::Str(
                "median wall-clock ms of the mapping_throughput and service_throughput \
                 benchmark workloads (see crates/bench/benches/)"
                    .to_string(),
            ),
        ),
        ("mapping_throughput", mapping),
        ("service_throughput", service),
    ]);
    let text = serde_json::to_string_pretty(&summary).expect("value serialization is infallible");
    std::fs::write(&out, format!("{text}\n")).unwrap_or_else(|e| {
        eprintln!("bench_json: cannot write {out}: {e}");
        std::process::exit(1);
    });
    println!("{text}");
    eprintln!("bench_json: wrote {out}");
}
