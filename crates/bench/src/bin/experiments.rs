//! Regenerates every figure and table of the NAAS paper.
//!
//! ```text
//! cargo run -p naas-bench --release --bin experiments -- <target> [preset] [seed]
//!
//! targets : fig4 fig5 fig6 fig7 fig8 fig9 fig10 table3 table4 all
//! preset  : smoke | quick (default) | paper     (or env NAAS_PRESET)
//! seed    : u64 (default 2021)
//! ```

use naas_bench::budget::{Budget, Preset};
use naas_bench::experiments::*;
use std::time::Instant;

fn usage() -> ! {
    eprintln!(
        "usage: experiments <fig4|fig5|fig6|fig7|fig8|fig9|fig10|table1|table2|table3|table4|pareto|all> \
         [smoke|quick|paper] [seed]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let target = args.first().map(String::as_str).unwrap_or_else(|| usage());
    let budget = args
        .get(1)
        .and_then(|s| Preset::parse(s))
        .map(Budget::new)
        .unwrap_or_else(Budget::from_env);
    let seed: u64 = args
        .get(2)
        .map(|s| s.parse().expect("seed must be a u64"))
        .unwrap_or(2021);

    println!(
        "# NAAS experiments — preset {:?}, seed {seed}\n",
        budget.preset
    );
    let t0 = Instant::now();
    match target {
        "fig4" => print!("{}", fig4::run(&budget, seed).render()),
        "fig5" => print!("{}", fig5::run(&budget, seed).render()),
        "fig6" => print!("{}", fig6::run(&budget, seed).render()),
        "fig7" => print!("{}", fig7::run(&budget, seed).render()),
        "fig8" => print!("{}", fig8::run(&budget, seed).render()),
        "fig9" => print!("{}", fig9::run(&budget, seed).render()),
        "fig10" => print!("{}", fig10::run(&budget, seed).render()),
        "table3" => print!("{}", table3::run(&budget, seed).render()),
        "table4" => print!("{}", table4::run(&budget, seed).render()),
        "pareto" => print!("{}", pareto::run(&budget, seed).render()),
        "table1" => print!("{}", table1::run(&budget, seed).render()),
        "table2" => print!("{}", table2::run(&budget, seed).render()),
        "all" => {
            print!("{}\n\n", table1::run(&budget, seed).render());
            print!("{}\n\n", table2::run(&budget, seed).render());
            print!("{}\n\n", fig4::run(&budget, seed).render());
            print!("{}\n\n", fig5::run(&budget, seed).render());
            print!("{}\n\n", fig6::run(&budget, seed).render());
            print!("{}\n\n", fig7::run(&budget, seed).render());
            print!("{}\n\n", fig8::run(&budget, seed).render());
            print!("{}\n\n", fig9::run(&budget, seed).render());
            print!("{}\n\n", fig10::run(&budget, seed).render());
            print!("{}\n\n", table3::run(&budget, seed).render());
            println!("{}", table4::run(&budget, seed).render());
        }
        _ => usage(),
    }
    eprintln!(
        "\n[experiments] {target} finished in {:.1}s",
        t0.elapsed().as_secs_f64()
    );
}
