//! # naas-bench — experiment harness for every figure and table
//!
//! One runner per artifact of the paper's evaluation section
//! (see DESIGN.md §7 for the experiment index):
//!
//! | module | artifact |
//! |---|---|
//! | [`experiments::fig4`] | Fig. 4 — EDP vs. iteration, NAAS vs. random |
//! | [`experiments::fig5`] | Fig. 5 — multi-network speedup/energy |
//! | [`experiments::fig6`] | Fig. 6 — single-network speedup/energy |
//! | [`experiments::fig7`] | Fig. 7 — searched architecture showcases |
//! | [`experiments::fig8`] | Fig. 8 — sizing-only ablation |
//! | [`experiments::fig9`] | Fig. 9 — encoding ablation |
//! | [`experiments::fig10`] | Fig. 10 — accuracy vs. EDP with NAS |
//! | [`experiments::table3`] | Table III — NASAIC comparison |
//! | [`experiments::table4`] | Table IV — search cost |
//!
//! Each runner is a plain function returning a serializable result with a
//! `render()` table, so the `experiments` binary, the Criterion benches
//! and the integration tests all share one code path. Budgets come from
//! [`Budget`] presets (`smoke` for CI, `quick` for a laptop run, `paper`
//! for the full population/iteration counts of the paper).

pub mod budget;
pub mod experiments;
pub mod table;

pub use budget::{Budget, Preset};
