//! Minimal fixed-width table rendering for experiment output.

/// Renders rows as a fixed-width ASCII table with a header rule.
///
/// ```
/// use naas_bench::table::render;
/// let t = render(
///     &["net", "speedup"],
///     &[vec!["vgg16".into(), "2.6x".into()]],
/// );
/// assert!(t.contains("vgg16"));
/// assert!(t.lines().count() >= 3);
/// ```
pub fn render(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{:<width$}", cell, width = widths[i]));
        }
        line.trim_end().to_string()
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats a ratio as `N.NNx`.
pub fn ratio(value: f64) -> String {
    format!("{value:.2}x")
}

/// Formats a number in engineering notation (`1.23e9`).
pub fn sci(value: f64) -> String {
    format!("{value:.2e}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn columns_align() {
        let t = render(
            &["a", "bbbb"],
            &[
                vec!["x".into(), "1".into()],
                vec!["longer".into(), "2".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        // Header and rule line up.
        assert!(lines[1].chars().all(|c| c == '-'));
    }

    #[test]
    fn formatters() {
        assert_eq!(ratio(2.6), "2.60x");
        assert_eq!(sci(1234.0), "1.23e3");
    }
}
