//! Ablation (DESIGN.md §8.2): diagonal-covariance CEM vs. the
//! full-covariance (rank-μ) update, on a per-layer mapping search.
//!
//! Measures wall-clock of both variants; the quality comparison is
//! printed once at the start (full covariance helps when hardware and
//! mapping knobs correlate, at O(d²) sampling cost).

use criterion::{criterion_group, criterion_main, Criterion};
use naas::prelude::*;
use naas::{search_layer_mapping, MappingSearchConfig};
use naas_opt::EsConfig;

fn cfg(full: bool, seed: u64) -> MappingSearchConfig {
    MappingSearchConfig {
        population: 12,
        iterations: 4,
        es: EsConfig {
            full_covariance: full,
            ..EsConfig::default()
        },
        seed,
        ..MappingSearchConfig::default()
    }
}

fn bench(c: &mut Criterion) {
    let model = CostModel::new();
    let accel = baselines::eyeriss();
    let layer = models::mobilenet_v2(224).layers()[7].clone();

    // One-shot quality report.
    let diag = search_layer_mapping(&model, &layer, &accel, &cfg(false, 1)).expect("maps");
    let full = search_layer_mapping(&model, &layer, &accel, &cfg(true, 1)).expect("maps");
    println!(
        "[ablation_covariance] EDP diag {:.3e} vs full {:.3e} ({:+.1}%)",
        diag.cost.edp(),
        full.cost.edp(),
        (full.cost.edp() / diag.cost.edp() - 1.0) * 100.0
    );

    let mut group = c.benchmark_group("es_covariance");
    group.sample_size(20);
    for (name, full) in [("diagonal", false), ("full_rank_mu", true)] {
        group.bench_function(name, |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                std::hint::black_box(search_layer_mapping(
                    &model,
                    &layer,
                    &accel,
                    &cfg(full, seed),
                ))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
