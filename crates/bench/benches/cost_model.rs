//! Criterion micro-benchmarks of the cost-model hot path: single-layer
//! evaluation and whole-network evaluation with heuristic mappings.
//!
//! The analytical model's throughput is what makes NAAS's < 0.25 GPU-day
//! search cost possible (Table IV): every population member costs
//! thousands of these calls.

use criterion::{criterion_group, criterion_main, Criterion};
use naas_cost::CostModel;
use naas_ir::models;
use naas_mapping::Mapping;

fn bench(c: &mut Criterion) {
    let model = CostModel::new();
    let mut group = c.benchmark_group("cost_model");

    // Single-layer evaluation on each baseline design class.
    let layer = models::resnet50(224).layers()[5].clone();
    for accel in naas_accel::baselines::all() {
        let mapping = Mapping::balanced(&layer, &accel);
        group.bench_function(format!("layer_eval/{}", accel.name()), |b| {
            b.iter(|| {
                std::hint::black_box(
                    model
                        .evaluate(&layer, &accel, &mapping)
                        .expect("balanced mapping valid"),
                )
            });
        });
    }

    // Whole-network evaluation (heuristic mappings).
    for net in [models::mobilenet_v2(224), models::resnet50(224)] {
        let accel = naas_accel::baselines::eyeriss();
        let mappings: Vec<Mapping> = net.iter().map(|l| Mapping::balanced(l, &accel)).collect();
        group.bench_function(format!("network_eval/{}", net.name()), |b| {
            b.iter(|| {
                std::hint::black_box(
                    model
                        .evaluate_network(&net, &accel, &mappings)
                        .expect("balanced mappings valid"),
                )
            });
        });
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
