//! Ablation (DESIGN.md §8.3): inner-loop (mapping search) budget vs. EDP
//! quality — how many samples per layer does the co-search actually need?
//!
//! Prints the quality curve once, then benches each budget's wall-clock.

use criterion::{criterion_group, criterion_main, Criterion};
use naas::mapping_search::network_mapping_search;
use naas::prelude::*;
use naas::MappingSearchConfig;

fn cfg(population: usize, iterations: usize, seed: u64) -> MappingSearchConfig {
    MappingSearchConfig {
        population,
        iterations,
        seed,
        ..MappingSearchConfig::default()
    }
}

fn bench(c: &mut Criterion) {
    let model = CostModel::new();
    let accel = baselines::eyeriss();
    let net = models::squeezenet(224);

    println!("[ablation_mapping_budget] EDP vs budget (SqueezeNet @ Eyeriss):");
    for (pop, iters) in [(4, 2), (8, 4), (16, 6), (32, 10)] {
        let cost = network_mapping_search(&model, &net, &accel, &cfg(pop, iters, 3)).expect("maps");
        println!(
            "  pop {pop:>2} x iters {iters:>2} ({:>3} samples/layer): EDP {:.4e}",
            pop * iters,
            cost.edp()
        );
    }

    let mut group = c.benchmark_group("mapping_budget");
    group.sample_size(10);
    for (pop, iters) in [(4usize, 2usize), (16, 6), (32, 10)] {
        group.bench_function(format!("pop{pop}_it{iters}"), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                std::hint::black_box(network_mapping_search(
                    &model,
                    &net,
                    &accel,
                    &cfg(pop, iters, seed),
                ))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
