//! Engine scaling baseline: population evaluation throughput at
//! 1/2/4/8 worker threads, and cold vs. warm shared cache.
//!
//! This is the perf baseline future PRs (sharding, batch services)
//! measure against: the same 12-candidate population evaluated through
//! `naas::evaluate_candidate` on the engine's work-stealing pool.
//! Thread counts above the machine's core count simply saturate.

use criterion::{criterion_group, criterion_main, Criterion};
use naas::accel_search::evaluate_candidate;
use naas::prelude::*;
use naas::RewardKind;
use naas_engine::parallel_map;
use naas_opt::{EncodingScheme, HardwareEncoder, Optimizer, RandomSearch};

/// A deterministic population of decodable designs within the Eyeriss
/// envelope.
fn population(envelope: &ResourceConstraint, count: usize) -> Vec<Accelerator> {
    let encoder = HardwareEncoder::new(envelope.clone(), EncodingScheme::Importance);
    let mut sampler = RandomSearch::new(encoder.dim(), 7);
    let mut designs = Vec::with_capacity(count);
    while designs.len() < count {
        if let Some(accel) = encoder.decode(&sampler.ask()) {
            designs.push(accel);
        }
    }
    designs
}

fn bench(c: &mut Criterion) {
    let model = CostModel::new();
    let envelope = ResourceConstraint::from_design(&baselines::eyeriss());
    let net = models::cifar_resnet20();
    let nets = std::slice::from_ref(&net);
    let designs = population(&envelope, 12);
    let mapping_cfg = MappingSearchConfig::quick(3);

    let mut group = c.benchmark_group("engine_scaling");
    group.sample_size(10);

    for threads in [1usize, 2, 4, 8] {
        group.bench_function(format!("population_eval/cold/{threads}t"), |b| {
            b.iter(|| {
                // Fresh engine per iteration: every mapping search runs.
                let engine = CoSearchEngine::new(threads);
                let results = parallel_map(engine.threads(), &designs, |_idx, accel| {
                    evaluate_candidate(
                        &engine,
                        &model,
                        accel,
                        nets,
                        &mapping_cfg,
                        RewardKind::Geomean,
                    )
                });
                std::hint::black_box(results)
            });
        });
    }

    for threads in [1usize, 8] {
        // Warm path: the engine persists across iterations, so after the
        // first pass every lookup is a cache hit.
        let engine = CoSearchEngine::new(threads);
        group.bench_function(format!("population_eval/warm/{threads}t"), |b| {
            b.iter(|| {
                let results = parallel_map(engine.threads(), &designs, |_idx, accel| {
                    evaluate_candidate(
                        &engine,
                        &model,
                        accel,
                        nets,
                        &mapping_cfg,
                        RewardKind::Geomean,
                    )
                });
                std::hint::black_box(results)
            });
        });
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
