//! Throughput of the inner-loop hot path: cold-cache layer-mapping
//! search (evolution over the mapping encoding) and raw population
//! evaluation through the cost model.
//!
//! This is the loop that bounds the whole co-search — every outer-loop
//! candidate costs `layers × population × iterations` of these calls —
//! so this bench is the canary for regressions in the opt → mapping →
//! cost pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use naas::MappingSearchConfig;
use naas_cost::CostModel;
use naas_mapping::Mapping;
use naas_opt::{CemEs, EncodingScheme, EsConfig, MappingEncoder, Optimizer, RandomSearch};

fn bench(c: &mut Criterion) {
    let model = CostModel::new();
    let layer = naas_ir::ConvSpec::conv2d("c", 64, 128, (28, 28), (3, 3), 1, 1).unwrap();
    let mut group = c.benchmark_group("mapping_throughput");

    // Full cold-cache per-layer search at the default budget (the unit of
    // work the outer loop pays per (design, layer-shape) cache miss).
    for accel in [
        naas_accel::baselines::eyeriss(),
        naas_accel::baselines::nvdla_256(),
    ] {
        let cfg = MappingSearchConfig {
            seed: 7,
            ..MappingSearchConfig::default()
        };
        group.bench_function(format!("layer_search/{}", accel.name()), |b| {
            b.iter(|| {
                std::hint::black_box(
                    naas::search_layer_mapping(&model, &layer, &accel, &cfg).expect("maps"),
                )
            });
        });
    }

    // Raw population scoring: decode + evaluate 64 sampled mappings,
    // scalar API (one allocation set per call).
    let accel = naas_accel::baselines::eyeriss();
    let encoder = MappingEncoder::new(accel.connectivity().ndim(), EncodingScheme::Importance);
    let mut sampler = RandomSearch::new(encoder.dim(), 3);
    let thetas: Vec<Vec<f64>> = (0..64).map(|_| sampler.ask()).collect();
    group.bench_function("population_eval/scalar", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for theta in &thetas {
                let mapping = encoder.decode(theta, &layer, accel.connectivity());
                if let Ok(cost) = model.evaluate(&layer, &accel, &mapping) {
                    acc += cost.edp();
                }
            }
            std::hint::black_box(acc)
        });
    });

    // The same 64 candidates through the batched pipeline: recycled
    // mapping slots, one shared scratch, one evaluate_batch call.
    let mut mappings = vec![naas_mapping::Mapping::new(Vec::new(), naas_ir::DIMS); thetas.len()];
    let mut scratch = naas_cost::EvalScratch::new();
    let mut results = Vec::new();
    group.bench_function("population_eval/batched", |b| {
        b.iter(|| {
            for (theta, slot) in thetas.iter().zip(&mut mappings) {
                encoder.decode_into(theta, &layer, accel.connectivity(), slot);
            }
            model.evaluate_batch(&layer, &accel, &mappings, &mut scratch, &mut results);
            let acc: f64 = results
                .iter()
                .filter_map(|r| r.as_ref().ok().map(|c| c.edp()))
                .sum();
            std::hint::black_box(acc)
        });
    });

    // Component breakdown of one draw: propose, decode, evaluate.
    let mut es = CemEs::new(encoder.dim(), EsConfig::default(), 5);
    let mut theta_buf = Vec::new();
    group.bench_function("components/ask_into", |b| {
        b.iter(|| {
            es.ask_into(&mut theta_buf);
            std::hint::black_box(theta_buf.len())
        });
    });
    let theta = es.ask();
    let mut mapping_buf = naas_mapping::Mapping::new(Vec::new(), naas_ir::DIMS);
    group.bench_function("components/decode_into", |b| {
        b.iter(|| {
            encoder.decode_into(&theta, &layer, accel.connectivity(), &mut mapping_buf);
            std::hint::black_box(mapping_buf.levels().len())
        });
    });
    let valid = Mapping::balanced(&layer, &accel);
    let mut scratch = naas_cost::EvalScratch::new();
    group.bench_function("components/evaluate_with", |b| {
        b.iter(|| {
            std::hint::black_box(
                model
                    .evaluate_with(&mut scratch, &layer, &accel, &valid)
                    .ok(),
            )
        });
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
