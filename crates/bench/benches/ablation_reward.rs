//! Ablation (DESIGN.md §8.4): geomean reward (the paper's §III-B choice)
//! vs. worst-case reward across the benchmark set.
//!
//! Prints the per-network EDP profile of both rewards' winning designs
//! once, then benches the search wall-clock (identical work, the
//! aggregation is free — the bench documents that switching rewards is
//! cost-neutral).

use criterion::{criterion_group, criterion_main, Criterion};
use naas::prelude::*;
use naas::{search_accelerator_seeded, RewardKind};
use naas_bench::budget::{Budget, Preset};

fn run(kind: RewardKind, seed: u64) -> naas::AccelSearchResult {
    let model = CostModel::new();
    let baseline = baselines::eyeriss();
    let envelope = ResourceConstraint::from_design(&baseline);
    let nets = models::mobile_benchmarks();
    let budget = Budget::new(Preset::Smoke);
    let mut cfg = budget.accel_cfg(seed);
    cfg.reward = kind;
    search_accelerator_seeded(
        &model,
        &nets,
        &envelope,
        &cfg,
        std::slice::from_ref(&baseline),
    )
}

fn bench(c: &mut Criterion) {
    // One-shot quality report: worst-case reward should flatten the
    // per-network EDP spread relative to geomean.
    for kind in [RewardKind::Geomean, RewardKind::WorstCase] {
        let result = run(kind, 5);
        let edps: Vec<f64> = result.best.per_network.iter().map(|c| c.edp()).collect();
        let max = edps.iter().cloned().fold(0.0f64, f64::max);
        let min = edps.iter().cloned().fold(f64::INFINITY, f64::min);
        let formatted: Vec<String> = edps.iter().map(|e| format!("{e:.3e}")).collect();
        println!(
            "[ablation_reward] {kind:?}: per-net EDPs [{}], spread {:.2}x",
            formatted.join(", "),
            max / min
        );
    }

    let mut group = c.benchmark_group("reward_kind");
    group.sample_size(10);
    for (name, kind) in [
        ("geomean", RewardKind::Geomean),
        ("worst_case", RewardKind::WorstCase),
    ] {
        group.bench_function(name, |b| {
            let mut seed = 100u64;
            b.iter(|| {
                seed += 1;
                std::hint::black_box(run(kind, seed))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
