//! Criterion bench wrapping the Fig. 5 multi-network experiment at the smoke preset.
//!
//! The measured quantity is the full end-to-end search wall-clock — the
//! "search cost" axis of the paper (Table IV); correctness of the
//! regenerated numbers is asserted by the integration tests, not here.

use criterion::{criterion_group, criterion_main, Criterion};
use naas_bench::budget::{Budget, Preset};
use naas_bench::experiments::fig5;

fn bench(c: &mut Criterion) {
    let budget = Budget::new(Preset::Smoke);
    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    group.bench_function("five_scenarios", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            std::hint::black_box(fig5::run(&budget, seed))
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
