//! Throughput of the batch-evaluation service: the batched request path
//! (one `evaluate_batch` carrying a whole population) against the scalar
//! per-request path (the same population as one request per mapping).
//!
//! The batched path pays request framing, layer/design resolution and
//! scratch setup once per population instead of once per mapping, and
//! rides `CostModel::evaluate_batch` through the worker's recycled
//! `EvalPipeline` — this bench is the acceptance check that serving a
//! population batched is at least as fast as serving it one call at a
//! time.

use criterion::{criterion_group, criterion_main, Criterion};
use naas::service::{BatchEvalService, ServiceConfig};
use naas::MappingSearchConfig;
use naas_opt::{EncodingScheme, MappingEncoder, Optimizer, RandomSearch};

const POPULATION: usize = 64;

fn bench(c: &mut Criterion) {
    let layer = naas_ir::ConvSpec::conv2d("c", 64, 128, (28, 28), (3, 3), 1, 1).unwrap();
    let accel = naas_accel::baselines::eyeriss();
    let encoder = MappingEncoder::new(accel.connectivity().ndim(), EncodingScheme::Importance);
    let mut sampler = RandomSearch::new(encoder.dim(), 3);
    let mappings: Vec<naas_mapping::Mapping> = (0..POPULATION)
        .map(|_| encoder.decode(&sampler.ask(), &layer, accel.connectivity()))
        .collect();

    let layer_json = serde_json::to_string(&layer).unwrap();
    // One request per mapping (what a naive client sends) ...
    let scalar_requests: Vec<String> = mappings
        .iter()
        .map(|m| {
            format!(
                r#"{{"id":1,"cmd":"evaluate_batch","layer":{},"design":"Eyeriss","mappings":[{}]}}"#,
                layer_json,
                serde_json::to_string(m).unwrap()
            )
        })
        .collect();
    // ... versus the whole population in one batched request.
    let batched_request = format!(
        r#"{{"id":1,"cmd":"evaluate_batch","layer":{},"design":"Eyeriss","mappings":{}}}"#,
        layer_json,
        serde_json::to_string(&mappings).unwrap()
    );

    let service = BatchEvalService::new(ServiceConfig {
        threads: 1,
        mapping: MappingSearchConfig::quick(7),
        cache_file: None,
        cache_cap: 0,
        eval_delay_us: 0,
    })
    .expect("no cache file");

    let mut group = c.benchmark_group("service_throughput");
    group.bench_function(format!("population_{POPULATION}/scalar_requests"), |b| {
        b.iter(|| {
            for request in &scalar_requests {
                std::hint::black_box(service.respond(request));
            }
        });
    });
    group.bench_function(format!("population_{POPULATION}/batched_request"), |b| {
        b.iter(|| std::hint::black_box(service.respond(&batched_request)));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
