//! Workload statistics: arithmetic intensity and footprint profiles.
//!
//! These are the quantities that decide *which* dataflow wins for a given
//! layer (the correlation table of the paper's Table II): weight-heavy
//! layers reward `C`/`K` parallelism and weight-stationary orders,
//! activation-heavy layers reward spatial parallelism, low-intensity
//! layers are bandwidth-bound no matter the mapping.

use crate::layer::ConvSpec;
use crate::network::Network;
use serde::{Deserialize, Serialize};

/// Per-layer workload profile.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayerStats {
    /// Multiply-accumulates.
    pub macs: u64,
    /// Weight elements.
    pub weights: u64,
    /// Input activation elements.
    pub inputs: u64,
    /// Output activation elements.
    pub outputs: u64,
    /// MACs per touched element (weights + inputs + outputs): the upper
    /// bound on arithmetic intensity any mapping can achieve.
    pub arithmetic_intensity: f64,
    /// Weights / (weights + inputs + outputs): 1.0 = fully weight-bound.
    pub weight_fraction: f64,
}

impl LayerStats {
    /// Profiles one layer.
    pub fn of(layer: &ConvSpec) -> Self {
        let macs = layer.macs();
        let weights = layer.weight_elems();
        let inputs = layer.input_elems();
        let outputs = layer.output_elems();
        let touched = (weights + inputs + outputs) as f64;
        LayerStats {
            macs,
            weights,
            inputs,
            outputs,
            arithmetic_intensity: macs as f64 / touched,
            weight_fraction: weights as f64 / touched,
        }
    }
}

/// Whole-network profile: totals plus the distribution extremes that
/// drive mapping decisions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkStats {
    /// Total MACs.
    pub total_macs: u64,
    /// Total weights.
    pub total_weights: u64,
    /// Total activations (inputs + outputs over all layers).
    pub total_activations: u64,
    /// MAC-weighted mean arithmetic intensity.
    pub mean_intensity: f64,
    /// Lowest per-layer intensity (the bandwidth-bound tail).
    pub min_intensity: f64,
    /// Highest per-layer intensity (the compute-bound head).
    pub max_intensity: f64,
}

impl NetworkStats {
    /// Profiles a network.
    ///
    /// # Panics
    ///
    /// Panics on an empty network.
    pub fn of(network: &Network) -> Self {
        assert!(!network.is_empty(), "cannot profile an empty network");
        let mut total_macs = 0u64;
        let mut total_weights = 0u64;
        let mut total_acts = 0u64;
        let mut weighted = 0.0;
        let mut min_i = f64::INFINITY;
        let mut max_i: f64 = 0.0;
        for layer in network {
            let s = LayerStats::of(layer);
            total_macs += s.macs;
            total_weights += s.weights;
            total_acts += s.inputs + s.outputs;
            weighted += s.arithmetic_intensity * s.macs as f64;
            min_i = min_i.min(s.arithmetic_intensity);
            max_i = max_i.max(s.arithmetic_intensity);
        }
        NetworkStats {
            total_macs,
            total_weights,
            total_activations: total_acts,
            mean_intensity: weighted / total_macs as f64,
            min_intensity: min_i,
            max_intensity: max_i,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;

    #[test]
    fn conv_intensity_exceeds_fc() {
        let conv = ConvSpec::conv2d("c", 64, 64, (56, 56), (3, 3), 1, 1).unwrap();
        let fc = ConvSpec::linear("fc", 4096, 4096).unwrap();
        let c = LayerStats::of(&conv);
        let f = LayerStats::of(&fc);
        assert!(c.arithmetic_intensity > 10.0 * f.arithmetic_intensity);
        // FC at batch 1 touches each weight exactly once.
        assert!(f.arithmetic_intensity < 1.01);
    }

    #[test]
    fn depthwise_has_low_intensity() {
        let dw = ConvSpec::depthwise("dw", 128, (56, 56), (3, 3), 1, 1).unwrap();
        let std = ConvSpec::conv2d("c", 128, 128, (56, 56), (3, 3), 1, 1).unwrap();
        assert!(
            LayerStats::of(&dw).arithmetic_intensity
                < LayerStats::of(&std).arithmetic_intensity / 10.0
        );
    }

    #[test]
    fn vgg_is_weightier_than_mobilenet_per_mac() {
        let vgg = NetworkStats::of(&models::vgg16(224));
        let mnv2 = NetworkStats::of(&models::mobilenet_v2(224));
        // VGG's mean intensity is far higher: big dense convs.
        assert!(vgg.mean_intensity > 2.0 * mnv2.mean_intensity);
        assert!(vgg.min_intensity <= vgg.max_intensity);
    }

    #[test]
    fn network_totals_are_sums() {
        let net = models::cifar_resnet20();
        let s = NetworkStats::of(&net);
        assert_eq!(s.total_macs, net.total_macs());
        assert_eq!(s.total_weights, net.total_weights());
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_network_rejected() {
        let _ = NetworkStats::of(&Network::new("empty"));
    }
}
