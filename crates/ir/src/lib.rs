//! # naas-ir — convolution workload IR and CNN model zoo
//!
//! This crate defines the *neural network side* of the NAAS co-search:
//! the seven-dimensional convolution loop nest notation used throughout the
//! paper (batch `N`, output channels `K`, input channels `C`, output rows
//! `Y'`, output columns `X'`, kernel rows `R`, kernel columns `S`), layer
//! descriptors with full shape inference, whole-network containers, and
//! generators for the six benchmark CNNs evaluated in the paper (VGG16,
//! ResNet-50, UNet, MobileNetV2, SqueezeNet, MNasNet) plus the CIFAR-scale
//! networks used for the NASAIC comparison (Table III).
//!
//! The mapped loop dimensions are the six of [`Dim`]; batch is carried on
//! [`ConvSpec::batch`] and folded into the outermost temporal loop by the
//! cost model (all paper experiments use batch = 1).
//!
//! ```
//! use naas_ir::{models, Dim};
//!
//! let net = models::mobilenet_v2(224);
//! assert!(net.total_macs() > 100_000_000);
//! let first = &net.layers()[0];
//! assert_eq!(first.extent(Dim::K), 32);
//! ```

pub mod dims;
pub mod layer;
pub mod models;
pub mod network;
pub mod stats;

pub use dims::{Dim, DimVec, DIMS};
pub use layer::{ConvKind, ConvSpec, ShapeError};
pub use network::Network;
pub use stats::{LayerStats, NetworkStats};
