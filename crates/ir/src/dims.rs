//! The six mapped convolution loop dimensions and dense per-dimension maps.
//!
//! NAAS encodes both PE-array parallelism and loop orders as *orderings of
//! these six dimensions* (paper §II-A/II-B, Fig. 2-3). Batch `N` is not a
//! mapped dimension: the paper evaluates batch = 1 and folds any larger
//! batch into the outermost temporal loop.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A mapped convolution loop dimension.
///
/// `Y` and `X` denote the *output* feature-map rows/columns (the paper's
/// `Y'`/`X'`); the input feature-map extent is derived from the output
/// extent, stride and kernel size (the "halo").
///
/// ```
/// use naas_ir::Dim;
/// assert_eq!(Dim::K.index(), 0);
/// assert_eq!(Dim::from_index(5), Some(Dim::S));
/// assert_eq!(Dim::C.to_string(), "C");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum Dim {
    /// Output channels.
    K = 0,
    /// Input channels (reduction).
    C = 1,
    /// Output feature-map rows (`Y'`).
    Y = 2,
    /// Output feature-map columns (`X'`).
    X = 3,
    /// Kernel rows (reduction).
    R = 4,
    /// Kernel columns (reduction).
    S = 5,
}

/// All six mapped dimensions in canonical order `K, C, Y, X, R, S`.
pub const DIMS: [Dim; 6] = [Dim::K, Dim::C, Dim::Y, Dim::X, Dim::R, Dim::S];

impl Dim {
    /// Canonical index of this dimension (0..6), matching [`DIMS`] order.
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Inverse of [`Dim::index`]. Returns `None` for `i >= 6`.
    #[inline]
    pub const fn from_index(i: usize) -> Option<Dim> {
        match i {
            0 => Some(Dim::K),
            1 => Some(Dim::C),
            2 => Some(Dim::Y),
            3 => Some(Dim::X),
            4 => Some(Dim::R),
            5 => Some(Dim::S),
            _ => None,
        }
    }

    /// Whether this dimension is a *reduction* dimension: iterating it
    /// accumulates into the same output element (`C`, `R`, `S`).
    ///
    /// Spatially mapping a reduction dimension implies an inter-PE
    /// accumulate/forward connection; mapping a non-reduction dimension
    /// implies broadcast-style connections (paper §II-A0b).
    #[inline]
    pub const fn is_reduction(self) -> bool {
        matches!(self, Dim::C | Dim::R | Dim::S)
    }

    /// Short human-readable name; `Y`/`X` print as `Y'`/`X'` to match the
    /// paper's output-dimension notation.
    pub const fn paper_name(self) -> &'static str {
        match self {
            Dim::K => "K",
            Dim::C => "C",
            Dim::Y => "Y'",
            Dim::X => "X'",
            Dim::R => "R",
            Dim::S => "S",
        }
    }
}

impl fmt::Display for Dim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Dim::K => "K",
            Dim::C => "C",
            Dim::Y => "Y",
            Dim::X => "X",
            Dim::R => "R",
            Dim::S => "S",
        };
        f.write_str(s)
    }
}

/// A dense map from [`Dim`] to `T`, stored as a fixed `[T; 6]`.
///
/// This is the workhorse container for per-dimension extents, tile counts,
/// importance values and trip counts.
///
/// ```
/// use naas_ir::{Dim, DimVec};
/// let mut v = DimVec::splat(1u64);
/// v[Dim::K] = 64;
/// assert_eq!(v[Dim::K], 64);
/// assert_eq!(v.product(), 64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DimVec<T>(pub [T; 6]);

impl<T: Copy> DimVec<T> {
    /// Builds a map with the same value for every dimension.
    pub fn splat(value: T) -> Self {
        DimVec([value; 6])
    }

    /// Builds a map from a function of the dimension.
    pub fn from_fn(mut f: impl FnMut(Dim) -> T) -> Self {
        DimVec([
            f(Dim::K),
            f(Dim::C),
            f(Dim::Y),
            f(Dim::X),
            f(Dim::R),
            f(Dim::S),
        ])
    }

    /// Iterates `(dim, value)` pairs in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (Dim, T)> + '_ {
        DIMS.iter().map(move |&d| (d, self.0[d.index()]))
    }

    /// Element-wise map.
    pub fn map<U: Copy>(&self, mut f: impl FnMut(Dim, T) -> U) -> DimVec<U> {
        DimVec::from_fn(|d| f(d, self.0[d.index()]))
    }
}

impl DimVec<u64> {
    /// Product of all six entries. Useful for trip counts and tile volumes.
    pub fn product(&self) -> u64 {
        self.0.iter().product()
    }

    /// `true` if every entry is at least 1 (a well-formed extent/trip map).
    pub fn is_positive(&self) -> bool {
        self.0.iter().all(|&v| v >= 1)
    }
}

impl<T> std::ops::Index<Dim> for DimVec<T> {
    type Output = T;
    #[inline]
    fn index(&self, d: Dim) -> &T {
        &self.0[d.index()]
    }
}

impl<T> std::ops::IndexMut<Dim> for DimVec<T> {
    #[inline]
    fn index_mut(&mut self, d: Dim) -> &mut T {
        &mut self.0[d.index()]
    }
}

impl<T: Copy + Default> Default for DimVec<T> {
    fn default() -> Self {
        DimVec([T::default(); 6])
    }
}

/// Returns `true` if `order` is a permutation of all six dimensions.
///
/// ```
/// use naas_ir::{dims::is_permutation, DIMS};
/// assert!(is_permutation(&DIMS));
/// assert!(!is_permutation(&[DIMS[0]; 6]));
/// ```
pub fn is_permutation(order: &[Dim; 6]) -> bool {
    let mut seen = [false; 6];
    for d in order {
        if seen[d.index()] {
            return false;
        }
        seen[d.index()] = true;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trips() {
        for (i, &d) in DIMS.iter().enumerate() {
            assert_eq!(d.index(), i);
            assert_eq!(Dim::from_index(i), Some(d));
        }
        assert_eq!(Dim::from_index(6), None);
    }

    #[test]
    fn reduction_dims_are_c_r_s() {
        let reductions: Vec<Dim> = DIMS.iter().copied().filter(|d| d.is_reduction()).collect();
        assert_eq!(reductions, vec![Dim::C, Dim::R, Dim::S]);
    }

    #[test]
    fn paper_names_use_primes_for_outputs() {
        assert_eq!(Dim::Y.paper_name(), "Y'");
        assert_eq!(Dim::X.paper_name(), "X'");
        assert_eq!(Dim::K.paper_name(), "K");
    }

    #[test]
    fn dimvec_indexing_and_product() {
        let mut v = DimVec::splat(2u64);
        assert_eq!(v.product(), 64);
        v[Dim::R] = 1;
        v[Dim::S] = 1;
        assert_eq!(v.product(), 16);
        assert!(v.is_positive());
        v[Dim::C] = 0;
        assert!(!v.is_positive());
    }

    #[test]
    fn dimvec_from_fn_matches_canonical_order() {
        let v = DimVec::from_fn(|d| d.index() as u64);
        for (i, (_, value)) in v.iter().enumerate() {
            assert_eq!(value, i as u64);
        }
    }

    #[test]
    fn permutation_check() {
        assert!(is_permutation(&DIMS));
        let mut o = DIMS;
        o.swap(0, 5);
        assert!(is_permutation(&o));
        o[0] = o[1];
        assert!(!is_permutation(&o));
    }

    #[test]
    fn display_is_single_letter() {
        for d in DIMS {
            assert_eq!(d.to_string().len(), 1);
        }
    }
}
