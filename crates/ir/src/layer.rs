//! Convolution layer descriptors with full shape inference.
//!
//! Every benchmark network lowers to a flat list of [`ConvSpec`]s: standard
//! convolutions, grouped/depthwise convolutions, pointwise convolutions,
//! fully-connected layers (1×1 spatial) and transposed convolutions (UNet
//! up-convolutions, modeled as stride-1 convolutions over a zero-upsampled
//! input — the standard lowering used by analytical cost models).

use crate::dims::{Dim, DimVec};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The flavour of a convolution layer.
///
/// The kind does not change the shape arithmetic (which is fully determined
/// by the numeric fields of [`ConvSpec`]); it is carried for reporting and
/// so cost models can special-case reuse behaviour (e.g. grouped
/// convolutions forfeit input reuse across output channels).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ConvKind {
    /// Dense convolution (`groups == 1`).
    Standard,
    /// Depthwise convolution (`groups == in_channels`).
    Depthwise,
    /// 1×1 convolution.
    Pointwise,
    /// Fully-connected layer expressed as a 1×1 convolution over a 1×1 map.
    FullyConnected,
    /// Transposed convolution lowered to a stride-1 convolution over a
    /// zero-upsampled input.
    Transposed,
}

impl fmt::Display for ConvKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ConvKind::Standard => "conv",
            ConvKind::Depthwise => "dwconv",
            ConvKind::Pointwise => "pwconv",
            ConvKind::FullyConnected => "fc",
            ConvKind::Transposed => "tconv",
        };
        f.write_str(s)
    }
}

/// Error returned when a layer description is not shape-consistent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShapeError {
    /// A structural extent (channels, spatial size, kernel, stride) was zero.
    ZeroExtent(&'static str),
    /// `in_channels` or `out_channels` is not divisible by `groups`.
    GroupMismatch {
        /// Input channels of the offending layer.
        in_channels: u64,
        /// Output channels of the offending layer.
        out_channels: u64,
        /// Group count of the offending layer.
        groups: u64,
    },
    /// The (padded) input is smaller than the kernel.
    KernelTooLarge {
        /// Padded input extent.
        padded: u64,
        /// Kernel extent.
        kernel: u64,
    },
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShapeError::ZeroExtent(what) => write!(f, "layer field `{what}` must be nonzero"),
            ShapeError::GroupMismatch {
                in_channels,
                out_channels,
                groups,
            } => write!(
                f,
                "channels ({in_channels} in, {out_channels} out) not divisible by groups {groups}"
            ),
            ShapeError::KernelTooLarge { padded, kernel } => write!(
                f,
                "kernel extent {kernel} exceeds padded input extent {padded}"
            ),
        }
    }
}

impl std::error::Error for ShapeError {}

/// A single convolution workload: the seven-dimensional loop nest
/// `N × K × C/g × Y' × X' × R × S` with stride, padding and groups.
///
/// ```
/// use naas_ir::{ConvSpec, Dim};
/// let l = ConvSpec::conv2d("conv1", 3, 64, (224, 224), (7, 7), 2, 3)?;
/// assert_eq!(l.out_y(), 112);
/// assert_eq!(l.extent(Dim::K), 64);
/// assert_eq!(l.macs(), 64 * 3 * 112 * 112 * 7 * 7);
/// # Ok::<(), naas_ir::ShapeError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConvSpec {
    name: String,
    kind: ConvKind,
    batch: u64,
    in_channels: u64,
    out_channels: u64,
    in_y: u64,
    in_x: u64,
    kernel_r: u64,
    kernel_s: u64,
    stride: u64,
    padding: u64,
    groups: u64,
}

impl ConvSpec {
    /// Creates a layer with every field explicit.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if any extent is zero, channels are not
    /// divisible by `groups`, or the kernel does not fit the padded input.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        kind: ConvKind,
        batch: u64,
        in_channels: u64,
        out_channels: u64,
        input_hw: (u64, u64),
        kernel: (u64, u64),
        stride: u64,
        padding: u64,
        groups: u64,
    ) -> Result<Self, ShapeError> {
        let spec = ConvSpec {
            name: name.into(),
            kind,
            batch,
            in_channels,
            out_channels,
            in_y: input_hw.0,
            in_x: input_hw.1,
            kernel_r: kernel.0,
            kernel_s: kernel.1,
            stride,
            padding,
            groups,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Standard dense convolution (`groups = 1`, batch = 1).
    pub fn conv2d(
        name: impl Into<String>,
        in_channels: u64,
        out_channels: u64,
        input_hw: (u64, u64),
        kernel: (u64, u64),
        stride: u64,
        padding: u64,
    ) -> Result<Self, ShapeError> {
        let kind = if kernel == (1, 1) {
            ConvKind::Pointwise
        } else {
            ConvKind::Standard
        };
        ConvSpec::new(
            name,
            kind,
            1,
            in_channels,
            out_channels,
            input_hw,
            kernel,
            stride,
            padding,
            1,
        )
    }

    /// Depthwise convolution: one filter per channel (`groups = channels`).
    pub fn depthwise(
        name: impl Into<String>,
        channels: u64,
        input_hw: (u64, u64),
        kernel: (u64, u64),
        stride: u64,
        padding: u64,
    ) -> Result<Self, ShapeError> {
        ConvSpec::new(
            name,
            ConvKind::Depthwise,
            1,
            channels,
            channels,
            input_hw,
            kernel,
            stride,
            padding,
            channels,
        )
    }

    /// Fully-connected layer as a 1×1 convolution over a 1×1 feature map.
    pub fn linear(
        name: impl Into<String>,
        in_features: u64,
        out_features: u64,
    ) -> Result<Self, ShapeError> {
        ConvSpec::new(
            name,
            ConvKind::FullyConnected,
            1,
            in_features,
            out_features,
            (1, 1),
            (1, 1),
            1,
            0,
            1,
        )
    }

    /// Transposed convolution (up-convolution) producing a `scale×` larger
    /// map, lowered to a stride-1 convolution over a zero-upsampled input.
    ///
    /// The MAC count of this lowering upper-bounds the true transposed
    /// convolution (zeros are not skipped), which matches how MAESTRO-class
    /// models treat up-convolutions.
    pub fn transposed(
        name: impl Into<String>,
        in_channels: u64,
        out_channels: u64,
        input_hw: (u64, u64),
        kernel: (u64, u64),
        scale: u64,
    ) -> Result<Self, ShapeError> {
        if scale == 0 {
            return Err(ShapeError::ZeroExtent("scale"));
        }
        let up = (input_hw.0 * scale, input_hw.1 * scale);
        let pad = kernel.0 / 2;
        ConvSpec::new(
            name,
            ConvKind::Transposed,
            1,
            in_channels,
            out_channels,
            up,
            kernel,
            1,
            pad,
            1,
        )
    }

    fn validate(&self) -> Result<(), ShapeError> {
        for (v, what) in [
            (self.batch, "batch"),
            (self.in_channels, "in_channels"),
            (self.out_channels, "out_channels"),
            (self.in_y, "in_y"),
            (self.in_x, "in_x"),
            (self.kernel_r, "kernel_r"),
            (self.kernel_s, "kernel_s"),
            (self.stride, "stride"),
            (self.groups, "groups"),
        ] {
            if v == 0 {
                return Err(ShapeError::ZeroExtent(what));
            }
        }
        if !self.in_channels.is_multiple_of(self.groups)
            || !self.out_channels.is_multiple_of(self.groups)
        {
            return Err(ShapeError::GroupMismatch {
                in_channels: self.in_channels,
                out_channels: self.out_channels,
                groups: self.groups,
            });
        }
        if self.in_y + 2 * self.padding < self.kernel_r {
            return Err(ShapeError::KernelTooLarge {
                padded: self.in_y + 2 * self.padding,
                kernel: self.kernel_r,
            });
        }
        if self.in_x + 2 * self.padding < self.kernel_s {
            return Err(ShapeError::KernelTooLarge {
                padded: self.in_x + 2 * self.padding,
                kernel: self.kernel_s,
            });
        }
        Ok(())
    }

    /// Layer name (unique within a network by convention).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Layer kind.
    pub fn kind(&self) -> ConvKind {
        self.kind
    }

    /// Batch size `N` (1 in all paper experiments).
    pub fn batch(&self) -> u64 {
        self.batch
    }

    /// Total input channels (across all groups).
    pub fn in_channels(&self) -> u64 {
        self.in_channels
    }

    /// Total output channels (across all groups).
    pub fn out_channels(&self) -> u64 {
        self.out_channels
    }

    /// Group count (1 = dense, `in_channels` = depthwise).
    pub fn groups(&self) -> u64 {
        self.groups
    }

    /// Input feature-map rows.
    pub fn in_y(&self) -> u64 {
        self.in_y
    }

    /// Input feature-map columns.
    pub fn in_x(&self) -> u64 {
        self.in_x
    }

    /// Kernel rows `R`.
    pub fn kernel_r(&self) -> u64 {
        self.kernel_r
    }

    /// Kernel columns `S`.
    pub fn kernel_s(&self) -> u64 {
        self.kernel_s
    }

    /// Convolution stride (same in both spatial dims).
    pub fn stride(&self) -> u64 {
        self.stride
    }

    /// Zero padding (same on all sides).
    pub fn padding(&self) -> u64 {
        self.padding
    }

    /// Output rows `Y'` = ⌊(in_y + 2·pad − R)/stride⌋ + 1.
    pub fn out_y(&self) -> u64 {
        (self.in_y + 2 * self.padding - self.kernel_r) / self.stride + 1
    }

    /// Output columns `X'` = ⌊(in_x + 2·pad − S)/stride⌋ + 1.
    pub fn out_x(&self) -> u64 {
        (self.in_x + 2 * self.padding - self.kernel_s) / self.stride + 1
    }

    /// Loop extent of a mapped dimension.
    ///
    /// `C` returns the *per-group* reduction depth (`in_channels / groups`),
    /// which is the extent the loop nest actually iterates; the group count
    /// is exposed separately through [`ConvSpec::groups`].
    pub fn extent(&self, dim: Dim) -> u64 {
        match dim {
            Dim::K => self.out_channels,
            Dim::C => self.in_channels / self.groups,
            Dim::Y => self.out_y(),
            Dim::X => self.out_x(),
            Dim::R => self.kernel_r,
            Dim::S => self.kernel_s,
        }
    }

    /// All six loop extents as a [`DimVec`].
    pub fn extents(&self) -> DimVec<u64> {
        DimVec::from_fn(|d| self.extent(d))
    }

    /// Total multiply-accumulate operations:
    /// `N · K · (C/g) · Y' · X' · R · S`.
    pub fn macs(&self) -> u64 {
        self.batch * self.extents().product()
    }

    /// Number of weight elements: `K · (C/g) · R · S`.
    pub fn weight_elems(&self) -> u64 {
        self.out_channels * (self.in_channels / self.groups) * self.kernel_r * self.kernel_s
    }

    /// Number of input activation elements: `N · C · Yin · Xin`.
    pub fn input_elems(&self) -> u64 {
        self.batch * self.in_channels * self.in_y * self.in_x
    }

    /// Number of output activation elements: `N · K · Y' · X'`.
    pub fn output_elems(&self) -> u64 {
        self.batch * self.out_channels * self.out_y() * self.out_x()
    }

    /// Input extent (halo) required to produce `tile` consecutive outputs
    /// along one spatial dimension: `(tile − 1)·stride + kernel`.
    ///
    /// ```
    /// use naas_ir::ConvSpec;
    /// let l = ConvSpec::conv2d("c", 16, 16, (32, 32), (3, 3), 1, 1)?;
    /// assert_eq!(l.input_halo(4, 3), 6); // 4 outputs, 3-wide kernel
    /// # Ok::<(), naas_ir::ShapeError>(())
    /// ```
    pub fn input_halo(&self, tile: u64, kernel: u64) -> u64 {
        if tile == 0 {
            return 0;
        }
        (tile - 1) * self.stride + kernel
    }

    /// `true` if this layer's inputs are *not* reused across output
    /// channels (grouped/depthwise convolutions): each `K` slice consumes a
    /// disjoint set of input channels, so a spatial or temporal `K` loop
    /// does not amortize input fetches.
    pub fn input_depends_on_k(&self) -> bool {
        self.groups > 1
    }
}

impl fmt::Display for ConvSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {}x{}x{} -> {}x{}x{} k{}x{} s{} g{}",
            self.name,
            self.kind,
            self.in_channels,
            self.in_y,
            self.in_x,
            self.out_channels,
            self.out_y(),
            self.out_x(),
            self.kernel_r,
            self.kernel_s,
            self.stride,
            self.groups
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv2d_shape_inference() {
        let l = ConvSpec::conv2d("c", 3, 64, (224, 224), (7, 7), 2, 3).unwrap();
        assert_eq!(l.out_y(), 112);
        assert_eq!(l.out_x(), 112);
        assert_eq!(l.extent(Dim::C), 3);
        assert_eq!(l.weight_elems(), 64 * 3 * 49);
    }

    #[test]
    fn same_padding_3x3_preserves_size() {
        let l = ConvSpec::conv2d("c", 16, 16, (56, 56), (3, 3), 1, 1).unwrap();
        assert_eq!(l.out_y(), 56);
        assert_eq!(l.out_x(), 56);
    }

    #[test]
    fn depthwise_extents_and_macs() {
        let l = ConvSpec::depthwise("dw", 32, (112, 112), (3, 3), 1, 1).unwrap();
        assert_eq!(l.extent(Dim::C), 1);
        assert_eq!(l.extent(Dim::K), 32);
        assert_eq!(l.macs(), 32 * 112 * 112 * 9);
        assert!(l.input_depends_on_k());
        assert_eq!(l.weight_elems(), 32 * 9);
    }

    #[test]
    fn linear_is_1x1_over_1x1() {
        let l = ConvSpec::linear("fc", 2048, 1000).unwrap();
        assert_eq!(l.macs(), 2048 * 1000);
        assert_eq!(l.out_y(), 1);
        assert_eq!(l.kind(), ConvKind::FullyConnected);
    }

    #[test]
    fn transposed_doubles_spatial() {
        let l = ConvSpec::transposed("up", 128, 64, (28, 28), (3, 3), 2).unwrap();
        assert_eq!(l.out_y(), 56);
        assert_eq!(l.out_x(), 56);
        assert_eq!(l.kind(), ConvKind::Transposed);
    }

    #[test]
    fn zero_extent_rejected() {
        let err = ConvSpec::conv2d("bad", 0, 64, (32, 32), (3, 3), 1, 1).unwrap_err();
        assert_eq!(err, ShapeError::ZeroExtent("in_channels"));
    }

    #[test]
    fn group_mismatch_rejected() {
        let err = ConvSpec::new(
            "bad",
            ConvKind::Standard,
            1,
            30,
            64,
            (32, 32),
            (3, 3),
            1,
            1,
            4,
        )
        .unwrap_err();
        assert!(matches!(err, ShapeError::GroupMismatch { .. }));
    }

    #[test]
    fn kernel_too_large_rejected() {
        let err = ConvSpec::conv2d("bad", 3, 8, (2, 2), (5, 5), 1, 0).unwrap_err();
        assert!(matches!(err, ShapeError::KernelTooLarge { .. }));
    }

    #[test]
    fn halo_arithmetic() {
        let l = ConvSpec::conv2d("c", 8, 8, (32, 32), (5, 5), 2, 2).unwrap();
        // t outputs at stride 2 with 5-wide kernel need (t-1)*2 + 5 inputs.
        assert_eq!(l.input_halo(1, 5), 5);
        assert_eq!(l.input_halo(3, 5), 9);
        assert_eq!(l.input_halo(0, 5), 0);
    }

    #[test]
    fn macs_match_manual_formula() {
        let l = ConvSpec::conv2d("c", 64, 128, (56, 56), (3, 3), 1, 1).unwrap();
        assert_eq!(l.macs(), 128 * 64 * 56 * 56 * 9);
    }

    #[test]
    fn display_contains_name_and_shapes() {
        let l = ConvSpec::conv2d("conv3_1", 128, 256, (28, 28), (3, 3), 1, 1).unwrap();
        let s = l.to_string();
        assert!(s.contains("conv3_1"));
        assert!(s.contains("256"));
    }

    #[test]
    fn error_display_is_lowercase_without_period() {
        let e = ShapeError::ZeroExtent("stride").to_string();
        assert!(e.starts_with("layer"));
        assert!(!e.ends_with('.'));
    }
}
