//! SqueezeNet v1.1 generator (fire modules).

use crate::layer::ConvSpec;
use crate::network::Network;

/// Fire module settings: (squeeze 1×1, expand 1×1, expand 3×3).
const FIRES: [(u64, u64, u64); 8] = [
    (16, 64, 64),
    (16, 64, 64),
    (32, 128, 128),
    (32, 128, 128),
    (48, 192, 192),
    (48, 192, 192),
    (64, 256, 256),
    (64, 256, 256),
];

/// Builds SqueezeNet v1.1 at the given input resolution:
/// ≈0.36 GMACs and ≈1.2 M parameters at 224×224.
///
/// Each fire module is lowered to three convolutions: squeeze 1×1, expand
/// 1×1 and expand 3×3 (the two expand branches are concatenated, so the
/// following squeeze consumes `e1 + e3` channels).
///
/// # Panics
///
/// Panics if `resolution` is not divisible by 16.
pub fn squeezenet(resolution: u64) -> Network {
    assert!(
        resolution >= 16 && resolution.is_multiple_of(16),
        "squeezenet resolution must be a positive multiple of 16"
    );
    let mut net = Network::new(format!("squeezenet_{resolution}"));
    net.push(
        ConvSpec::conv2d("conv1", 3, 64, (resolution, resolution), (3, 3), 2, 1)
            .expect("squeezenet stem valid"),
    );
    let mut hw = resolution / 2;
    hw /= 2; // maxpool1
    let mut cin: u64 = 64;
    for (i, &(s1, e1, e3)) in FIRES.iter().enumerate() {
        // Max-pools precede fire3 (index 2) and fire5 (index 4) in v1.1.
        if i == 2 || i == 4 {
            hw /= 2;
        }
        let n = i + 2; // fire2..fire9
        net.push(
            ConvSpec::conv2d(format!("fire{n}_squeeze"), cin, s1, (hw, hw), (1, 1), 1, 0)
                .expect("squeeze valid"),
        );
        net.push(
            ConvSpec::conv2d(format!("fire{n}_expand1"), s1, e1, (hw, hw), (1, 1), 1, 0)
                .expect("expand1 valid"),
        );
        net.push(
            ConvSpec::conv2d(format!("fire{n}_expand3"), s1, e3, (hw, hw), (3, 3), 1, 1)
                .expect("expand3 valid"),
        );
        cin = e1 + e3;
    }
    net.push(ConvSpec::conv2d("conv10", cin, 1000, (hw, hw), (1, 1), 1, 0).expect("conv10 valid"));
    net
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn squeezenet_224_matches_reference_macs() {
        let net = squeezenet(224);
        let mmacs = net.total_macs() as f64 / 1e6;
        // v1.1 is commonly cited at ≈0.35 GFLOPs-MAC.
        assert!((mmacs - 360.0).abs() < 60.0, "got {mmacs} MMACs");
        let mparams = net.total_weights() as f64 / 1e6;
        assert!((mparams - 1.23).abs() < 0.1, "got {mparams} M params");
    }

    #[test]
    fn fire_module_count() {
        let net = squeezenet(224);
        let squeezes = net
            .iter()
            .filter(|l| l.name().ends_with("_squeeze"))
            .count();
        assert_eq!(squeezes, 8);
        assert_eq!(net.len(), 8 * 3 + 2);
    }

    #[test]
    fn concat_feeds_next_squeeze() {
        let net = squeezenet(224);
        let f3s = net.iter().find(|l| l.name() == "fire3_squeeze").unwrap();
        assert_eq!(f3s.in_channels(), 128); // 64 + 64 concat
    }
}
