//! VGG-16 (configuration D) generator.

use crate::layer::ConvSpec;
use crate::network::Network;

/// Builds VGG-16 at the given input resolution (224 in the paper).
///
/// Thirteen 3×3 convolutions in five stages separated by 2× max-pooling,
/// followed by the three fully-connected layers. At 224×224 this is the
/// classic ≈15.3 GMAC / ≈138 M-parameter configuration.
///
/// # Panics
///
/// Panics if `resolution` is not divisible by 32 (the five pooling stages).
pub fn vgg16(resolution: u64) -> Network {
    assert!(
        resolution >= 32 && resolution.is_multiple_of(32),
        "vgg16 resolution must be a positive multiple of 32"
    );
    let mut net = Network::new(format!("vgg16_{resolution}"));
    let stages: [(u64, u64, usize); 5] = [
        (3, 64, 2),
        (64, 128, 2),
        (128, 256, 3),
        (256, 512, 3),
        (512, 512, 3),
    ];
    let mut hw = resolution;
    for (stage, &(c_in, c_out, n)) in stages.iter().enumerate() {
        let mut cin = c_in;
        for i in 0..n {
            let name = format!("conv{}_{}", stage + 1, i + 1);
            net.push(
                ConvSpec::conv2d(name, cin, c_out, (hw, hw), (3, 3), 1, 1)
                    .expect("vgg16 layer shapes are statically valid"),
            );
            cin = c_out;
        }
        hw /= 2; // max-pool
    }
    let flat = 512 * hw * hw;
    net.push(ConvSpec::linear("fc6", flat, 4096).expect("fc6 valid"));
    net.push(ConvSpec::linear("fc7", 4096, 4096).expect("fc7 valid"));
    net.push(ConvSpec::linear("fc8", 4096, 1000).expect("fc8 valid"));
    net
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vgg16_224_matches_reference_macs() {
        let net = vgg16(224);
        assert_eq!(net.len(), 16);
        let gmacs = net.total_macs() as f64 / 1e9;
        // Reference: 15.35 GMACs conv + 0.12 GMACs FC ≈ 15.47.
        assert!((gmacs - 15.47).abs() < 0.1, "got {gmacs} GMACs");
        let mparams = net.total_weights() as f64 / 1e6;
        assert!((mparams - 138.3).abs() < 1.0, "got {mparams} M params");
    }

    #[test]
    fn vgg16_fc6_input_tracks_resolution() {
        let net = vgg16(224);
        let fc6 = net.iter().find(|l| l.name() == "fc6").unwrap();
        assert_eq!(fc6.in_channels(), 25088); // 512 * 7 * 7
        let net = vgg16(256);
        let fc6 = net.iter().find(|l| l.name() == "fc6").unwrap();
        assert_eq!(fc6.in_channels(), 512 * 8 * 8);
    }

    #[test]
    #[should_panic(expected = "multiple of 32")]
    fn vgg16_rejects_odd_resolution() {
        let _ = vgg16(100);
    }
}
