//! Generators for the benchmark networks evaluated in the NAAS paper.
//!
//! Two benchmark sets, as in §III-A0b of the paper:
//!
//! * **classic large-scale**: [`vgg16`], [`resnet50`], [`unet`] — evaluated
//!   under the large resource envelopes (EdgeTPU, NVDLA-1024);
//! * **light-weight mobile**: [`mobilenet_v2`], [`squeezenet`], [`mnasnet`]
//!   — evaluated under the small envelopes (Eyeriss, NVDLA-256,
//!   ShiDianNao).
//!
//! [`cifar_resnet20`] and [`nasaic_cifar_net`] support the NASAIC
//! comparison (Table III), which is conducted on CIFAR-10-scale workloads.
//!
//! All generators are parameterized by input resolution so the OFA-style
//! NAS integration (which sweeps 128…256) can reuse them. MAC totals at
//! 224×224 match the commonly cited values (see the per-model tests).

mod cifar;
mod mnasnet;
mod mobilenet;
mod resnet;
mod squeezenet;
mod unet;
mod vgg;

pub use cifar::{cifar_resnet20, nasaic_cifar_net};
pub use mnasnet::mnasnet;
pub use mobilenet::mobilenet_v2;
pub use resnet::{resnet50, resnet50_elastic, BottleneckCfg};
pub use squeezenet::squeezenet;
pub use unet::unet;
pub use vgg::vgg16;

use crate::network::Network;

/// The classic large-scale benchmark set (paper §III-A0b) at 224×224
/// (UNet at 256×256, its customary resolution).
pub fn large_benchmarks() -> Vec<Network> {
    vec![vgg16(224), resnet50(224), unet(256)]
}

/// The light-weight mobile benchmark set (paper §III-A0b) at 224×224.
pub fn mobile_benchmarks() -> Vec<Network> {
    vec![mobilenet_v2(224), squeezenet(224), mnasnet(224)]
}

/// Rounds a scaled channel count to the nearest multiple of `divisor`,
/// never dropping below 90 % of the unrounded value (the standard
/// `make_divisible` used by MobileNet/MNasNet width scaling).
pub fn make_divisible(value: f64, divisor: u64) -> u64 {
    let d = divisor as f64;
    let rounded = ((value + d / 2.0) / d).floor() * d;
    let rounded = rounded.max(d);
    if rounded < 0.9 * value {
        (rounded + d) as u64
    } else {
        rounded as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn make_divisible_matches_reference_behaviour() {
        assert_eq!(make_divisible(32.0, 8), 32);
        assert_eq!(make_divisible(33.0, 8), 32);
        assert_eq!(make_divisible(37.0, 8), 40);
        // Never below 90% of the requested width.
        assert_eq!(make_divisible(20.8, 8), 24);
        // Never below the divisor itself.
        assert_eq!(make_divisible(2.0, 8), 8);
    }

    #[test]
    fn benchmark_sets_have_three_networks_each() {
        assert_eq!(large_benchmarks().len(), 3);
        assert_eq!(mobile_benchmarks().len(), 3);
    }

    #[test]
    fn all_benchmarks_have_unique_layer_names() {
        for net in large_benchmarks().into_iter().chain(mobile_benchmarks()) {
            let mut names: Vec<&str> = net.layers().iter().map(|l| l.name()).collect();
            let total = names.len();
            names.sort_unstable();
            names.dedup();
            assert_eq!(names.len(), total, "duplicate layer name in {}", net.name());
        }
    }
}
