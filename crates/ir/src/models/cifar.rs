//! CIFAR-10-scale networks used for the NASAIC comparison (Table III).

use crate::layer::ConvSpec;
use crate::network::Network;

/// Classic CIFAR ResNet-20: three stages of three basic blocks at widths
/// 16/32/64 over 32×32 inputs (≈40 MMACs).
pub fn cifar_resnet20() -> Network {
    let mut net = Network::new("cifar_resnet20");
    net.push(ConvSpec::conv2d("conv1", 3, 16, (32, 32), (3, 3), 1, 1).expect("stem valid"));
    let widths = [16u64, 32, 64];
    let mut hw = 32u64;
    let mut cin = 16u64;
    for (stage, &w) in widths.iter().enumerate() {
        for block in 0..3 {
            let stride = if stage > 0 && block == 0 { 2 } else { 1 };
            let p = format!("s{}b{}", stage + 1, block + 1);
            net.push(
                ConvSpec::conv2d(format!("{p}_conv1"), cin, w, (hw, hw), (3, 3), stride, 1)
                    .expect("block conv valid"),
            );
            if stride == 2 {
                hw /= 2;
            }
            net.push(
                ConvSpec::conv2d(format!("{p}_conv2"), w, w, (hw, hw), (3, 3), 1, 1)
                    .expect("block conv valid"),
            );
            if cin != w {
                net.push(
                    ConvSpec::conv2d(
                        format!("{p}_proj"),
                        cin,
                        w,
                        (hw * stride, hw * stride),
                        (1, 1),
                        stride,
                        0,
                    )
                    .expect("projection valid"),
                );
            }
            cin = w;
        }
    }
    net.push(ConvSpec::linear("fc", 64, 10).expect("fc valid"));
    net
}

/// A representative NASAIC-searched CIFAR network.
///
/// NASAIC's searched cells are not published layer-by-layer; this stands in
/// with a NAS-typical CIFAR backbone (mixed 3×3/5×5, width ~36, depth 15,
/// ≈93 % CIFAR-10 class) whose aggregate compute matches the workload scale
/// of NASAIC's Table 2 — which is what the latency/energy comparison in
/// our Table III reproduction exercises.
pub fn nasaic_cifar_net() -> Network {
    let mut net = Network::new("nasaic_cifar");
    net.push(ConvSpec::conv2d("stem", 3, 36, (32, 32), (3, 3), 1, 1).expect("stem valid"));
    let mut hw = 32u64;
    let mut cin = 36u64;
    for stage in 0..3 {
        let w = 36 * (1 << stage) as u64;
        for cell in 0..5 {
            let stride = if stage > 0 && cell == 0 { 2 } else { 1 };
            let p = format!("c{}_{}", stage + 1, cell + 1);
            let kernel = if cell % 2 == 0 { 3 } else { 5 };
            net.push(
                ConvSpec::conv2d(
                    format!("{p}_conv"),
                    cin,
                    w,
                    (hw, hw),
                    (kernel, kernel),
                    stride,
                    kernel / 2,
                )
                .expect("cell conv valid"),
            );
            if stride == 2 {
                hw /= 2;
            }
            net.push(
                ConvSpec::conv2d(format!("{p}_pw"), w, w, (hw, hw), (1, 1), 1, 0)
                    .expect("cell pw valid"),
            );
            cin = w;
        }
    }
    net.push(ConvSpec::linear("fc", cin, 10).expect("fc valid"));
    net
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet20_mac_scale() {
        let net = cifar_resnet20();
        let mmacs = net.total_macs() as f64 / 1e6;
        assert!((mmacs - 41.0).abs() < 6.0, "got {mmacs} MMACs");
    }

    #[test]
    fn resnet20_has_two_projections() {
        let net = cifar_resnet20();
        let projections = net.iter().filter(|l| l.name().ends_with("_proj")).count();
        assert_eq!(projections, 2);
    }

    #[test]
    fn nasaic_net_is_cifar_scale() {
        let net = nasaic_cifar_net();
        let mmacs = net.total_macs() as f64 / 1e6;
        assert!(
            mmacs > 50.0 && mmacs < 2000.0,
            "got {mmacs} MMACs — should be CIFAR-scale"
        );
        assert!(net.iter().any(|l| l.kernel_r() == 5));
    }

    #[test]
    fn spatial_reduces_to_8() {
        let net = nasaic_cifar_net();
        let last_conv = net
            .iter()
            .rev()
            .find(|l| l.name().ends_with("_pw"))
            .unwrap();
        assert_eq!(last_conv.out_y(), 8);
    }
}
