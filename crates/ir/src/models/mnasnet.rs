//! MNasNet-B1 generator (mobile inverted bottlenecks with 3×3/5×5 kernels).

use crate::layer::ConvSpec;
use crate::models::make_divisible;
use crate::network::Network;

/// MBConv stage settings `(expand, kernel, channels, repeats, stride)`
/// following the MNasNet-B1 architecture.
const STAGES: [(u64, u64, u64, usize, u64); 6] = [
    (3, 3, 24, 3, 2),
    (3, 5, 40, 3, 2),
    (6, 5, 80, 3, 2),
    (6, 3, 96, 2, 1),
    (6, 5, 192, 4, 2),
    (6, 3, 320, 1, 1),
];

/// Builds MNasNet-B1 at the given input resolution:
/// ≈0.31 GMACs and ≈4.4 M parameters at 224×224.
///
/// The stem is a 3×3 stride-2 convolution followed by a separable
/// convolution (depthwise 3×3 + pointwise to 16 channels); six MBConv
/// stages and the 1×1 head follow. SE blocks (A1 variant) are omitted,
/// matching the B1 variant used by MAC-level benchmarks.
///
/// # Panics
///
/// Panics if `resolution` is not divisible by 32.
pub fn mnasnet(resolution: u64) -> Network {
    assert!(
        resolution >= 32 && resolution.is_multiple_of(32),
        "mnasnet resolution must be a positive multiple of 32"
    );
    let mut net = Network::new(format!("mnasnet_{resolution}"));
    net.push(
        ConvSpec::conv2d("conv1", 3, 32, (resolution, resolution), (3, 3), 2, 1)
            .expect("mnasnet stem valid"),
    );
    let mut hw = resolution / 2;
    net.push(
        ConvSpec::depthwise("sep_dw", 32, (hw, hw), (3, 3), 1, 1).expect("sep depthwise valid"),
    );
    net.push(ConvSpec::conv2d("sep_pw", 32, 16, (hw, hw), (1, 1), 1, 0).expect("sep pw valid"));
    let mut cin: u64 = 16;
    for (stage, &(expand, kernel, ch, repeats, first_stride)) in STAGES.iter().enumerate() {
        let cout = make_divisible(ch as f64, 8);
        for rep in 0..repeats {
            let stride = if rep == 0 { first_stride } else { 1 };
            let prefix = format!("mb{}_{}", stage + 1, rep + 1);
            let hidden = cin * expand;
            net.push(
                ConvSpec::conv2d(
                    format!("{prefix}_expand"),
                    cin,
                    hidden,
                    (hw, hw),
                    (1, 1),
                    1,
                    0,
                )
                .expect("mbconv expand valid"),
            );
            net.push(
                ConvSpec::depthwise(
                    format!("{prefix}_dw"),
                    hidden,
                    (hw, hw),
                    (kernel, kernel),
                    stride,
                    kernel / 2,
                )
                .expect("mbconv depthwise valid"),
            );
            if stride == 2 {
                hw /= 2;
            }
            net.push(
                ConvSpec::conv2d(
                    format!("{prefix}_project"),
                    hidden,
                    cout,
                    (hw, hw),
                    (1, 1),
                    1,
                    0,
                )
                .expect("mbconv project valid"),
            );
            cin = cout;
        }
    }
    net.push(ConvSpec::conv2d("conv_last", cin, 1280, (hw, hw), (1, 1), 1, 0).expect("head valid"));
    net.push(ConvSpec::linear("fc", 1280, 1000).expect("fc valid"));
    net
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnasnet_224_matches_reference_macs() {
        let net = mnasnet(224);
        let mmacs = net.total_macs() as f64 / 1e6;
        assert!((mmacs - 315.0).abs() < 35.0, "got {mmacs} MMACs");
        let mparams = net.total_weights() as f64 / 1e6;
        assert!((mparams - 4.4).abs() < 0.5, "got {mparams} M params");
    }

    #[test]
    fn five_by_five_kernels_present() {
        let net = mnasnet(224);
        assert!(net.iter().any(|l| l.kernel_r() == 5));
    }

    #[test]
    fn stage_strides_reach_res_over_32() {
        let net = mnasnet(224);
        let last = net.iter().find(|l| l.name() == "conv_last").unwrap();
        assert_eq!(last.out_y(), 7);
    }
}
