//! UNet generator (4-level encoder/decoder with skip connections).

use crate::layer::ConvSpec;
use crate::network::Network;

/// Builds the classic UNet (base width 64, four down/up levels, 2-class
/// head) at the given input resolution with same-padding convolutions.
///
/// Up-convolutions are transposed convolutions lowered to stride-1
/// convolutions over a zero-upsampled input (see
/// [`ConvSpec::transposed`]); decoder convolutions consume the
/// concatenation of the up-sampled features and the skip connection.
///
/// # Panics
///
/// Panics if `resolution` is not divisible by 16 (four pooling levels).
pub fn unet(resolution: u64) -> Network {
    assert!(
        resolution >= 16 && resolution.is_multiple_of(16),
        "unet resolution must be a positive multiple of 16"
    );
    let mut net = Network::new(format!("unet_{resolution}"));
    let widths: [u64; 4] = [64, 128, 256, 512];

    // Encoder.
    let mut hw = resolution;
    let mut cin: u64 = 3;
    for (level, &w) in widths.iter().enumerate() {
        net.push(
            ConvSpec::conv2d(
                format!("enc{}_1", level + 1),
                cin,
                w,
                (hw, hw),
                (3, 3),
                1,
                1,
            )
            .expect("encoder conv valid"),
        );
        net.push(
            ConvSpec::conv2d(format!("enc{}_2", level + 1), w, w, (hw, hw), (3, 3), 1, 1)
                .expect("encoder conv valid"),
        );
        cin = w;
        hw /= 2; // max-pool
    }

    // Bottleneck.
    net.push(ConvSpec::conv2d("mid_1", 512, 1024, (hw, hw), (3, 3), 1, 1).expect("mid conv valid"));
    net.push(
        ConvSpec::conv2d("mid_2", 1024, 1024, (hw, hw), (3, 3), 1, 1).expect("mid conv valid"),
    );
    let mut c = 1024u64;

    // Decoder.
    for (level, &w) in widths.iter().enumerate().rev() {
        net.push(
            ConvSpec::transposed(format!("up{}", level + 1), c, w, (hw, hw), (2, 2), 2)
                .expect("up-conv valid"),
        );
        hw *= 2;
        net.push(
            ConvSpec::conv2d(
                format!("dec{}_1", level + 1),
                2 * w, // concat with skip
                w,
                (hw, hw),
                (3, 3),
                1,
                1,
            )
            .expect("decoder conv valid"),
        );
        net.push(
            ConvSpec::conv2d(format!("dec{}_2", level + 1), w, w, (hw, hw), (3, 3), 1, 1)
                .expect("decoder conv valid"),
        );
        c = w;
    }

    net.push(ConvSpec::conv2d("head", 64, 2, (hw, hw), (1, 1), 1, 0).expect("head valid"));
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::ConvKind;

    #[test]
    fn unet_256_is_tens_of_gmacs() {
        let net = unet(256);
        let gmacs = net.total_macs() as f64 / 1e9;
        assert!(
            gmacs > 30.0 && gmacs < 120.0,
            "got {gmacs} GMACs — UNet should dwarf classification nets"
        );
        let mparams = net.total_weights() as f64 / 1e6;
        assert!((mparams - 31.0).abs() < 4.0, "got {mparams} M params");
    }

    #[test]
    fn decoder_returns_to_input_resolution() {
        let net = unet(256);
        let head = net.iter().find(|l| l.name() == "head").unwrap();
        assert_eq!(head.out_y(), 256);
    }

    #[test]
    fn four_transposed_convolutions() {
        let net = unet(256);
        let ups = net
            .iter()
            .filter(|l| l.kind() == ConvKind::Transposed)
            .count();
        assert_eq!(ups, 4);
    }

    #[test]
    fn skip_concat_doubles_decoder_input() {
        let net = unet(256);
        let dec4 = net.iter().find(|l| l.name() == "dec4_1").unwrap();
        assert_eq!(dec4.in_channels(), 1024); // 512 up + 512 skip
    }
}
