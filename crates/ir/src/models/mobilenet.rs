//! MobileNetV2 generator (inverted residual bottlenecks).

use crate::layer::ConvSpec;
use crate::models::make_divisible;
use crate::network::Network;

/// Inverted-residual stage settings `(expand, channels, repeats, stride)`
/// from the MobileNetV2 paper, Table 2.
const STAGES: [(u64, u64, usize, u64); 7] = [
    (1, 16, 1, 1),
    (6, 24, 2, 2),
    (6, 32, 3, 2),
    (6, 64, 4, 2),
    (6, 96, 3, 1),
    (6, 160, 3, 2),
    (6, 320, 1, 1),
];

/// Builds MobileNetV2 (width 1.0) at the given input resolution:
/// ≈0.3 GMACs and ≈3.4 M parameters at 224×224.
///
/// Each inverted residual is lowered to [expand 1×1] + depthwise 3×3 +
/// project 1×1 (the expand convolution is omitted when `expand == 1`).
///
/// # Panics
///
/// Panics if `resolution` is not divisible by 32.
pub fn mobilenet_v2(resolution: u64) -> Network {
    assert!(
        resolution >= 32 && resolution.is_multiple_of(32),
        "mobilenet_v2 resolution must be a positive multiple of 32"
    );
    let mut net = Network::new(format!("mobilenet_v2_{resolution}"));
    let mut hw = resolution / 2;
    net.push(
        ConvSpec::conv2d("conv1", 3, 32, (resolution, resolution), (3, 3), 2, 1)
            .expect("mobilenet stem valid"),
    );
    let mut cin: u64 = 32;
    for (stage, &(expand, ch, repeats, first_stride)) in STAGES.iter().enumerate() {
        let cout = make_divisible(ch as f64, 8);
        for rep in 0..repeats {
            let stride = if rep == 0 { first_stride } else { 1 };
            let prefix = format!("ir{}_{}", stage + 1, rep + 1);
            let hidden = cin * expand;
            if expand != 1 {
                net.push(
                    ConvSpec::conv2d(
                        format!("{prefix}_expand"),
                        cin,
                        hidden,
                        (hw, hw),
                        (1, 1),
                        1,
                        0,
                    )
                    .expect("expand valid"),
                );
            }
            net.push(
                ConvSpec::depthwise(format!("{prefix}_dw"), hidden, (hw, hw), (3, 3), stride, 1)
                    .expect("depthwise valid"),
            );
            if stride == 2 {
                hw /= 2;
            }
            net.push(
                ConvSpec::conv2d(
                    format!("{prefix}_project"),
                    hidden,
                    cout,
                    (hw, hw),
                    (1, 1),
                    1,
                    0,
                )
                .expect("project valid"),
            );
            cin = cout;
        }
    }
    net.push(
        ConvSpec::conv2d("conv_last", cin, 1280, (hw, hw), (1, 1), 1, 0).expect("head conv valid"),
    );
    net.push(ConvSpec::linear("fc", 1280, 1000).expect("fc valid"));
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::ConvKind;

    #[test]
    fn mobilenet_v2_224_matches_reference_macs() {
        let net = mobilenet_v2(224);
        let mmacs = net.total_macs() as f64 / 1e6;
        assert!((mmacs - 300.0).abs() < 20.0, "got {mmacs} MMACs");
        let mparams = net.total_weights() as f64 / 1e6;
        assert!((mparams - 3.4).abs() < 0.3, "got {mparams} M params");
    }

    #[test]
    fn depthwise_layers_are_marked() {
        let net = mobilenet_v2(224);
        let dw = net
            .iter()
            .filter(|l| l.kind() == ConvKind::Depthwise)
            .count();
        // One depthwise per inverted residual: 1+2+3+4+3+3+1 = 17.
        assert_eq!(dw, 17);
    }

    #[test]
    fn first_block_has_no_expand() {
        let net = mobilenet_v2(224);
        assert!(net.iter().all(|l| l.name() != "ir1_1_expand"));
        assert!(net.iter().any(|l| l.name() == "ir2_1_expand"));
    }

    #[test]
    fn final_spatial_is_res_over_32() {
        let net = mobilenet_v2(192);
        let last_conv = net.iter().find(|l| l.name() == "conv_last").unwrap();
        assert_eq!(last_conv.out_y(), 6);
    }
}
