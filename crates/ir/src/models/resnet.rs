//! ResNet-50 generator, plus the elastic variant backing the OFA-style
//! neural architecture search space (paper §III-A0c).

use crate::layer::ConvSpec;
use crate::models::make_divisible;
use crate::network::Network;

/// Configuration of one bottleneck residual block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BottleneckCfg {
    /// Output channels of the block (after the final 1×1 expansion).
    pub out_channels: u64,
    /// Ratio of the bottleneck mid-channels to the output channels
    /// (0.25 in the standard ResNet-50; the NAS space offers
    /// {0.20, 0.25, 0.35}).
    pub mid_ratio: f64,
    /// Stride of the 3×3 convolution (2 in the first block of stages 2-4).
    pub stride: u64,
}

/// Standard ResNet-50 at the given input resolution: ≈4.1 GMACs and
/// ≈25.5 M parameters at 224×224.
///
/// # Panics
///
/// Panics if `resolution` is not divisible by 32.
pub fn resnet50(resolution: u64) -> Network {
    resnet50_elastic(resolution, 1.0, [3, 4, 6, 3], [0.25; 4])
}

/// Elastic ResNet-50: the OFA-style design space of the paper.
///
/// * `width_mult` — global width multiplier (paper: 0.65, 0.8, 1.0);
/// * `depths` — bottleneck blocks per stage (paper: up to 18 total);
/// * `mid_ratios` — per-stage bottleneck reduction ratio
///   (paper: 0.20, 0.25, 0.35);
/// * `resolution` — input image size (paper: 128…256 step 16).
///
/// ```
/// use naas_ir::models::resnet50_elastic;
/// let small = resnet50_elastic(160, 0.65, [2, 2, 4, 2], [0.2; 4]);
/// let full = resnet50_elastic(224, 1.0, [3, 4, 6, 3], [0.25; 4]);
/// assert!(small.total_macs() < full.total_macs() / 2);
/// ```
///
/// # Panics
///
/// Panics if `resolution` is not divisible by 32, if any stage depth is
/// zero, or if `width_mult`/`mid_ratios` are not positive.
pub fn resnet50_elastic(
    resolution: u64,
    width_mult: f64,
    depths: [usize; 4],
    mid_ratios: [f64; 4],
) -> Network {
    assert!(
        resolution >= 32 && resolution.is_multiple_of(32),
        "resnet50 resolution must be a positive multiple of 32"
    );
    assert!(width_mult > 0.0, "width multiplier must be positive");
    assert!(
        depths.iter().all(|&d| d >= 1),
        "every stage needs at least one block"
    );
    assert!(
        mid_ratios.iter().all(|&r| r > 0.0),
        "mid ratios must be positive"
    );

    let w = |ch: u64| make_divisible(ch as f64 * width_mult, 8);
    let mut net = Network::new(format!(
        "resnet50_r{resolution}_w{:.2}_d{}",
        width_mult,
        depths.iter().sum::<usize>()
    ));

    let stem = w(64);
    net.push(
        ConvSpec::conv2d("conv1", 3, stem, (resolution, resolution), (7, 7), 2, 3)
            .expect("resnet stem is statically valid"),
    );
    // 3×3 max-pool stride 2 follows the stem.
    let mut hw = resolution / 4;
    let mut cin = stem;

    let stage_channels: [u64; 4] = [w(256), w(512), w(1024), w(2048)];
    for (stage, (&out_ch, &depth)) in stage_channels.iter().zip(depths.iter()).enumerate() {
        for block in 0..depth {
            let stride = if stage > 0 && block == 0 { 2 } else { 1 };
            let cfg = BottleneckCfg {
                out_channels: out_ch,
                mid_ratio: mid_ratios[stage],
                stride,
            };
            push_bottleneck(
                &mut net,
                &format!("s{}b{}", stage + 1, block + 1),
                cin,
                hw,
                cfg,
            );
            if stride == 2 {
                hw /= 2;
            }
            cin = out_ch;
        }
    }

    net.push(ConvSpec::linear("fc", cin, 1000).expect("fc is statically valid"));
    net
}

/// Appends the three convolutions of a bottleneck block (plus the
/// projection shortcut when the shape changes).
fn push_bottleneck(net: &mut Network, prefix: &str, cin: u64, hw: u64, cfg: BottleneckCfg) {
    let mid = make_divisible(cfg.out_channels as f64 * cfg.mid_ratio, 8);
    let out_hw = hw / cfg.stride;
    net.push(
        ConvSpec::conv2d(format!("{prefix}_pw1"), cin, mid, (hw, hw), (1, 1), 1, 0)
            .expect("bottleneck pw1 valid"),
    );
    net.push(
        ConvSpec::conv2d(
            format!("{prefix}_conv3"),
            mid,
            mid,
            (hw, hw),
            (3, 3),
            cfg.stride,
            1,
        )
        .expect("bottleneck conv3 valid"),
    );
    net.push(
        ConvSpec::conv2d(
            format!("{prefix}_pw2"),
            mid,
            cfg.out_channels,
            (out_hw, out_hw),
            (1, 1),
            1,
            0,
        )
        .expect("bottleneck pw2 valid"),
    );
    if cin != cfg.out_channels || cfg.stride != 1 {
        net.push(
            ConvSpec::conv2d(
                format!("{prefix}_proj"),
                cin,
                cfg.out_channels,
                (hw, hw),
                (1, 1),
                cfg.stride,
                0,
            )
            .expect("bottleneck projection valid"),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet50_224_matches_reference_macs() {
        let net = resnet50(224);
        let gmacs = net.total_macs() as f64 / 1e9;
        assert!((gmacs - 4.1).abs() < 0.15, "got {gmacs} GMACs");
        let mparams = net.total_weights() as f64 / 1e6;
        assert!((mparams - 25.5).abs() < 1.0, "got {mparams} M params");
    }

    #[test]
    fn resnet50_block_count() {
        let net = resnet50(224);
        // 16 blocks * 3 convs + 4 projections + stem + fc = 54 layers.
        assert_eq!(net.len(), 54);
    }

    #[test]
    fn elastic_width_shrinks_channels() {
        let net = resnet50_elastic(224, 0.65, [3, 4, 6, 3], [0.25; 4]);
        let stem = &net.layers()[0];
        assert_eq!(stem.out_channels(), 40); // make_divisible(64*0.65, 8)
        assert!(net.total_macs() < resnet50(224).total_macs());
    }

    #[test]
    fn elastic_resolution_scales_spatial() {
        let net = resnet50_elastic(128, 1.0, [3, 4, 6, 3], [0.25; 4]);
        let stem = &net.layers()[0];
        assert_eq!(stem.out_y(), 64);
        // Last stage operates at 128/32 = 4.
        let s4 = net
            .iter()
            .find(|l| l.name() == "s4b1_conv3")
            .expect("stage-4 block exists");
        assert_eq!(s4.out_y(), 4);
    }

    #[test]
    fn elastic_mid_ratio_changes_bottleneck_width() {
        let narrow = resnet50_elastic(224, 1.0, [3, 4, 6, 3], [0.2; 4]);
        let wide = resnet50_elastic(224, 1.0, [3, 4, 6, 3], [0.35; 4]);
        let n = narrow.iter().find(|l| l.name() == "s1b1_conv3").unwrap();
        let w = wide.iter().find(|l| l.name() == "s1b1_conv3").unwrap();
        assert!(n.out_channels() < w.out_channels());
    }

    #[test]
    fn max_depth_space_has_18_blocks() {
        let net = resnet50_elastic(224, 1.0, [4, 4, 6, 4], [0.25; 4]);
        let blocks = net.iter().filter(|l| l.name().ends_with("_pw1")).count();
        assert_eq!(blocks, 18);
    }
}
