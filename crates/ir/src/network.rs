//! Whole-network containers: an ordered list of convolution workloads.

use crate::layer::ConvSpec;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An ordered sequence of convolution layers forming one benchmark network.
///
/// Only MAC-dominated layers are carried: element-wise ops, pooling and
/// normalization contribute a negligible share of both latency and energy
/// on MAC-array accelerators and are omitted, matching how the paper's
/// MAESTRO benchmarks describe networks.
///
/// ```
/// use naas_ir::{ConvSpec, Network};
/// let mut net = Network::new("tiny");
/// net.push(ConvSpec::conv2d("c1", 3, 8, (8, 8), (3, 3), 1, 1)?);
/// assert_eq!(net.layers().len(), 1);
/// assert_eq!(net.total_macs(), 8 * 3 * 8 * 8 * 9);
/// # Ok::<(), naas_ir::ShapeError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Network {
    name: String,
    layers: Vec<ConvSpec>,
}

impl Network {
    /// Creates an empty network with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Network {
            name: name.into(),
            layers: Vec::new(),
        }
    }

    /// Creates a network from a prebuilt layer list.
    pub fn from_layers(name: impl Into<String>, layers: Vec<ConvSpec>) -> Self {
        Network {
            name: name.into(),
            layers,
        }
    }

    /// Network name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The layers in execution order.
    pub fn layers(&self) -> &[ConvSpec] {
        &self.layers
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: ConvSpec) {
        self.layers.push(layer);
    }

    /// Total multiply-accumulate operations over all layers.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(ConvSpec::macs).sum()
    }

    /// Total weight parameters over all layers.
    pub fn total_weights(&self) -> u64 {
        self.layers.iter().map(ConvSpec::weight_elems).sum()
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// `true` when the network has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Iterates over the layers.
    pub fn iter(&self) -> std::slice::Iter<'_, ConvSpec> {
        self.layers.iter()
    }
}

impl<'a> IntoIterator for &'a Network {
    type Item = &'a ConvSpec;
    type IntoIter = std::slice::Iter<'a, ConvSpec>;
    fn into_iter(self) -> Self::IntoIter {
        self.layers.iter()
    }
}

impl Extend<ConvSpec> for Network {
    fn extend<T: IntoIterator<Item = ConvSpec>>(&mut self, iter: T) {
        self.layers.extend(iter);
    }
}

impl fmt::Display for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {} layers, {:.1} GMACs, {:.1} M params",
            self.name,
            self.layers.len(),
            self.total_macs() as f64 / 1e9,
            self.total_weights() as f64 / 1e6
        )?;
        for l in &self.layers {
            writeln!(f, "  {l}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::ConvSpec;

    fn tiny() -> Network {
        let mut n = Network::new("t");
        n.push(ConvSpec::conv2d("a", 3, 8, (8, 8), (3, 3), 1, 1).unwrap());
        n.push(ConvSpec::conv2d("b", 8, 16, (8, 8), (3, 3), 2, 1).unwrap());
        n
    }

    #[test]
    fn totals_are_sums() {
        let n = tiny();
        let macs: u64 = n.iter().map(|l| l.macs()).sum();
        assert_eq!(n.total_macs(), macs);
        assert_eq!(n.len(), 2);
        assert!(!n.is_empty());
    }

    #[test]
    fn extend_and_iterate() {
        let mut n = Network::new("x");
        n.extend(tiny().layers().to_vec());
        assert_eq!(n.len(), 2);
        let names: Vec<&str> = (&n).into_iter().map(|l| l.name()).collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn display_header_mentions_name() {
        let s = tiny().to_string();
        assert!(s.starts_with("t: 2 layers"));
    }
}
