//! Property-based tests of the workload IR: shape inference, MAC
//! arithmetic and the elastic ResNet-50 generator.

use naas_ir::{models, ConvSpec, Dim, DIMS};
use proptest::prelude::*;

fn arb_conv() -> impl Strategy<Value = ConvSpec> {
    (
        1u64..=512,
        1u64..=512,
        4u64..=128,
        prop_oneof![Just(1u64), Just(3), Just(5), Just(7)],
        1u64..=3,
        0u64..=3,
    )
        .prop_filter_map("kernel must fit", |(c, k, hw, ks, s, p)| {
            ConvSpec::conv2d("prop", c, k, (hw, hw), (ks, ks), s, p).ok()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Output extents are consistent with the padded-input formula and
    /// the output never exceeds the padded input.
    #[test]
    fn output_shape_is_consistent(l in arb_conv()) {
        let padded = l.in_y() + 2 * l.padding();
        prop_assert!(l.out_y() >= 1);
        prop_assert!((l.out_y() - 1) * l.stride() + l.kernel_r() <= padded);
        // One more output row would overflow the padded input.
        prop_assert!(l.out_y() * l.stride() + l.kernel_r() > padded);
    }

    /// MACs factor exactly into the six extents times batch.
    #[test]
    fn macs_factorize(l in arb_conv()) {
        let manual: u64 = DIMS.iter().map(|&d| l.extent(d)).product();
        prop_assert_eq!(l.macs(), manual * l.batch());
    }

    /// The halo covers at least the kernel and grows linearly in tiles.
    #[test]
    fn halo_bounds(l in arb_conv(), tile in 1u64..=64) {
        let h = l.input_halo(tile, l.kernel_r());
        prop_assert!(h >= l.kernel_r());
        prop_assert_eq!(h, (tile - 1) * l.stride() + l.kernel_r());
    }

    /// Weight/input/output element counts are positive and weights match
    /// the K·C/g·R·S formula.
    #[test]
    fn element_counts(l in arb_conv()) {
        prop_assert!(l.weight_elems() > 0);
        prop_assert!(l.input_elems() > 0);
        prop_assert!(l.output_elems() > 0);
        prop_assert_eq!(
            l.weight_elems(),
            l.out_channels() * (l.in_channels() / l.groups()) * l.kernel_r() * l.kernel_s()
        );
    }

    /// Depthwise layers have unit reduction depth and K-dependent inputs
    /// (a single-channel "depthwise" is a dense conv, so start at 2).
    #[test]
    fn depthwise_properties(ch in 2u64..=512, hw in 4u64..=64) {
        let l = ConvSpec::depthwise("dw", ch, (hw, hw), (3, 3), 1, 1).unwrap();
        prop_assert_eq!(l.extent(Dim::C), 1);
        prop_assert_eq!(l.extent(Dim::K), ch);
        prop_assert!(l.input_depends_on_k());
    }

    /// Elastic ResNet-50 MACs are monotone in width, depth and resolution.
    #[test]
    fn elastic_resnet_monotone(
        res_step in 0u64..=4,
        w_idx in 0usize..3,
        extra_depth in 0usize..=1,
    ) {
        let widths = [0.65, 0.8, 1.0];
        let res = 128 + 32 * res_step;
        let base = models::resnet50_elastic(res, widths[w_idx], [2, 2, 4, 2], [0.25; 4]);
        if res_step < 4 {
            let bigger_res =
                models::resnet50_elastic(res + 32, widths[w_idx], [2, 2, 4, 2], [0.25; 4]);
            prop_assert!(bigger_res.total_macs() > base.total_macs());
        }
        if w_idx < 2 {
            let wider =
                models::resnet50_elastic(res, widths[w_idx + 1], [2, 2, 4, 2], [0.25; 4]);
            prop_assert!(wider.total_macs() > base.total_macs());
        }
        let deeper = models::resnet50_elastic(
            res,
            widths[w_idx],
            [2 + extra_depth, 2, 4, 2],
            [0.25; 4],
        );
        prop_assert!(deeper.total_macs() >= base.total_macs());
    }
}
