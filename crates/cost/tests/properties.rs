//! Property-based tests of the cost model's physical invariants.

use naas_accel::baselines;
use naas_cost::reuse::{distinct_tiles, fetch_multiplier, Loop};
use naas_cost::{capacity, CostModel, DataWidths, Tensor};
use naas_ir::{ConvSpec, Dim, DimVec};
use naas_mapping::Mapping;
use proptest::prelude::*;

fn arb_layer() -> impl Strategy<Value = ConvSpec> {
    (
        1u64..=256,
        1u64..=256,
        6u64..=96,
        prop_oneof![Just(1u64), Just(3), Just(5)],
        1u64..=2,
    )
        .prop_filter_map("valid shapes", |(c, k, hw, ks, s)| {
            ConvSpec::conv2d("prop", c, k, (hw, hw), (ks, ks), s, ks / 2).ok()
        })
}

fn arb_loops() -> impl Strategy<Value = Vec<Loop>> {
    proptest::collection::vec(
        (0usize..6, 2u64..=16).prop_map(|(d, trips)| Loop {
            dim: Dim::from_index(d).expect("d < 6"),
            trips,
        }),
        0..=6,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Fetch multipliers are sandwiched between distinct-tile count and
    /// total trip product, for any relevance predicate.
    #[test]
    fn fetch_multiplier_bounds(loops in arb_loops(), mask in 0u8..64) {
        let rel = |d: Dim| mask & (1 << d.index()) != 0;
        let total: u64 = loops.iter().map(|l| l.trips).product();
        let m = fetch_multiplier(&loops, rel);
        let distinct = distinct_tiles(&loops, rel);
        prop_assert!(m >= 1);
        prop_assert!(m <= total);
        prop_assert!(m >= distinct);
    }

    /// Moving an irrelevant loop from outermost to innermost never
    /// increases the fetch multiplier.
    #[test]
    fn inward_irrelevant_moves_help(loops in arb_loops(), mask in 0u8..64) {
        let rel = |d: Dim| mask & (1 << d.index()) != 0;
        if let Some(pos) = loops.iter().position(|l| !rel(l.dim)) {
            let mut moved = loops.clone();
            let l = moved.remove(pos);
            moved.push(l);
            prop_assert!(
                fetch_multiplier(&moved, rel) <= fetch_multiplier(&loops, rel)
            );
        }
    }

    /// Valid evaluations respect: compute floor, tensor-size floors on
    /// DRAM traffic, MAC-energy floor, utilization in (0, 1].
    #[test]
    fn physical_floors(layer in arb_layer()) {
        let model = CostModel::new();
        for accel in baselines::all() {
            let mapping = Mapping::balanced(&layer, &accel);
            let Ok(cost) = model.evaluate(&layer, &accel, &mapping) else { continue };
            prop_assert!(cost.cycles as u128 >= (layer.macs() / accel.pe_count()) as u128);
            prop_assert!(cost.utilization > 0.0 && cost.utilization <= 1.0 + 1e-9);
            let w = cost.traffic.tensor(Tensor::Weights);
            prop_assert!(w.dram_bytes >= layer.weight_elems() as f64);
            let o = cost.traffic.tensor(Tensor::Outputs);
            prop_assert!(o.dram_bytes >= 4.0 * layer.output_elems() as f64);
            // Deliveries dominate unique traffic (multicast only adds copies).
            prop_assert!(cost.traffic.noc_total() >= cost.traffic.l2_total() * 0.999);
        }
    }

    /// Wider operands scale tile footprints monotonically.
    #[test]
    fn capacity_monotone_in_widths(layer in arb_layer(), tile_scale in 1u64..=8) {
        let tile = DimVec([
            layer.extent(Dim::K).div_ceil(tile_scale).max(1),
            layer.extent(Dim::C).div_ceil(tile_scale).max(1),
            layer.extent(Dim::Y).div_ceil(tile_scale).max(1),
            layer.extent(Dim::X).div_ceil(tile_scale).max(1),
            layer.extent(Dim::R),
            layer.extent(Dim::S),
        ]);
        let int8 = capacity::tile_bytes(&layer, &tile, &DataWidths::INT8);
        let int16 = capacity::tile_bytes(&layer, &tile, &DataWidths::INT16);
        prop_assert!(int16 >= int8);
    }

    /// Energy scales with the anchor of the Eyeriss ladder.
    #[test]
    fn energy_scales_with_anchor(layer in arb_layer()) {
        use naas_cost::EnergyTable;
        let base = CostModel::new();
        let double =
            CostModel::new().with_energy(EnergyTable::eyeriss_ladder(2.0 * 0.225));
        let accel = baselines::eyeriss();
        let mapping = Mapping::balanced(&layer, &accel);
        if let (Ok(a), Ok(b)) = (
            base.evaluate(&layer, &accel, &mapping),
            double.evaluate(&layer, &accel, &mapping),
        ) {
            let ratio = b.energy_pj / a.energy_pj;
            prop_assert!((ratio - 2.0).abs() < 1e-9, "ratio {ratio}");
            // Latency is energy-independent.
            prop_assert_eq!(a.cycles, b.cycles);
        }
    }

    /// A mapping that is capacity-valid stays valid on a design with
    /// strictly larger buffers.
    #[test]
    fn capacity_monotone_in_buffers(layer in arb_layer()) {
        use naas_accel::{Accelerator, ArchitecturalSizing, Connectivity};
        let small = Accelerator::new(
            "small",
            ArchitecturalSizing::new(256, 64 * 1024, 16.0, 4.0),
            Connectivity::grid(8, 8, Dim::K, Dim::C).expect("static"),
        );
        let big = Accelerator::new(
            "big",
            ArchitecturalSizing::new(1024, 512 * 1024, 16.0, 4.0),
            Connectivity::grid(8, 8, Dim::K, Dim::C).expect("static"),
        );
        let model = CostModel::new();
        let mapping = Mapping::balanced(&layer, &small);
        if model.evaluate(&layer, &small, &mapping).is_ok() {
            prop_assert!(model.evaluate(&layer, &big, &mapping).is_ok());
        }
    }
}
