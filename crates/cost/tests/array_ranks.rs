//! Explicit coverage of 1D and 3D PE arrays through the whole cost path
//! — the connectivity freedom NAAS adds over sizing-only frameworks
//! (§II-A: "search among 1D, 2D and 3D array as well").

use naas_accel::{Accelerator, ArchitecturalSizing, Connectivity};
use naas_cost::{CostModel, Tensor};
use naas_ir::{ConvSpec, Dim};
use naas_mapping::Mapping;

fn layer() -> ConvSpec {
    ConvSpec::conv2d("c", 64, 128, (28, 28), (3, 3), 1, 1).unwrap()
}

fn design(conn: Connectivity) -> Accelerator {
    Accelerator::new(
        format!("rank{}", conn.ndim()),
        ArchitecturalSizing::new(512, 256 * 1024, 32.0, 8.0),
        conn,
    )
}

#[test]
fn one_dimensional_array_evaluates() {
    let accel = design(Connectivity::linear(64, Dim::K).unwrap());
    let l = layer();
    let m = Mapping::balanced(&l, &accel);
    assert_eq!(m.levels().len(), 1);
    let cost = CostModel::new().evaluate(&l, &accel, &m).expect("1D maps");
    assert!(cost.cycles > 0);
    // K-parallel vector: inputs are broadcast → heavy NoC vs unique L2.
    let i = cost.traffic.tensor(Tensor::Inputs);
    assert!(i.noc_bytes > 10.0 * i.l2_bytes);
}

#[test]
fn three_dimensional_array_evaluates() {
    let accel = design(Connectivity::new(vec![4, 4, 8], vec![Dim::C, Dim::K, Dim::X]).unwrap());
    let l = layer();
    let m = Mapping::balanced(&l, &accel);
    assert_eq!(m.levels().len(), 3);
    let cost = CostModel::new().evaluate(&l, &accel, &m).expect("3D maps");
    assert!(cost.utilization > 0.0 && cost.utilization <= 1.0);
    // The C axis reduces partial sums: unique output traffic divides by 4.
    let o = cost.traffic.tensor(Tensor::Outputs);
    assert!(o.noc_bytes > o.l2_bytes);
}

#[test]
fn rank_changes_cost_at_equal_pe_count() {
    // 64 PEs arranged three ways — the cost model must distinguish them,
    // otherwise connectivity search would be pointless.
    let l = layer();
    let model = CostModel::new();
    let mut edps = Vec::new();
    for conn in [
        Connectivity::linear(64, Dim::K).unwrap(),
        Connectivity::grid(8, 8, Dim::C, Dim::K).unwrap(),
        Connectivity::new(vec![4, 4, 4], vec![Dim::C, Dim::K, Dim::Y]).unwrap(),
    ] {
        let accel = design(conn);
        let m = Mapping::balanced(&l, &accel);
        edps.push(model.evaluate(&l, &accel, &m).expect("maps").edp());
    }
    let min = edps.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = edps.iter().cloned().fold(0.0_f64, f64::max);
    assert!(
        max / min > 1.05,
        "array rank must matter at equal #PEs: {edps:?}"
    );
}

#[test]
fn reduction_vs_broadcast_axes_change_output_traffic() {
    let l = layer();
    let model = CostModel::new();
    // All-reduction grid (C,R) vs no-reduction grid (Y,X).
    let reducing = design(Connectivity::grid(8, 8, Dim::C, Dim::R).unwrap());
    let spatial = design(Connectivity::grid(8, 8, Dim::Y, Dim::X).unwrap());
    let mr = Mapping::balanced(&l, &reducing);
    let ms = Mapping::balanced(&l, &spatial);
    let cr = model.evaluate(&l, &reducing, &mr).expect("maps");
    let cs = model.evaluate(&l, &spatial, &ms).expect("maps");
    // With both axes reducing, 64 partials collapse to 1 before L2: the
    // unique-to-delivery ratio for outputs must be far smaller than in
    // the all-spatial case.
    let ratio_r =
        cr.traffic.tensor(Tensor::Outputs).l2_bytes / cr.traffic.tensor(Tensor::Outputs).noc_bytes;
    let ratio_s =
        cs.traffic.tensor(Tensor::Outputs).l2_bytes / cs.traffic.tensor(Tensor::Outputs).noc_bytes;
    assert!(
        ratio_r < ratio_s,
        "reduction axes must collapse psum traffic: {ratio_r} vs {ratio_s}"
    );
}
