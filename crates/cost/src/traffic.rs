//! Per-level, per-tensor traffic analysis.
//!
//! Three boundaries are modeled, mirroring the storage hierarchy of every
//! design in the search space (Fig. 2 of the paper):
//!
//! * **DRAM ↔ L2** — temporal reuse governed by the outermost array
//!   level's loop order/tiling;
//! * **L2 ↔ L1 (NoC)** — temporal reuse governed by the inner array
//!   levels, spatial reuse governed by the parallel dimensions:
//!   a spatial axis whose parallel dim is *irrelevant* to a tensor
//!   multicasts one copy to all its clusters (unique traffic ×1,
//!   deliveries ×s); a *relevant* axis distributes distinct slices
//!   (unique ×s); a *reduction* axis collapses partial sums back to one
//!   result crossing to L2;
//! * **L1 ↔ MAC** — register-level reuse governed by the PE loop order
//!   (the innermost spinning loop pins one operand in a register).

use crate::reuse::{distinct_tiles, fetch_multiplier, level_loops_into};
use crate::scratch::EvalScratch;
use crate::tensor::{Tensor, TENSORS};
use crate::widths::DataWidths;
use naas_accel::Connectivity;
use naas_ir::{ConvSpec, Dim, DimVec};
use naas_mapping::Mapping;
use serde::{Deserialize, Serialize};

/// Traffic of one tensor through the hierarchy, in bytes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TensorTraffic {
    /// Bytes moved between DRAM and L2 (reads for W/I; writes + RMW
    /// re-reads for outputs).
    pub dram_bytes: f64,
    /// Unique bytes crossing the L2 ↔ array boundary (what the NoC
    /// bandwidth must carry; multicast counted once).
    pub l2_bytes: f64,
    /// Total NoC deliveries (per-PE copies; multicast counted per
    /// receiver) — the NoC energy driver.
    pub noc_bytes: f64,
    /// Bytes accessed at the L1 scratch pads (reads + writes, including
    /// fills from the NoC).
    pub l1_bytes: f64,
}

/// Complete traffic breakdown of one layer under one mapping.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TrafficBreakdown {
    /// Per-tensor traffic, indexed `[Weights, Inputs, Outputs]`.
    pub per_tensor: [TensorTraffic; 3],
}

impl TrafficBreakdown {
    /// Traffic of the given tensor.
    pub fn tensor(&self, t: Tensor) -> &TensorTraffic {
        match t {
            Tensor::Weights => &self.per_tensor[0],
            Tensor::Inputs => &self.per_tensor[1],
            Tensor::Outputs => &self.per_tensor[2],
        }
    }

    /// Total DRAM bytes over all tensors.
    pub fn dram_total(&self) -> f64 {
        self.per_tensor.iter().map(|t| t.dram_bytes).sum()
    }

    /// Total unique L2-boundary bytes over all tensors.
    pub fn l2_total(&self) -> f64 {
        self.per_tensor.iter().map(|t| t.l2_bytes).sum()
    }

    /// Total NoC delivery bytes over all tensors.
    pub fn noc_total(&self) -> f64 {
        self.per_tensor.iter().map(|t| t.noc_bytes).sum()
    }

    /// Total L1 access bytes over all tensors.
    pub fn l1_total(&self) -> f64 {
        self.per_tensor.iter().map(|t| t.l1_bytes).sum()
    }
}

/// Computes the full traffic breakdown for `(layer, connectivity,
/// mapping)`. Caller guarantees the mapping is structurally valid for the
/// connectivity (same number of levels).
pub fn analyze(
    layer: &ConvSpec,
    conn: &Connectivity,
    mapping: &Mapping,
    widths: &DataWidths,
) -> TrafficBreakdown {
    analyze_with(&mut EvalScratch::new(), layer, conn, mapping, widths)
}

/// [`analyze`] backed by caller-owned scratch buffers: the tile walk and
/// the flattened loop nests land in [`EvalScratch`] instead of fresh
/// allocations, so a population of candidates reuses one set of buffers.
/// Results are identical to [`analyze`] — the scratch only changes where
/// the intermediates live.
pub fn analyze_with(
    scratch: &mut EvalScratch,
    layer: &ConvSpec,
    conn: &Connectivity,
    mapping: &Mapping,
    widths: &DataWidths,
) -> TrafficBreakdown {
    mapping.tiles_per_level_into(layer, conn, &mut scratch.tiles);
    let l2_tile = scratch.tiles[0];
    let pe_tile = mapping.pe_tile(layer, conn);
    analyze_tiles(scratch, layer, conn, mapping, &l2_tile, &pe_tile, widths)
}

/// The traffic analysis against precomputed tiles; loop nests still land
/// in the scratch buffers. The evaluation hot path computes
/// `l2_tile`/`pe_tile` once per candidate and shares them between the
/// capacity check, this analysis and the compute roofline.
pub fn analyze_tiles(
    scratch: &mut EvalScratch,
    layer: &ConvSpec,
    conn: &Connectivity,
    mapping: &Mapping,
    l2_tile: &DimVec<u64>,
    pe_tile: &DimVec<u64>,
    widths: &DataWidths,
) -> TrafficBreakdown {
    let batch = layer.batch() as f64;
    let l2_tile = *l2_tile;
    let pe_tile = *pe_tile;

    // Outer (DRAM-level) loops: array level 0.
    scratch.outer_loops.clear();
    level_loops_into(
        &mapping.levels()[0].order,
        &mapping.levels()[0].trips,
        &mut scratch.outer_loops,
    );
    // Inner (L2-level) loops: array levels 1..k concatenated outer→inner.
    scratch.inner_loops.clear();
    for spec in &mapping.levels()[1..] {
        level_loops_into(&spec.order, &spec.trips, &mut scratch.inner_loops);
    }
    let outer_loops = &scratch.outer_loops;
    let inner_loops = &scratch.inner_loops;
    let n_l2_tiles: f64 = outer_loops.iter().map(|l| l.trips as f64).product();

    let mut out = TrafficBreakdown::default();
    for (slot, tensor) in TENSORS.into_iter().enumerate() {
        let rel = |d: Dim| tensor.is_relevant(d, layer);
        let bytes = widths.bytes(tensor) as f64;

        // ---- DRAM <-> L2 ----
        let l2_tile_elems = tensor.tile_elems(layer, &l2_tile) as f64;
        let fetches = l2_tile_elems * fetch_multiplier(outer_loops, rel) as f64;
        let dram_bytes = if tensor == Tensor::Outputs {
            let distinct = l2_tile_elems * distinct_tiles(outer_loops, rel) as f64;
            // Every fetch event is a write; revisits additionally re-read.
            (fetches + (fetches - distinct)) * bytes
        } else {
            fetches * bytes
        };

        // ---- L2 <-> L1 over the NoC ----
        let pe_tile_elems = tensor.tile_elems(layer, &pe_tile) as f64;
        let per_pe_fetches = pe_tile_elems * fetch_multiplier(inner_loops, rel) as f64;
        let mut unique_mult = 1.0;
        let mut delivery_mult = 1.0;
        for (l, &p) in conn.parallel_dims().iter().enumerate() {
            let s = conn.sizes()[l] as f64;
            delivery_mult *= s;
            if rel(p) {
                unique_mult *= s;
            }
        }
        let unique_per_l2_tile = per_pe_fetches * unique_mult;
        let (l2_bytes, noc_bytes) = if tensor == Tensor::Outputs {
            // Partial-sum revisits are read-modify-write: the re-read
            // crosses both the L2 port and the NoC (L2 → PE), on top of
            // the write (PE → L2).
            let distinct_unique =
                pe_tile_elems * distinct_tiles(inner_loops, rel) as f64 * unique_mult;
            let rmw_unique = unique_per_l2_tile - distinct_unique;
            let distinct_deliveries =
                pe_tile_elems * distinct_tiles(inner_loops, rel) as f64 * delivery_mult;
            let rmw_deliveries = per_pe_fetches * delivery_mult - distinct_deliveries;
            (
                (unique_per_l2_tile + rmw_unique) * n_l2_tiles * bytes,
                (per_pe_fetches * delivery_mult + rmw_deliveries) * n_l2_tiles * bytes,
            )
        } else {
            (
                unique_per_l2_tile * n_l2_tiles * bytes,
                per_pe_fetches * delivery_mult * n_l2_tiles * bytes,
            )
        };

        // Physical consistency floors: every byte fetched into L2 from
        // DRAM is consumed at least once across the L2 boundary, and
        // every unique L2 byte is delivered to at least one PE. (The two
        // levels' sticky-tile analyses are independent, so without the
        // floors an outer-loop refetch pattern could claim more DRAM
        // traffic than L2 traffic.)
        let l2_bytes = l2_bytes.max(dram_bytes);
        let noc_bytes = noc_bytes.max(l2_bytes);
        out.per_tensor[slot] = TensorTraffic {
            dram_bytes: dram_bytes * batch,
            l2_bytes: l2_bytes * batch,
            noc_bytes: noc_bytes * batch,
            l1_bytes: 0.0, // filled below
        };
    }

    // ---- L1 <-> MAC (register reuse from the PE loop order) ----
    let macs = layer.macs() as f64;
    let spin = innermost_spinning(mapping.pe_order(), &pe_tile);
    for (slot, tensor) in TENSORS.into_iter().enumerate() {
        let rel = |d: Dim| tensor.is_relevant(d, layer);
        let bytes = widths.bytes(tensor) as f64;
        let reuse = match spin {
            Some((dim, extent)) if !rel(dim) => extent as f64,
            _ => 1.0,
        };
        let accesses = match tensor {
            // Weights/inputs: one read per MAC, amortized by register reuse.
            Tensor::Weights | Tensor::Inputs => macs / reuse,
            // Partial sums: read + write per MAC, amortized when the
            // innermost loop is a reduction (accumulator register).
            Tensor::Outputs => 2.0 * macs / reuse,
        };
        // Fills from the NoC also hit L1 once per delivered byte.
        let fills = out.per_tensor[slot].noc_bytes;
        out.per_tensor[slot].l1_bytes = accesses * bytes + fills;
    }

    out
}

/// The innermost PE-level loop that actually iterates (extent > 1),
/// with its extent.
fn innermost_spinning(pe_order: &[Dim; 6], pe_tile: &DimVec<u64>) -> Option<(Dim, u64)> {
    pe_order
        .iter()
        .rev()
        .find(|&&d| pe_tile[d] > 1)
        .map(|&d| (d, pe_tile[d]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use naas_accel::baselines;
    use naas_ir::DIMS;
    use naas_mapping::{LevelSpec, Mapping};

    fn layer() -> ConvSpec {
        ConvSpec::conv2d("c", 64, 128, (28, 28), (3, 3), 1, 1).unwrap()
    }

    fn unit_mapping(levels: usize) -> Mapping {
        Mapping::new(vec![LevelSpec::unit(); levels], DIMS)
    }

    #[test]
    fn dram_traffic_at_least_tensor_size() {
        let l = layer();
        let accel = baselines::nvdla_256();
        let m = Mapping::balanced(&l, &accel);
        let t = analyze(&l, accel.connectivity(), &m, &DataWidths::INT8);
        assert!(t.tensor(Tensor::Weights).dram_bytes >= l.weight_elems() as f64);
        assert!(t.tensor(Tensor::Inputs).dram_bytes >= l.input_elems() as f64);
        assert!(t.tensor(Tensor::Outputs).dram_bytes >= 4.0 * l.output_elems() as f64);
    }

    #[test]
    fn untiled_mapping_reads_each_tensor_once() {
        let l = layer();
        let accel = baselines::nvdla_256();
        let m = unit_mapping(2);
        let t = analyze(&l, accel.connectivity(), &m, &DataWidths::INT8);
        // No temporal loops at level 0 → single fetch of each tile.
        assert_eq!(
            t.tensor(Tensor::Weights).dram_bytes,
            l.weight_elems() as f64
        );
        // Outputs written once, no RMW.
        assert_eq!(
            t.tensor(Tensor::Outputs).dram_bytes,
            4.0 * l.output_elems() as f64
        );
    }

    #[test]
    fn multicast_reduces_unique_but_not_deliveries() {
        let l = layer();
        // NVDLA: C,K parallel. Weights relevant to both → unique × 256.
        // Inputs irrelevant to K → K axis multicasts: unique ×16 only.
        let accel = baselines::nvdla_256();
        let m = unit_mapping(2);
        let t = analyze(&l, accel.connectivity(), &m, &DataWidths::INT8);
        let w = t.tensor(Tensor::Weights);
        let i = t.tensor(Tensor::Inputs);
        assert!(w.l2_bytes >= w.noc_bytes * 0.99); // fully distributed
        assert!(i.noc_bytes > i.l2_bytes * 10.0); // heavy multicast
    }

    #[test]
    fn reduction_axis_collapses_output_writes() {
        let l = layer();
        let accel = baselines::nvdla_256(); // C axis reduces psums
        let m = unit_mapping(2);
        let t = analyze(&l, accel.connectivity(), &m, &DataWidths::INT8);
        let o = t.tensor(Tensor::Outputs);
        // Unique output bytes = K-axis spread only (16), not 256 PEs.
        assert!(o.l2_bytes < o.noc_bytes);
    }

    #[test]
    fn loop_order_changes_dram_traffic() {
        let l = layer();
        let accel = baselines::nvdla_256();
        // Tile K and Y at level 0; weight traffic depends on whether the
        // (weight-irrelevant) Y loop is outside or inside the K loop.
        let mut weights_hot = LevelSpec::unit();
        weights_hot.trips[Dim::K] = 8;
        weights_hot.trips[Dim::Y] = 7;
        weights_hot.order = [Dim::K, Dim::Y, Dim::C, Dim::X, Dim::R, Dim::S];
        let mut weights_cold = weights_hot.clone();
        weights_cold.order = [Dim::Y, Dim::K, Dim::C, Dim::X, Dim::R, Dim::S];

        let hot = analyze(
            &l,
            accel.connectivity(),
            &Mapping::new(vec![weights_hot, LevelSpec::unit()], DIMS),
            &DataWidths::INT8,
        );
        let cold = analyze(
            &l,
            accel.connectivity(),
            &Mapping::new(vec![weights_cold, LevelSpec::unit()], DIMS),
            &DataWidths::INT8,
        );
        let w_hot = hot.tensor(Tensor::Weights).dram_bytes;
        let w_cold = cold.tensor(Tensor::Weights).dram_bytes;
        assert!(
            w_cold > w_hot * 6.0,
            "outer Y loop must refetch weights: hot={w_hot} cold={w_cold}"
        );
    }

    #[test]
    fn pe_register_reuse_follows_innermost_loop() {
        let l = layer();
        let accel = baselines::nvdla_256();
        // PE order ending in C (reduction, extent > 1 after the split):
        // psums accumulate in a register.
        let mut m = unit_mapping(2);
        let t_c_inner = analyze(&l, accel.connectivity(), &m, &DataWidths::INT8);
        // Now make K the innermost spinning dim: psums hit L1 every MAC.
        m = Mapping::new(
            vec![LevelSpec::unit(), LevelSpec::unit()],
            [Dim::C, Dim::Y, Dim::X, Dim::R, Dim::S, Dim::K],
        );
        let t_k_inner = analyze(&l, accel.connectivity(), &m, &DataWidths::INT8);
        assert!(
            t_k_inner.tensor(Tensor::Outputs).l1_bytes > t_c_inner.tensor(Tensor::Outputs).l1_bytes
        );
    }

    #[test]
    fn depthwise_k_axis_does_not_multicast_inputs() {
        let dw = ConvSpec::depthwise("dw", 64, (28, 28), (3, 3), 1, 1).unwrap();
        let std = layer();
        let accel = baselines::nvdla_256();
        let m = unit_mapping(2);
        let t_dw = analyze(&dw, accel.connectivity(), &m, &DataWidths::INT8);
        let t_std = analyze(&std, accel.connectivity(), &m, &DataWidths::INT8);
        // For depthwise, inputs are relevant to K → unique input traffic
        // scales with the K axis too (ratio of noc to l2 smaller).
        let r_dw = t_dw.tensor(Tensor::Inputs).noc_bytes / t_dw.tensor(Tensor::Inputs).l2_bytes;
        let r_std = t_std.tensor(Tensor::Inputs).noc_bytes / t_std.tensor(Tensor::Inputs).l2_bytes;
        assert!(r_dw < r_std);
    }

    #[test]
    fn totals_are_sums_of_tensors() {
        let l = layer();
        let accel = baselines::eyeriss();
        let m = Mapping::balanced(&l, &accel);
        let t = analyze(&l, accel.connectivity(), &m, &DataWidths::INT8);
        let manual: f64 = TENSORS.iter().map(|&x| t.tensor(x).dram_bytes).sum();
        assert_eq!(t.dram_total(), manual);
        assert!(t.l1_total() > 0.0);
        assert!(t.noc_total() >= t.l2_total());
    }
}
