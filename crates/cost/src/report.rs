//! Human-readable cost reports: per-layer breakdown tables and
//! whole-network summaries, for examples, debugging and experiment
//! output.

use crate::model::{LayerCost, NetworkCost};
use crate::tensor::TENSORS;
use naas_ir::Network;
use std::fmt::Write as _;

/// Renders the latency/energy/traffic breakdown of one layer.
///
/// ```
/// use naas_accel::baselines;
/// use naas_cost::{report, CostModel};
/// use naas_ir::ConvSpec;
/// use naas_mapping::Mapping;
///
/// let model = CostModel::new();
/// let accel = baselines::eyeriss();
/// let layer = ConvSpec::conv2d("c", 16, 32, (14, 14), (3, 3), 1, 1)?;
/// let cost = model.evaluate(&layer, &accel, &Mapping::balanced(&layer, &accel))?;
/// let text = report::layer_report(&cost);
/// assert!(text.contains("bound"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn layer_report(cost: &LayerCost) -> String {
    let mut out = String::new();
    let bound =
        if cost.dram_cycles >= cost.compute_cycles as f64 && cost.dram_cycles >= cost.noc_cycles {
            "DRAM"
        } else if cost.noc_cycles >= cost.compute_cycles as f64 {
            "NoC"
        } else {
            "compute"
        };
    let _ = writeln!(
        out,
        "cycles {:>12}  ({} bound: compute {}, noc {:.0}, dram {:.0})",
        cost.cycles, bound, cost.compute_cycles, cost.noc_cycles, cost.dram_cycles
    );
    let _ = writeln!(
        out,
        "energy {:>12.1} nJ   EDP {:.3e} cyc*nJ   utilization {:.1}%",
        cost.energy_pj / 1000.0,
        cost.edp(),
        cost.utilization * 100.0
    );
    let b = &cost.energy_breakdown;
    let pct = |v: f64| 100.0 * v / cost.energy_pj.max(f64::MIN_POSITIVE);
    let _ = writeln!(
        out,
        "energy split: mac {:.0}% | L1 {:.0}% | NoC {:.0}% | L2 {:.0}% | DRAM {:.0}%",
        pct(b.mac_pj),
        pct(b.l1_pj),
        pct(b.noc_pj),
        pct(b.l2_pj),
        pct(b.dram_pj)
    );
    let _ = writeln!(
        out,
        "{:<9} {:>13} {:>13} {:>13} {:>13}",
        "tensor", "DRAM B", "L2 B", "NoC B", "L1 B"
    );
    for t in TENSORS {
        let tr = cost.traffic.tensor(t);
        let _ = writeln!(
            out,
            "{:<9} {:>13.3e} {:>13.3e} {:>13.3e} {:>13.3e}",
            t.to_string(),
            tr.dram_bytes,
            tr.l2_bytes,
            tr.noc_bytes,
            tr.l1_bytes
        );
    }
    out
}

/// Renders a per-layer summary table for a whole network, plus totals.
///
/// # Panics
///
/// Panics if `cost.layers.len() != network.len()`.
pub fn network_report(network: &Network, cost: &NetworkCost) -> String {
    assert_eq!(
        cost.layers.len(),
        network.len(),
        "cost must match the network"
    );
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<22} {:>12} {:>12} {:>10} {:>8}",
        "layer", "cycles", "energy nJ", "EDP", "util %"
    );
    for (layer, c) in network.iter().zip(&cost.layers) {
        let _ = writeln!(
            out,
            "{:<22} {:>12} {:>12.1} {:>10.2e} {:>8.1}",
            truncate(layer.name(), 22),
            c.cycles,
            c.energy_pj / 1000.0,
            c.edp(),
            c.utilization * 100.0
        );
    }
    let _ = writeln!(
        out,
        "{:<22} {:>12} {:>12.1} {:>10.2e}",
        "TOTAL",
        cost.cycles(),
        cost.energy_nj(),
        cost.edp()
    );
    out
}

/// Per-tensor reuse factors achieved by a mapping: how many MACs each
/// byte fetched from a level serves. This is the quantity the paper's
/// loop-order/parallelism search is actually maximizing — higher DRAM
/// reuse is where the energy wins of Fig. 5/6 come from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReuseFactors {
    /// MACs per DRAM byte of this tensor.
    pub dram: f64,
    /// MACs per unique L2-boundary byte.
    pub l2: f64,
    /// MACs per L1-access byte.
    pub l1: f64,
}

/// Computes the reuse factors of each tensor from an evaluated cost,
/// ordered `[Weights, Inputs, Outputs]`.
pub fn reuse_factors(cost: &LayerCost) -> [ReuseFactors; 3] {
    let macs = cost.macs as f64;
    std::array::from_fn(|i| {
        let t = cost.traffic.per_tensor[i];
        ReuseFactors {
            dram: macs / t.dram_bytes.max(f64::MIN_POSITIVE),
            l2: macs / t.l2_bytes.max(f64::MIN_POSITIVE),
            l1: macs / t.l1_bytes.max(f64::MIN_POSITIVE),
        }
    })
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        format!("{}…", &s[..n - 1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::CostModel;
    use naas_accel::baselines;
    use naas_ir::models;
    use naas_mapping::Mapping;

    #[test]
    fn network_report_lists_every_layer() {
        let model = CostModel::new();
        let accel = baselines::nvdla_1024();
        let net = models::cifar_resnet20();
        let mappings: Vec<Mapping> = net.iter().map(|l| Mapping::balanced(l, &accel)).collect();
        let cost = model.evaluate_network(&net, &accel, &mappings).unwrap();
        let text = network_report(&net, &cost);
        assert_eq!(text.lines().count(), net.len() + 2); // header + rows + total
        assert!(text.contains("TOTAL"));
    }

    #[test]
    fn layer_report_names_the_bound() {
        let model = CostModel::new();
        let accel = baselines::edge_tpu();
        let fc = naas_ir::ConvSpec::linear("fc", 2048, 1000).unwrap();
        let cost = model
            .evaluate(&fc, &accel, &Mapping::balanced(&fc, &accel))
            .unwrap();
        // Batch-1 FC is memory bound.
        assert!(layer_report(&cost).contains("DRAM bound"));
    }

    #[test]
    fn truncate_keeps_short_names() {
        assert_eq!(truncate("abc", 5), "abc");
        assert_eq!(truncate("abcdef", 5).chars().count(), 5);
    }

    #[test]
    fn reuse_factors_decrease_down_the_hierarchy() {
        // Bytes get touched more often the closer they sit to the MACs,
        // so MACs-per-byte must be highest at DRAM and lowest at L1.
        let model = CostModel::new();
        let accel = baselines::nvdla_1024();
        let layer = naas_ir::ConvSpec::conv2d("c", 64, 128, (28, 28), (3, 3), 1, 1).unwrap();
        let cost = model
            .evaluate(&layer, &accel, &Mapping::balanced(&layer, &accel))
            .unwrap();
        for f in reuse_factors(&cost) {
            assert!(
                f.dram >= f.l2 * 0.999,
                "dram {:.1} < l2 {:.1}",
                f.dram,
                f.l2
            );
            assert!(f.l2 >= f.l1 * 0.999, "l2 {:.1} < l1 {:.1}", f.l2, f.l1);
            assert!(f.l1 > 0.0);
        }
    }

    #[test]
    fn searched_mappings_reuse_weights_from_dram_maximally() {
        // A weight-stationary-ish balanced mapping should reach the
        // theoretical weight reuse bound: each weight read once from DRAM
        // serves macs/weight_elems MACs.
        let model = CostModel::new();
        let accel = baselines::edge_tpu();
        let layer = naas_ir::ConvSpec::conv2d("c", 128, 128, (28, 28), (3, 3), 1, 1).unwrap();
        let cost = model
            .evaluate(&layer, &accel, &Mapping::balanced(&layer, &accel))
            .unwrap();
        let bound = layer.macs() as f64 / layer.weight_elems() as f64;
        let achieved = reuse_factors(&cost)[0].dram;
        assert!(
            achieved <= bound * 1.001,
            "cannot exceed the reuse bound: {achieved} vs {bound}"
        );
        assert!(achieved > bound * 0.2, "balanced mapping should reuse well");
    }
}
