//! Operand data widths used to convert element counts into bytes.

use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Bytes per element for each operand class.
///
/// Defaults model 8-bit integer inference (the regime of EdgeTPU/NVDLA
/// deployments the paper targets) with 32-bit partial-sum accumulators —
/// the width that actually travels on psum forwarding/reduction links.
///
/// ```
/// use naas_cost::{DataWidths, Tensor};
/// let w = DataWidths::default();
/// assert_eq!(w.bytes(Tensor::Weights), 1);
/// assert_eq!(w.bytes(Tensor::Outputs), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataWidths {
    /// Bytes per weight element.
    pub weight_bytes: u64,
    /// Bytes per input-activation element.
    pub input_bytes: u64,
    /// Bytes per partial-sum/output element.
    pub psum_bytes: u64,
}

impl DataWidths {
    /// 8-bit weights/activations with 32-bit accumulators.
    pub const INT8: DataWidths = DataWidths {
        weight_bytes: 1,
        input_bytes: 1,
        psum_bytes: 4,
    };

    /// 16-bit weights/activations with 32-bit accumulators (Eyeriss-era).
    pub const INT16: DataWidths = DataWidths {
        weight_bytes: 2,
        input_bytes: 2,
        psum_bytes: 4,
    };

    /// Bytes per element of the given tensor.
    pub fn bytes(&self, tensor: Tensor) -> u64 {
        match tensor {
            Tensor::Weights => self.weight_bytes,
            Tensor::Inputs => self.input_bytes,
            Tensor::Outputs => self.psum_bytes,
        }
    }
}

impl Default for DataWidths {
    fn default() -> Self {
        DataWidths::INT8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        assert_eq!(DataWidths::INT8.bytes(Tensor::Inputs), 1);
        assert_eq!(DataWidths::INT16.bytes(Tensor::Weights), 2);
        assert_eq!(DataWidths::default(), DataWidths::INT8);
    }
}
