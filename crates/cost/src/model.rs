//! The top-level cost model: latency, energy and EDP per layer/network.

use crate::capacity::{self, CapacityViolation};
use crate::energy::EnergyTable;
use crate::scratch::EvalScratch;
use crate::traffic::{self, TrafficBreakdown};
use crate::widths::DataWidths;
use naas_accel::Accelerator;
use naas_ir::{ConvSpec, Network};
use naas_mapping::{Mapping, MappingError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Error evaluating a `(layer, accelerator, mapping)` triple.
#[derive(Debug, Clone, PartialEq)]
pub enum CostError {
    /// The mapping is structurally invalid for the design.
    Mapping(MappingError),
    /// A working set does not fit its scratch pad.
    Capacity(CapacityViolation),
    /// A network evaluation was given the wrong number of mappings.
    LayerCountMismatch {
        /// Layers in the network.
        expected: usize,
        /// Mappings supplied.
        got: usize,
    },
}

impl fmt::Display for CostError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CostError::Mapping(e) => write!(f, "invalid mapping: {e}"),
            CostError::Capacity(v) => write!(f, "capacity exceeded: {v}"),
            CostError::LayerCountMismatch { expected, got } => {
                write!(
                    f,
                    "network has {expected} layers but {got} mappings were supplied"
                )
            }
        }
    }
}

impl std::error::Error for CostError {}

impl From<MappingError> for CostError {
    fn from(e: MappingError) -> Self {
        CostError::Mapping(e)
    }
}

impl From<CapacityViolation> for CostError {
    fn from(v: CapacityViolation) -> Self {
        CostError::Capacity(v)
    }
}

/// Energy decomposition by hardware component, in picojoules.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Multiply-accumulate datapath energy.
    pub mac_pj: f64,
    /// PE-private scratch-pad accesses.
    pub l1_pj: f64,
    /// NoC deliveries (multicast copies and reduction hops included).
    pub noc_pj: f64,
    /// Shared scratch-pad accesses (both ports: array side and DRAM side).
    pub l2_pj: f64,
    /// Off-chip DRAM accesses — usually the dominant term the mapping
    /// search fights to shrink.
    pub dram_pj: f64,
}

impl EnergyBreakdown {
    /// Total energy in picojoules.
    pub fn total_pj(&self) -> f64 {
        self.mac_pj + self.l1_pj + self.noc_pj + self.l2_pj + self.dram_pj
    }
}

/// Cost estimate for one layer under one mapping.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayerCost {
    /// Useful multiply-accumulates (exact, from the layer shape).
    pub macs: u64,
    /// Serial MAC issues per PE × temporal trips — the compute roofline.
    pub compute_cycles: u64,
    /// DRAM-traffic roofline in cycles.
    pub dram_cycles: f64,
    /// NoC-traffic roofline in cycles.
    pub noc_cycles: f64,
    /// Final latency: max of the rooflines plus pipeline fill.
    pub cycles: u64,
    /// Compute-array utilization = macs / (compute_cycles × #PEs) ∈ (0,1].
    pub utilization: f64,
    /// Total energy in picojoules.
    pub energy_pj: f64,
    /// Energy decomposed by hardware component.
    pub energy_breakdown: EnergyBreakdown,
    /// Per-tensor, per-level traffic detail.
    pub traffic: TrafficBreakdown,
}

impl LayerCost {
    /// Energy-delay product in `cycles · nJ` — the reward the NAAS
    /// optimizers minimize and the unit of the paper's Table III.
    pub fn edp(&self) -> f64 {
        self.cycles as f64 * self.energy_pj / 1000.0
    }
}

/// Aggregate cost of a whole network (sum over layers; each layer may use
/// its own mapping, per §II-B: "we optimize the mapping for each layer
/// independently").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkCost {
    /// Per-layer costs in network order.
    pub layers: Vec<LayerCost>,
}

impl NetworkCost {
    /// Total latency in cycles.
    pub fn cycles(&self) -> u64 {
        self.layers.iter().map(|l| l.cycles).sum()
    }

    /// Total energy in picojoules.
    pub fn energy_pj(&self) -> f64 {
        self.layers.iter().map(|l| l.energy_pj).sum()
    }

    /// Total energy in nanojoules.
    pub fn energy_nj(&self) -> f64 {
        self.energy_pj() / 1000.0
    }

    /// Whole-network energy-delay product in `cycles · nJ`.
    pub fn edp(&self) -> f64 {
        self.cycles() as f64 * self.energy_nj()
    }
}

/// The analytical cost model (MAESTRO-class substitute; see DESIGN.md §4).
///
/// Construct once and reuse — evaluation is allocation-light and takes
/// microseconds per layer, which is what lets NAAS afford millions of
/// samples per search (Table IV).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    energy: EnergyTable,
    widths: DataWidths,
    /// Fixed pipeline-fill overhead added to every layer's latency.
    pipeline_fill: u64,
}

impl CostModel {
    /// Cost model with default energy table (Eyeriss ladder) and widths
    /// (8-bit inference).
    pub fn new() -> Self {
        CostModel {
            energy: EnergyTable::default(),
            widths: DataWidths::default(),
            pipeline_fill: 32,
        }
    }

    /// Replaces the energy table.
    pub fn with_energy(mut self, energy: EnergyTable) -> Self {
        self.energy = energy;
        self
    }

    /// Replaces the operand widths.
    pub fn with_widths(mut self, widths: DataWidths) -> Self {
        self.widths = widths;
        self
    }

    /// The energy table in use.
    pub fn energy(&self) -> &EnergyTable {
        &self.energy
    }

    /// The operand widths in use.
    pub fn widths(&self) -> &DataWidths {
        &self.widths
    }

    /// Evaluates one layer under one mapping.
    ///
    /// This is a thin wrapper over the scratch-backed path
    /// ([`CostModel::evaluate_with`]) with a stack-local scratch, so the
    /// scalar and batched entry points share one implementation and give
    /// bit-identical results.
    ///
    /// # Errors
    ///
    /// [`CostError::Mapping`] if the mapping does not structurally match
    /// the design; [`CostError::Capacity`] if a working set overflows its
    /// buffer (the signal NAAS uses to resample invalid candidates).
    pub fn evaluate(
        &self,
        layer: &ConvSpec,
        accel: &Accelerator,
        mapping: &Mapping,
    ) -> Result<LayerCost, CostError> {
        self.evaluate_with(&mut EvalScratch::new(), layer, accel, mapping)
    }

    /// [`CostModel::evaluate`] backed by caller-owned scratch buffers —
    /// the hot-loop entry point. One [`EvalScratch`] amortizes the
    /// intermediate allocations over every evaluation that shares it.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CostModel::evaluate`].
    pub fn evaluate_with(
        &self,
        scratch: &mut EvalScratch,
        layer: &ConvSpec,
        accel: &Accelerator,
        mapping: &Mapping,
    ) -> Result<LayerCost, CostError> {
        mapping.validate(accel)?;
        let conn = accel.connectivity();
        // One tile computation shared by the capacity check, the traffic
        // analysis and the compute roofline (the scalar path used to walk
        // the hierarchy three times per call).
        let pe_tile = mapping.pe_tile(layer, conn);
        let l2_tile = mapping.l2_tile(layer);
        capacity::check_tiles(layer, accel, &pe_tile, &l2_tile, &self.widths)?;

        let traffic = traffic::analyze_tiles(
            scratch,
            layer,
            conn,
            mapping,
            &l2_tile,
            &pe_tile,
            &self.widths,
        );

        // Compute roofline: every PE serially issues its tile, for every
        // temporal iteration of every level (ceil losses included).
        let trips_total: u64 = mapping.levels().iter().map(|l| l.trips.product()).product();
        let compute_cycles = layer.batch() * trips_total * pe_tile.product();

        let sizing = accel.sizing();
        let dram_cycles = traffic.dram_total() / sizing.dram_bandwidth();
        let noc_cycles = traffic.l2_total() / sizing.noc_bandwidth();

        let fill = self.pipeline_fill + conn.sizes().iter().sum::<u64>();
        let cycles = (compute_cycles as f64)
            .max(dram_cycles)
            .max(noc_cycles)
            .ceil() as u64
            + fill;

        let macs = layer.macs();
        let utilization = macs as f64 / (compute_cycles as f64 * accel.pe_count() as f64);

        let e = &self.energy;
        let energy_breakdown = EnergyBreakdown {
            mac_pj: macs as f64 * e.mac_pj,
            l1_pj: traffic.l1_total() * e.l1_pj,
            noc_pj: traffic.noc_total() * e.noc_pj,
            l2_pj: (traffic.l2_total() + traffic.dram_total()) * e.l2_pj,
            dram_pj: traffic.dram_total() * e.dram_pj,
        };
        let energy_pj = energy_breakdown.total_pj();

        Ok(LayerCost {
            macs,
            compute_cycles,
            dram_cycles,
            noc_cycles,
            cycles,
            utilization,
            energy_pj,
            energy_breakdown,
            traffic,
        })
    }

    /// Scores a whole candidate population of mappings for one layer in
    /// one call — the batch-evaluate step of the search pipeline. Results
    /// land in `out` (cleared first) in population order, one
    /// `Result` per mapping, each bit-identical to what the scalar
    /// [`CostModel::evaluate`] returns for that mapping.
    pub fn evaluate_batch(
        &self,
        layer: &ConvSpec,
        accel: &Accelerator,
        mappings: &[Mapping],
        scratch: &mut EvalScratch,
        out: &mut Vec<Result<LayerCost, CostError>>,
    ) {
        out.clear();
        for mapping in mappings {
            out.push(self.evaluate_with(scratch, layer, accel, mapping));
        }
    }

    /// Evaluates a whole network with one mapping per layer.
    ///
    /// # Errors
    ///
    /// [`CostError::LayerCountMismatch`] if `mappings.len() !=
    /// network.len()`; otherwise propagates the first per-layer error.
    pub fn evaluate_network(
        &self,
        network: &Network,
        accel: &Accelerator,
        mappings: &[Mapping],
    ) -> Result<NetworkCost, CostError> {
        if mappings.len() != network.len() {
            return Err(CostError::LayerCountMismatch {
                expected: network.len(),
                got: mappings.len(),
            });
        }
        let layers = network
            .iter()
            .zip(mappings)
            .map(|(layer, mapping)| self.evaluate(layer, accel, mapping))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(NetworkCost { layers })
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use naas_accel::baselines;
    use naas_ir::models;

    fn layer() -> ConvSpec {
        ConvSpec::conv2d("c", 64, 128, (28, 28), (3, 3), 1, 1).unwrap()
    }

    fn eval(accel: &Accelerator, l: &ConvSpec) -> LayerCost {
        let m = Mapping::balanced(l, accel);
        CostModel::new().evaluate(l, accel, &m).expect("valid")
    }

    #[test]
    fn latency_at_least_compute_bound() {
        let accel = baselines::nvdla_256();
        let l = layer();
        let c = eval(&accel, &l);
        let ideal = l.macs() / accel.pe_count();
        assert!(c.cycles as u64 >= ideal, "can't beat the compute bound");
        assert!(c.utilization > 0.0 && c.utilization <= 1.0);
    }

    #[test]
    fn energy_at_least_mac_energy() {
        let accel = baselines::nvdla_256();
        let l = layer();
        let c = eval(&accel, &l);
        let mac_floor = l.macs() as f64 * CostModel::new().energy().mac_pj;
        assert!(c.energy_pj > mac_floor);
    }

    #[test]
    fn energy_breakdown_sums_to_total() {
        let accel = baselines::eyeriss();
        let c = eval(&accel, &layer());
        let b = c.energy_breakdown;
        assert!((b.total_pj() - c.energy_pj).abs() < 1e-6 * c.energy_pj);
        for (name, v) in [
            ("mac", b.mac_pj),
            ("l1", b.l1_pj),
            ("noc", b.noc_pj),
            ("l2", b.l2_pj),
            ("dram", b.dram_pj),
        ] {
            assert!(v > 0.0, "{name} component must be positive");
        }
    }

    #[test]
    fn edp_is_cycles_times_nj() {
        let accel = baselines::eyeriss();
        let l = layer();
        let c = eval(&accel, &l);
        assert!((c.edp() - c.cycles as f64 * c.energy_pj / 1000.0).abs() < 1e-6);
    }

    #[test]
    fn more_pes_do_not_hurt_compute_roofline() {
        let l = layer();
        let small = eval(&baselines::nvdla_256(), &l);
        let big = eval(&baselines::nvdla_1024(), &l);
        assert!(big.compute_cycles <= small.compute_cycles);
    }

    #[test]
    fn invalid_capacity_is_reported() {
        use naas_ir::DIMS;
        use naas_mapping::LevelSpec;
        let accel = baselines::eyeriss();
        let l = layer();
        let untiled = Mapping::new(vec![LevelSpec::unit(), LevelSpec::unit()], DIMS);
        let err = CostModel::new().evaluate(&l, &accel, &untiled).unwrap_err();
        assert!(matches!(err, CostError::Capacity(_)));
    }

    #[test]
    fn wrong_level_count_is_reported() {
        use naas_ir::DIMS;
        use naas_mapping::LevelSpec;
        let accel = baselines::eyeriss();
        let err = CostModel::new()
            .evaluate(
                &layer(),
                &accel,
                &Mapping::new(vec![LevelSpec::unit()], DIMS),
            )
            .unwrap_err();
        assert!(matches!(err, CostError::Mapping(_)));
    }

    #[test]
    fn network_cost_sums_layers() {
        let accel = baselines::nvdla_1024();
        let net = models::cifar_resnet20();
        let mappings: Vec<Mapping> = net.iter().map(|l| Mapping::balanced(l, &accel)).collect();
        let cost = CostModel::new()
            .evaluate_network(&net, &accel, &mappings)
            .expect("valid");
        assert_eq!(cost.layers.len(), net.len());
        let manual_cycles: u64 = cost.layers.iter().map(|l| l.cycles).sum();
        assert_eq!(cost.cycles(), manual_cycles);
        assert!(cost.edp() > 0.0);
    }

    #[test]
    fn depthwise_layers_evaluate() {
        let accel = baselines::eyeriss();
        let dw = ConvSpec::depthwise("dw", 96, (56, 56), (3, 3), 1, 1).unwrap();
        let c = eval(&accel, &dw);
        assert!(c.cycles > 0);
        assert_eq!(c.macs, 96 * 56 * 56 * 9);
    }

    #[test]
    fn fc_layers_evaluate() {
        let accel = baselines::edge_tpu();
        let fc = ConvSpec::linear("fc", 2048, 1000).unwrap();
        let c = eval(&accel, &fc);
        // FC at batch 1 is memory-bound: DRAM roofline dominates.
        assert!(c.dram_cycles > c.compute_cycles as f64);
    }
}
