//! Sensitivity sweeps: how a design's cost moves as one resource knob
//! scales — the designer-facing companion to the search loops.
//!
//! Each sweep re-evaluates a fixed `(layer, mapping)` pair across a range
//! of one sizing knob, producing the series a roofline plot is made of.

use crate::model::{CostModel, LayerCost};
use naas_accel::{Accelerator, ArchitecturalSizing};
use naas_ir::ConvSpec;
use naas_mapping::Mapping;
use serde::{Deserialize, Serialize};

/// One sweep sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// The swept knob's value.
    pub value: f64,
    /// Cost at that value (`None` if the working set no longer fits).
    pub cost: Option<LayerCost>,
}

/// Sweeps NoC bandwidth multiplicatively over `factors` (e.g.
/// `[0.25, 0.5, 1.0, 2.0, 4.0]`), holding everything else fixed.
///
/// ```
/// use naas_accel::baselines;
/// use naas_cost::{sweep, CostModel};
/// use naas_ir::ConvSpec;
/// use naas_mapping::Mapping;
///
/// let model = CostModel::new();
/// let accel = baselines::eyeriss();
/// let layer = ConvSpec::conv2d("c", 32, 64, (28, 28), (3, 3), 1, 1)?;
/// let mapping = Mapping::balanced(&layer, &accel);
/// let series = sweep::noc_bandwidth(&model, &layer, &accel, &mapping, &[0.5, 1.0, 2.0]);
/// assert_eq!(series.len(), 3);
/// # Ok::<(), naas_ir::ShapeError>(())
/// ```
pub fn noc_bandwidth(
    model: &CostModel,
    layer: &ConvSpec,
    accel: &Accelerator,
    mapping: &Mapping,
    factors: &[f64],
) -> Vec<SweepPoint> {
    factors
        .iter()
        .map(|&f| {
            let s = accel.sizing();
            let sized = ArchitecturalSizing::new(
                s.l1_bytes(),
                s.l2_bytes(),
                s.noc_bandwidth() * f,
                s.dram_bandwidth(),
            );
            let variant = Accelerator::new(
                format!("{}_noc{f}", accel.name()),
                sized,
                accel.connectivity().clone(),
            );
            SweepPoint {
                value: s.noc_bandwidth() * f,
                cost: model.evaluate(layer, &variant, mapping).ok(),
            }
        })
        .collect()
}

/// Sweeps DRAM bandwidth multiplicatively over `factors`.
pub fn dram_bandwidth(
    model: &CostModel,
    layer: &ConvSpec,
    accel: &Accelerator,
    mapping: &Mapping,
    factors: &[f64],
) -> Vec<SweepPoint> {
    factors
        .iter()
        .map(|&f| {
            let s = accel.sizing();
            let sized = ArchitecturalSizing::new(
                s.l1_bytes(),
                s.l2_bytes(),
                s.noc_bandwidth(),
                s.dram_bandwidth() * f,
            );
            let variant = Accelerator::new(
                format!("{}_dram{f}", accel.name()),
                sized,
                accel.connectivity().clone(),
            );
            SweepPoint {
                value: s.dram_bandwidth() * f,
                cost: model.evaluate(layer, &variant, mapping).ok(),
            }
        })
        .collect()
}

/// Sweeps L1 capacity multiplicatively over `factors`. Points where the
/// mapping's working set no longer fits come back with `cost: None` —
/// the capacity wall made visible.
pub fn l1_capacity(
    model: &CostModel,
    layer: &ConvSpec,
    accel: &Accelerator,
    mapping: &Mapping,
    factors: &[f64],
) -> Vec<SweepPoint> {
    factors
        .iter()
        .map(|&f| {
            let s = accel.sizing();
            let l1 = ((s.l1_bytes() as f64 * f) as u64).max(16);
            let sized =
                ArchitecturalSizing::new(l1, s.l2_bytes(), s.noc_bandwidth(), s.dram_bandwidth());
            let variant = Accelerator::new(
                format!("{}_l1x{f}", accel.name()),
                sized,
                accel.connectivity().clone(),
            );
            SweepPoint {
                value: l1 as f64,
                cost: model.evaluate(layer, &variant, mapping).ok(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use naas_accel::baselines;

    fn setup() -> (CostModel, ConvSpec, Accelerator, Mapping) {
        let model = CostModel::new();
        let accel = baselines::eyeriss();
        let layer = ConvSpec::conv2d("c", 64, 128, (28, 28), (3, 3), 1, 1).unwrap();
        let mapping = Mapping::balanced(&layer, &accel);
        (model, layer, accel, mapping)
    }

    #[test]
    fn more_noc_bandwidth_never_hurts() {
        let (model, layer, accel, mapping) = setup();
        let series = noc_bandwidth(
            &model,
            &layer,
            &accel,
            &mapping,
            &[0.25, 0.5, 1.0, 2.0, 4.0],
        );
        let cycles: Vec<u64> = series
            .iter()
            .map(|p| p.cost.expect("bandwidth change never invalidates").cycles)
            .collect();
        for w in cycles.windows(2) {
            assert!(w[1] <= w[0], "latency must be non-increasing: {cycles:?}");
        }
    }

    #[test]
    fn bandwidth_saturates_at_compute_bound() {
        let (model, layer, accel, mapping) = setup();
        let series = dram_bandwidth(&model, &layer, &accel, &mapping, &[1.0, 64.0, 256.0]);
        let last = series.last().unwrap().cost.unwrap();
        // With absurd bandwidth, compute is the binding roofline.
        assert!(last.dram_cycles <= last.compute_cycles as f64);
    }

    #[test]
    fn shrinking_l1_hits_capacity_wall() {
        let (model, layer, accel, mapping) = setup();
        let series = l1_capacity(&model, &layer, &accel, &mapping, &[1.0, 0.25, 0.03]);
        assert!(series[0].cost.is_some(), "nominal L1 fits");
        assert!(
            series.last().unwrap().cost.is_none(),
            "3% of L1 must not fit the working set"
        );
    }

    #[test]
    fn energy_is_bandwidth_invariant() {
        let (model, layer, accel, mapping) = setup();
        let series = noc_bandwidth(&model, &layer, &accel, &mapping, &[0.5, 2.0]);
        let e: Vec<f64> = series.iter().map(|p| p.cost.unwrap().energy_pj).collect();
        assert!((e[0] - e[1]).abs() < 1e-6 * e[0]);
    }
}
