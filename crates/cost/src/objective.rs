//! The multi-objective view of one candidate evaluation.
//!
//! NAAS (§III-B) collapses a candidate's per-network EDPs into one
//! scalar reward before the optimizer ever sees them. That scalar is a
//! *policy* — one way of flattening the latency/energy/area/accuracy
//! trade-off surface accelerator co-design actually navigates. This
//! module keeps the surface: every candidate evaluation produces an
//! [`ObjectiveVector`] alongside the scalar, and the search layers above
//! decide whether to scalarize it (the default, bit-identical to the
//! historical reward) or to archive the non-dominated front
//! (`naas::pareto`).
//!
//! Orientation is fixed once, here: **latency, energy and area are
//! minimized; accuracy is maximized.** Every dominance comparison in the
//! workspace goes through [`ObjectiveVector::dominates`], so no caller
//! re-derives (and silently flips) the orientation.

use crate::model::NetworkCost;
use serde::{Deserialize, Serialize};

/// The four objectives of one candidate evaluation.
///
/// Latency and energy are summed over the benchmark suite (every
/// network the candidate was scored against, in `cycles` and `nJ`);
/// area is the candidate design's estimated silicon area in µm²; and
/// `accuracy` is the matched subnet's predicted top-1 accuracy in
/// percent — fixed at [`ObjectiveVector::NO_ACCURACY`] for
/// accelerator-only searches, where the workload is given rather than
/// searched (equal values are dominance-neutral, so the comparison
/// degrades to the three cost axes).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ObjectiveVector {
    /// Total suite latency in cycles (minimized).
    pub latency_cycles: u64,
    /// Total suite energy in nanojoules (minimized).
    pub energy_nj: f64,
    /// Estimated silicon area of the design in µm² (minimized).
    pub area_um2: f64,
    /// Predicted top-1 accuracy in percent (maximized);
    /// [`ObjectiveVector::NO_ACCURACY`] when no NAS level supplies one.
    pub accuracy: f64,
}

impl ObjectiveVector {
    /// The accuracy placeholder of accelerator-only searches: a real,
    /// finite constant (never NaN — vectors must stay comparable and
    /// serializable bit-exactly), equal for every candidate so it can
    /// never decide a dominance comparison.
    pub const NO_ACCURACY: f64 = 0.0;

    /// Builds the vector for a suite evaluation: latency and energy
    /// summed over `per_network` in suite order, with the design's
    /// `area_um2` and the matched `accuracy` supplied by the caller
    /// (pass [`ObjectiveVector::NO_ACCURACY`] when there is none).
    pub fn from_suite(per_network: &[NetworkCost], area_um2: f64, accuracy: f64) -> Self {
        ObjectiveVector {
            latency_cycles: per_network.iter().map(NetworkCost::cycles).sum(),
            energy_nj: per_network.iter().map(NetworkCost::energy_nj).sum(),
            area_um2,
            accuracy,
        }
    }

    /// Pareto dominance under the fixed orientation (minimize latency,
    /// energy, area; maximize accuracy): `true` iff `self` is no worse
    /// on every objective and strictly better on at least one.
    pub fn dominates(&self, other: &Self) -> bool {
        let no_worse = self.latency_cycles <= other.latency_cycles
            && self.energy_nj <= other.energy_nj
            && self.area_um2 <= other.area_um2
            && self.accuracy >= other.accuracy;
        let better = self.latency_cycles < other.latency_cycles
            || self.energy_nj < other.energy_nj
            || self.area_um2 < other.area_um2
            || self.accuracy > other.accuracy;
        no_worse && better
    }

    /// Validates a vector that crossed a trust boundary (the
    /// `evaluate_shard` wire): every float must be finite, the cost
    /// axes strictly positive, accuracy non-negative. Locally computed
    /// vectors satisfy this by construction; wire-sourced ones are
    /// checked at the deserialization seam so a malformed worker reply
    /// becomes a shard error (re-issued elsewhere), never a panic
    /// inside the coordinator's aggregation code.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.latency_cycles == 0 {
            return Err("latency_cycles must be positive".to_string());
        }
        for (name, v, positive) in [
            ("energy_nj", self.energy_nj, true),
            ("area_um2", self.area_um2, true),
            ("accuracy", self.accuracy, false),
        ] {
            if !v.is_finite() {
                return Err(format!("{name} must be finite, got {v}"));
            }
            if positive && v <= 0.0 {
                return Err(format!("{name} must be positive, got {v}"));
            }
            if !positive && v < 0.0 {
                return Err(format!("{name} must be non-negative, got {v}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(lat: u64, e: f64, a: f64, acc: f64) -> ObjectiveVector {
        ObjectiveVector {
            latency_cycles: lat,
            energy_nj: e,
            area_um2: a,
            accuracy: acc,
        }
    }

    #[test]
    fn dominance_requires_strict_improvement_somewhere() {
        let base = v(100, 10.0, 1.0, 70.0);
        assert!(!base.dominates(&base), "a vector never dominates itself");
        assert!(v(99, 10.0, 1.0, 70.0).dominates(&base));
        assert!(
            v(100, 10.0, 1.0, 71.0).dominates(&base),
            "higher accuracy dominates"
        );
        assert!(
            !v(99, 11.0, 1.0, 70.0).dominates(&base),
            "trade-offs are incomparable"
        );
        assert!(!base.dominates(&v(99, 11.0, 1.0, 70.0)));
    }

    #[test]
    fn from_suite_sums_networks() {
        use crate::model::{CostModel, NetworkCost};
        use naas_accel::baselines;
        use naas_ir::models;
        use naas_mapping::Mapping;
        let model = CostModel::new();
        let accel = baselines::nvdla_1024();
        let net = models::cifar_resnet20();
        let mappings: Vec<Mapping> = net.iter().map(|l| Mapping::balanced(l, &accel)).collect();
        let cost = model.evaluate_network(&net, &accel, &mappings).unwrap();
        let suite = [cost.clone(), cost.clone()];
        let o = ObjectiveVector::from_suite(&suite, 5.0e6, ObjectiveVector::NO_ACCURACY);
        assert_eq!(o.latency_cycles, 2 * NetworkCost::cycles(&cost));
        assert!((o.energy_nj - 2.0 * cost.energy_nj()).abs() < 1e-9 * o.energy_nj);
        assert_eq!(o.area_um2, 5.0e6);
        assert!(o.validate().is_ok());
    }

    #[test]
    fn validate_rejects_wire_poison() {
        let good = v(100, 10.0, 1.0, 70.0);
        assert!(good.validate().is_ok());
        assert!(v(0, 10.0, 1.0, 70.0).validate().is_err());
        assert!(v(100, f64::NAN, 1.0, 70.0).validate().is_err());
        assert!(v(100, 10.0, -1.0, 70.0).validate().is_err());
        assert!(v(100, 10.0, 1.0, f64::INFINITY).validate().is_err());
        assert!(v(100, 10.0, 1.0, -0.5).validate().is_err());
        assert!(v(100, -10.0, 1.0, 70.0).validate().is_err());
    }

    #[test]
    fn round_trips_through_serde() {
        let o = v(12345, 6.75, 9.5e6, 76.25);
        let json = serde_json::to_string(&o).unwrap();
        let back: ObjectiveVector = serde_json::from_str(&json).unwrap();
        assert_eq!(o, back);
    }
}
