//! Temporal-reuse analysis: the sticky-tile fetch-count model.
//!
//! For a loop nest `l₁ … l_m` (outermost first) executing over tiles of a
//! tensor `T`, the child buffer refetches `T`'s tile every time a loop
//! *relevant* to `T` advances — and also when an *irrelevant* loop outside
//! the innermost relevant loop wraps around (the buffer has moved on, so
//! the revisit must re-fetch). Loops strictly inside the innermost
//! relevant loop spin without changing `T`'s tile: free temporal reuse.
//!
//! Hence the closed form used across the Timeloop/MAESTRO family:
//!
//! ```text
//! fetch_multiplier(T) = Π trips(l₁ ..= l_q),   l_q = innermost loop relevant to T
//!                     = 1                      if no relevant loop exists
//! ```
//!
//! Loops with a single trip are no-ops and are skipped. This is what makes
//! *loop order* a first-class search dimension: moving an irrelevant loop
//! inward converts refetches into reuse.

use naas_ir::{Dim, DimVec};

/// One temporal loop: a dimension and its trip count at this level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Loop {
    /// The tensor dimension this loop iterates.
    pub dim: Dim,
    /// Number of iterations (tiles) at this level.
    pub trips: u64,
}

/// Flattens a level's `(order, trips)` into the loop list, skipping
/// single-trip loops.
pub fn level_loops(order: &[Dim; 6], trips: &DimVec<u64>) -> Vec<Loop> {
    let mut out = Vec::new();
    level_loops_into(order, trips, &mut out);
    out
}

/// [`level_loops`] appending into a caller-owned buffer — levels 1..k of
/// a mapping concatenate into one nest, so this *appends* (callers clear
/// between candidates; the scratch-backed traffic analysis reuses one
/// buffer across a whole population).
pub fn level_loops_into(order: &[Dim; 6], trips: &DimVec<u64>, out: &mut Vec<Loop>) {
    out.extend(order.iter().filter_map(|&dim| {
        let t = trips[dim];
        (t > 1).then_some(Loop { dim, trips: t })
    }));
}

/// The fetch multiplier for a tensor with the given relevance predicate
/// over an ordered loop nest (outermost first).
///
/// ```
/// use naas_cost::reuse::{fetch_multiplier, Loop};
/// use naas_ir::Dim;
/// // for k in 0..4 { for c in 0..8 { use W[k][c] } } — W relevant to both:
/// let loops = [Loop { dim: Dim::K, trips: 4 }, Loop { dim: Dim::C, trips: 8 }];
/// assert_eq!(fetch_multiplier(&loops, |d| matches!(d, Dim::K | Dim::C)), 32);
/// // Outputs (relevant to K only): the inner C loop reuses the K tile.
/// assert_eq!(fetch_multiplier(&loops, |d| matches!(d, Dim::K)), 4);
/// // Swap order: C outside K forces a refetch of outputs every c step.
/// let swapped = [Loop { dim: Dim::C, trips: 8 }, Loop { dim: Dim::K, trips: 4 }];
/// assert_eq!(fetch_multiplier(&swapped, |d| matches!(d, Dim::K)), 32);
/// ```
pub fn fetch_multiplier(loops: &[Loop], mut relevant: impl FnMut(Dim) -> bool) -> u64 {
    let Some(last_relevant) = loops.iter().rposition(|l| relevant(l.dim)) else {
        return 1;
    };
    loops[..=last_relevant].iter().map(|l| l.trips).product()
}

/// Number of *distinct* tiles of a tensor touched by a loop nest: the
/// product of trips of relevant loops only. Refetches beyond this count
/// are read-modify-write revisits (outputs) or re-reads (inputs/weights).
pub fn distinct_tiles(loops: &[Loop], mut relevant: impl FnMut(Dim) -> bool) -> u64 {
    loops
        .iter()
        .filter(|l| relevant(l.dim))
        .map(|l| l.trips)
        .product()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(loops: &[(Dim, u64)]) -> Vec<Loop> {
        loops
            .iter()
            .map(|&(dim, trips)| Loop { dim, trips })
            .collect()
    }

    #[test]
    fn no_relevant_loop_means_single_fetch() {
        let loops = mk(&[(Dim::C, 8), (Dim::R, 3)]);
        assert_eq!(fetch_multiplier(&loops, |d| d == Dim::K), 1);
    }

    #[test]
    fn inner_irrelevant_loops_are_free() {
        let loops = mk(&[(Dim::K, 4), (Dim::C, 8), (Dim::R, 3)]);
        // Outputs relevant to K only: C,R inner → reuse.
        assert_eq!(fetch_multiplier(&loops, |d| d == Dim::K), 4);
    }

    #[test]
    fn outer_irrelevant_loops_force_refetch() {
        let loops = mk(&[(Dim::C, 8), (Dim::K, 4)]);
        // Outputs relevant to K; C outside K multiplies fetches.
        assert_eq!(fetch_multiplier(&loops, |d| d == Dim::K), 32);
        // Distinct output tiles stay 4 — the extra 28 are RMW revisits.
        assert_eq!(distinct_tiles(&loops, |d| d == Dim::K), 4);
    }

    #[test]
    fn single_trip_loops_are_skipped() {
        let order = naas_ir::DIMS;
        let mut trips = DimVec::splat(1u64);
        trips[Dim::Y] = 7;
        let loops = level_loops(&order, &trips);
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].dim, Dim::Y);
    }

    #[test]
    fn multiplier_bounded_by_total_trips() {
        let loops = mk(&[(Dim::K, 4), (Dim::C, 8), (Dim::Y, 7), (Dim::R, 3)]);
        let total: u64 = loops.iter().map(|l| l.trips).product();
        for rel in [
            |d: Dim| d == Dim::K,
            |d: Dim| matches!(d, Dim::K | Dim::C),
            |d: Dim| matches!(d, Dim::C | Dim::Y | Dim::R),
        ] {
            let m = fetch_multiplier(&loops, rel);
            assert!(m >= 1 && m <= total);
            assert!(m >= distinct_tiles(&loops, rel));
        }
    }

    #[test]
    fn reordering_only_changes_irrelevant_placement() {
        // Weights relevant to K,C. Y placement decides refetch.
        let y_outside = mk(&[(Dim::Y, 7), (Dim::K, 4), (Dim::C, 8)]);
        let y_inside = mk(&[(Dim::K, 4), (Dim::C, 8), (Dim::Y, 7)]);
        let rel = |d: Dim| matches!(d, Dim::K | Dim::C);
        assert_eq!(fetch_multiplier(&y_outside, rel), 7 * 32);
        assert_eq!(fetch_multiplier(&y_inside, rel), 32);
    }
}
