//! # naas-cost — analytical dataflow-accelerator cost model
//!
//! The hardware evaluation environment of the NAAS loop. The paper uses
//! MAESTRO [Kwon et al., ISCA 2019] as its backend; this crate is a
//! from-scratch analytical model of the same class (see `DESIGN.md` §4 for
//! the substitution argument). Given a `(layer, accelerator, mapping)`
//! triple it produces deterministic estimates of:
//!
//! * **latency** in cycles — a roofline over serial compute, NoC traffic
//!   and DRAM traffic, with ceil-division utilization losses;
//! * **energy** in pJ — per-access costs at every storage level plus MAC
//!   and NoC delivery energy (Eyeriss-style energy ladder);
//! * **EDP** — the product the NAAS optimizers minimize;
//! * a full **traffic breakdown** per tensor and level, for inspection.
//!
//! The model is *mapping-sensitive by construction*: loop order decides
//! temporal reuse (the sticky-tile fetch model in [`reuse`]), parallel
//! dimensions decide spatial reuse (multicast vs. reduction in
//! [`traffic`]), and buffer capacities decide validity ([`capacity`]).
//! These are precisely the effects NAAS's importance-based encoding
//! navigates.
//!
//! ```
//! use naas_accel::baselines;
//! use naas_cost::CostModel;
//! use naas_ir::ConvSpec;
//! use naas_mapping::Mapping;
//!
//! let model = CostModel::new();
//! let accel = baselines::eyeriss();
//! let layer = ConvSpec::conv2d("c", 64, 128, (28, 28), (3, 3), 1, 1)?;
//! let mapping = Mapping::balanced(&layer, &accel);
//! let cost = model.evaluate(&layer, &accel, &mapping)?;
//! assert!(cost.cycles > 0);
//! assert!(cost.utilization <= 1.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod capacity;
pub mod energy;
pub mod model;
pub mod objective;
pub mod report;
pub mod reuse;
pub mod scratch;
pub mod sweep;
pub mod tensor;
pub mod traffic;
pub mod widths;

pub use energy::EnergyTable;
pub use model::{CostError, CostModel, EnergyBreakdown, LayerCost, NetworkCost};
pub use objective::ObjectiveVector;
pub use scratch::EvalScratch;
pub use tensor::Tensor;
pub use traffic::TrafficBreakdown;
pub use widths::DataWidths;
