//! Buffer-capacity validity checks.
//!
//! NAAS "rules out the invalid accelerator samples and keeps sampling"
//! (paper §II-A0c); a sample is invalid when its mapping's working sets do
//! not fit the design's scratch pads. Weights and activations are double
//! buffered (the standard latency-hiding assumption behind the roofline
//! latency model); partial sums are single-buffered accumulators.

use crate::tensor::Tensor;
use crate::widths::DataWidths;
use naas_accel::Accelerator;
use naas_ir::{ConvSpec, DimVec};
use naas_mapping::Mapping;
use std::fmt;

/// A capacity violation: which buffer overflowed, by how much.
#[derive(Debug, Clone, PartialEq)]
pub struct CapacityViolation {
    /// `"L1"` or `"L2"`.
    pub buffer: &'static str,
    /// Bytes the working set requires.
    pub required: u64,
    /// Bytes available.
    pub available: u64,
}

impl fmt::Display for CapacityViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} needs {} B but only {} B available",
            self.buffer, self.required, self.available
        )
    }
}

/// Bytes of one tile's working set with double-buffered weights/inputs
/// and single-buffered partial sums.
pub fn tile_bytes(layer: &ConvSpec, tile: &DimVec<u64>, widths: &DataWidths) -> u64 {
    let w = Tensor::Weights.tile_elems(layer, tile) * widths.weight_bytes;
    let i = Tensor::Inputs.tile_elems(layer, tile) * widths.input_bytes;
    let o = Tensor::Outputs.tile_elems(layer, tile) * widths.psum_bytes;
    2 * (w + i) + o
}

/// Checks that the per-PE tile fits L1 and the L2-resident tile fits L2.
///
/// # Errors
///
/// Returns the first [`CapacityViolation`] encountered (L1 before L2).
pub fn check(
    layer: &ConvSpec,
    accel: &Accelerator,
    mapping: &Mapping,
    widths: &DataWidths,
) -> Result<(), CapacityViolation> {
    let pe_tile = mapping.pe_tile(layer, accel.connectivity());
    let l2_tile = mapping.l2_tile(layer);
    check_tiles(layer, accel, &pe_tile, &l2_tile, widths)
}

/// The capacity check against precomputed tiles — the batched pipeline
/// computes `pe_tile`/`l2_tile` once per candidate and shares them with
/// the traffic analysis.
///
/// # Errors
///
/// Same conditions and order as [`check`] (L1 before L2).
pub fn check_tiles(
    layer: &ConvSpec,
    accel: &Accelerator,
    pe_tile: &DimVec<u64>,
    l2_tile: &DimVec<u64>,
    widths: &DataWidths,
) -> Result<(), CapacityViolation> {
    let l1_need = tile_bytes(layer, pe_tile, widths);
    if l1_need > accel.sizing().l1_bytes() {
        return Err(CapacityViolation {
            buffer: "L1",
            required: l1_need,
            available: accel.sizing().l1_bytes(),
        });
    }
    let l2_need = tile_bytes(layer, l2_tile, widths);
    if l2_need > accel.sizing().l2_bytes() {
        return Err(CapacityViolation {
            buffer: "L2",
            required: l2_need,
            available: accel.sizing().l2_bytes(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use naas_accel::baselines;
    use naas_ir::DIMS;
    use naas_mapping::{LevelSpec, Mapping};

    fn layer() -> ConvSpec {
        ConvSpec::conv2d("c", 64, 128, (56, 56), (3, 3), 1, 1).unwrap()
    }

    #[test]
    fn untiled_mapping_blows_l1() {
        let accel = baselines::eyeriss();
        let m = Mapping::new(vec![LevelSpec::unit(), LevelSpec::unit()], DIMS);
        let err = check(&layer(), &accel, &m, &DataWidths::INT8).unwrap_err();
        assert_eq!(err.buffer, "L1");
        assert!(err.required > err.available);
    }

    #[test]
    fn balanced_mapping_fits_typical_layers() {
        // The heuristic targets ≈¼ of each buffer, so it should pass the
        // real check on ordinary layers for reasonably-sized designs.
        let accel = baselines::edge_tpu();
        let l = layer();
        let m = Mapping::balanced(&l, &accel);
        check(&l, &accel, &m, &DataWidths::INT8).expect("balanced fits");
    }

    #[test]
    fn tile_bytes_double_buffers_streams_only() {
        let l = layer();
        let tile = naas_ir::DimVec([4, 4, 4, 4, 3, 3]);
        let w = Tensor::Weights.tile_elems(&l, &tile);
        let i = Tensor::Inputs.tile_elems(&l, &tile);
        let o = Tensor::Outputs.tile_elems(&l, &tile);
        assert_eq!(
            tile_bytes(&l, &tile, &DataWidths::INT8),
            2 * (w + i) + 4 * o
        );
    }

    #[test]
    fn violation_display_names_buffer() {
        let v = CapacityViolation {
            buffer: "L2",
            required: 100,
            available: 10,
        };
        let s = v.to_string();
        assert!(s.contains("L2"));
        assert!(s.contains("100"));
    }
}
