//! The three operand tensors of a convolution and their dimension
//! relevance — the foundation of all reuse analysis.

use naas_ir::{ConvSpec, Dim, DimVec};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One of the three operand tensors of a convolution layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Tensor {
    /// Filter weights, shape `K × C/g × R × S`.
    Weights,
    /// Input activations, shape `C × Yin × Xin` (halo-indexed by `Y'`,
    /// `X'`, `R`, `S`).
    Inputs,
    /// Output activations / partial sums, shape `K × Y' × X'`.
    Outputs,
}

/// All three tensors, in canonical order.
pub const TENSORS: [Tensor; 3] = [Tensor::Weights, Tensor::Inputs, Tensor::Outputs];

impl Tensor {
    /// Whether iterating `dim` selects *different* data of this tensor.
    ///
    /// Irrelevant dimensions are reuse opportunities: iterating them keeps
    /// the same tensor tile live. Two subtleties:
    ///
    /// * `R`/`S` are relevant to **inputs** through the sliding-window
    ///   halo (different kernel rows read different input rows);
    /// * `K` becomes relevant to **inputs** for grouped/depthwise layers,
    ///   because each output-channel group consumes its own input
    ///   channels ([`ConvSpec::input_depends_on_k`]).
    pub fn is_relevant(self, dim: Dim, layer: &ConvSpec) -> bool {
        match self {
            Tensor::Weights => matches!(dim, Dim::K | Dim::C | Dim::R | Dim::S),
            Tensor::Inputs => match dim {
                Dim::C | Dim::Y | Dim::X | Dim::R | Dim::S => true,
                Dim::K => layer.input_depends_on_k(),
            },
            Tensor::Outputs => matches!(dim, Dim::K | Dim::Y | Dim::X),
        }
    }

    /// Number of elements of this tensor inside a tile with the given
    /// per-dimension extents (inputs account for the stride/kernel halo).
    pub fn tile_elems(self, layer: &ConvSpec, tile: &DimVec<u64>) -> u64 {
        match self {
            Tensor::Weights => tile[Dim::K] * tile[Dim::C] * tile[Dim::R] * tile[Dim::S],
            Tensor::Inputs => {
                let iy = layer.input_halo(tile[Dim::Y], tile[Dim::R]);
                let ix = layer.input_halo(tile[Dim::X], tile[Dim::S]);
                tile[Dim::C] * iy * ix
            }
            Tensor::Outputs => tile[Dim::K] * tile[Dim::Y] * tile[Dim::X],
        }
    }

    /// Total elements of this tensor for the whole layer.
    pub fn total_elems(self, layer: &ConvSpec) -> u64 {
        match self {
            Tensor::Weights => layer.weight_elems(),
            Tensor::Inputs => layer.input_elems() / layer.batch(),
            Tensor::Outputs => layer.output_elems() / layer.batch(),
        }
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Tensor::Weights => "weights",
            Tensor::Inputs => "inputs",
            Tensor::Outputs => "outputs",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn std_layer() -> ConvSpec {
        ConvSpec::conv2d("c", 64, 128, (56, 56), (3, 3), 1, 1).unwrap()
    }

    #[test]
    fn weight_relevance() {
        let l = std_layer();
        assert!(Tensor::Weights.is_relevant(Dim::K, &l));
        assert!(Tensor::Weights.is_relevant(Dim::C, &l));
        assert!(!Tensor::Weights.is_relevant(Dim::Y, &l));
        assert!(!Tensor::Weights.is_relevant(Dim::X, &l));
    }

    #[test]
    fn input_relevance_standard_vs_depthwise() {
        let std = std_layer();
        assert!(!Tensor::Inputs.is_relevant(Dim::K, &std));
        let dw = ConvSpec::depthwise("dw", 32, (56, 56), (3, 3), 1, 1).unwrap();
        assert!(Tensor::Inputs.is_relevant(Dim::K, &dw));
    }

    #[test]
    fn output_relevance_excludes_reductions() {
        let l = std_layer();
        for d in [Dim::C, Dim::R, Dim::S] {
            assert!(!Tensor::Outputs.is_relevant(d, &l));
        }
        for d in [Dim::K, Dim::Y, Dim::X] {
            assert!(Tensor::Outputs.is_relevant(d, &l));
        }
    }

    #[test]
    fn tile_elems_input_halo() {
        let l = std_layer();
        let tile = DimVec([16, 8, 4, 4, 3, 3]);
        // Inputs: 8 channels × ((4-1)*1+3)^2 = 8 * 36.
        assert_eq!(Tensor::Inputs.tile_elems(&l, &tile), 8 * 36);
        assert_eq!(Tensor::Weights.tile_elems(&l, &tile), 16 * 8 * 9);
        assert_eq!(Tensor::Outputs.tile_elems(&l, &tile), 16 * 16);
    }

    #[test]
    fn full_tile_covers_total() {
        let l = std_layer();
        let full = l.extents();
        for t in TENSORS {
            assert!(
                t.tile_elems(&l, &full) >= t.total_elems(&l),
                "{t} full tile must cover the tensor"
            );
        }
        // Weights exactly.
        assert_eq!(
            Tensor::Weights.tile_elems(&l, &full),
            Tensor::Weights.total_elems(&l)
        );
    }
}
