//! Per-access energy costs.

use serde::{Deserialize, Serialize};

/// Energy cost table in picojoules per access/operation.
///
/// Defaults follow the well-known Eyeriss normalized-energy ladder
/// (MAC : RF : NoC : global buffer : DRAM = 1 : 1 : 2 : 6 : 200), anchored
/// at 0.225 pJ per 8-bit MAC (45 nm-class estimates à la Horowitz,
/// ISSCC'14). Absolute joules are *not* expected to match the authors'
/// MAESTRO calibration — every experiment in the paper (and here) compares
/// EDP ratios under a fixed table, so only the ladder matters.
///
/// ```
/// use naas_cost::EnergyTable;
/// let e = EnergyTable::default();
/// assert!(e.dram_pj > 100.0 * e.mac_pj);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyTable {
    /// One multiply-accumulate.
    pub mac_pj: f64,
    /// One byte read/written at a PE-private L1 scratch pad.
    pub l1_pj: f64,
    /// One byte delivered over the NoC (per delivery, incl. multicast
    /// copies and reduction hops).
    pub noc_pj: f64,
    /// One byte read/written at the shared L2 scratch pad.
    pub l2_pj: f64,
    /// One byte read/written at DRAM.
    pub dram_pj: f64,
}

impl EnergyTable {
    /// The Eyeriss-ladder default, anchored at `mac_pj`.
    pub fn eyeriss_ladder(mac_pj: f64) -> Self {
        EnergyTable {
            mac_pj,
            l1_pj: mac_pj,
            noc_pj: 2.0 * mac_pj,
            l2_pj: 6.0 * mac_pj,
            dram_pj: 200.0 * mac_pj,
        }
    }
}

impl Default for EnergyTable {
    fn default() -> Self {
        EnergyTable::eyeriss_ladder(0.225)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_ratios() {
        let e = EnergyTable::default();
        assert!((e.l2_pj / e.mac_pj - 6.0).abs() < 1e-12);
        assert!((e.dram_pj / e.mac_pj - 200.0).abs() < 1e-12);
        assert!((e.noc_pj / e.mac_pj - 2.0).abs() < 1e-12);
    }

    #[test]
    fn custom_anchor_scales_everything() {
        let e = EnergyTable::eyeriss_ladder(1.0);
        assert_eq!(e.dram_pj, 200.0);
        assert_eq!(e.l1_pj, 1.0);
    }
}
