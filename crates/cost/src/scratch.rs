//! Reusable working memory for the evaluation hot path.
//!
//! One `CostModel::evaluate` call needs three short-lived buffers: the
//! per-level tile extents and the flattened outer/inner loop nests of the
//! traffic analysis. At NAAS scale — millions of evaluations per search —
//! allocating them per call dominates the model's own arithmetic, so the
//! batched pipeline threads one [`EvalScratch`] through every evaluation
//! on a thread and the buffers settle at their high-water size after the
//! first few candidates.

use crate::reuse::Loop;
use naas_ir::DimVec;

/// Scratch buffers reused across [`crate::CostModel`] evaluations.
///
/// Construction is free (no heap allocation until first use), so the
/// scalar entry points simply build one on the stack per call — identical
/// behaviour to the pre-scratch code — while batch drivers keep one per
/// worker thread and amortize the allocations away.
#[derive(Debug, Default)]
pub struct EvalScratch {
    /// Flattened temporal loops of array level 0 (DRAM boundary).
    pub(crate) outer_loops: Vec<Loop>,
    /// Flattened temporal loops of array levels 1..k (L2 boundary).
    pub(crate) inner_loops: Vec<Loop>,
    /// Per-level tile extents from `Mapping::tiles_per_level_into`.
    pub(crate) tiles: Vec<DimVec<u64>>,
}

impl EvalScratch {
    /// Creates an empty scratch; buffers grow on first use and are then
    /// recycled by every subsequent evaluation that shares it.
    pub fn new() -> Self {
        EvalScratch::default()
    }
}
