//! The third level: joint neural-accelerator-compiler co-search
//! (paper §II-C, the "Integrated with NAS" path of Fig. 1).
//!
//! For every accelerator candidate proposed by the outer evolution, an
//! inner NAS evolution (adapted Once-For-All search) proposes subnets that
//! satisfy the accuracy floor; each subnet is scored by the mapping
//! search on that candidate; the best subnet's EDP becomes the
//! accelerator's reward. The result is a matched
//! (accelerator, network, mapping) tuple "with guaranteed accuracy and
//! lowest EDP".
//!
//! Candidates of a generation are independent, so their whole NAS
//! evolutions run in parallel on the engine's work-stealing pool; all
//! mapping searches inside them share the engine's content-addressed
//! cache, so a subnet layer shape evaluated once on a design is never
//! evaluated on it again — across subnets, candidates, generations, and
//! every sweep sharing the engine.

use crate::accel_search::AccelSearchConfig;
use crate::engine::CoSearchEngine;
use naas_accel::{Accelerator, ResourceConstraint};
use naas_cost::CostModel;
use naas_engine::parallel_map;
use naas_nas::search::search_subnet;
use naas_nas::{AccuracyModel, NasConfig, Subnet};
use naas_opt::{CemEs, HardwareEncoder, Optimizer};
use serde::{Deserialize, Serialize};

/// Configuration of the joint search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JointConfig {
    /// Outer accelerator-search budget (its `mapping` field also budgets
    /// the innermost mapping search, and its `threads` field sizes the
    /// engine pool).
    pub accel: AccelSearchConfig,
    /// Per-candidate NAS budget.
    pub nas: NasConfig,
}

impl JointConfig {
    /// A tiny-budget configuration for tests and smoke runs.
    pub fn quick(seed: u64) -> Self {
        JointConfig {
            accel: AccelSearchConfig::quick(seed),
            nas: NasConfig {
                population: 6,
                generations: 2,
                seed,
                ..NasConfig::default()
            },
        }
    }
}

/// Result of the joint co-search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JointResult {
    /// The matched accelerator.
    pub accelerator: Accelerator,
    /// The matched subnet.
    pub subnet: Subnet,
    /// Predicted ImageNet top-1 accuracy of the subnet (percent).
    pub accuracy: f64,
    /// EDP of the subnet on the accelerator with searched mappings
    /// (cycles · nJ).
    pub edp: f64,
    /// Total subnet evaluations across all accelerator candidates.
    pub evaluations: usize,
}

/// Runs the joint neural-accelerator-compiler co-search on a private
/// engine sized by `cfg.accel.threads`.
///
/// Returns `None` when no (design, subnet) pair satisfying the accuracy
/// floor was found within the budget.
pub fn search_joint(
    model: &CostModel,
    constraint: &ResourceConstraint,
    accuracy_model: &AccuracyModel,
    cfg: &JointConfig,
) -> Option<JointResult> {
    let engine = CoSearchEngine::new(cfg.accel.threads);
    search_joint_with(&engine, model, constraint, accuracy_model, cfg)
}

/// [`search_joint`] on a caller-supplied engine, sharing its mapping
/// cache with whatever else runs on it (e.g. the other floors of a
/// [`pareto_sweep`]).
pub fn search_joint_with(
    engine: &CoSearchEngine,
    model: &CostModel,
    constraint: &ResourceConstraint,
    accuracy_model: &AccuracyModel,
    cfg: &JointConfig,
) -> Option<JointResult> {
    let encoder = HardwareEncoder::new(constraint.clone(), cfg.accel.scheme);
    let mut es = CemEs::new(encoder.dim(), cfg.accel.es, cfg.accel.seed);
    let mut best: Option<JointResult> = None;
    let mut total_evals = 0usize;

    for iteration in 0..cfg.accel.iterations {
        // Sample the generation sequentially (the ES is stateful).
        let mut slots: Vec<(usize, Vec<f64>, Accelerator)> =
            Vec::with_capacity(cfg.accel.population);
        let mut infeasible: Vec<Vec<f64>> = Vec::new();
        for slot in 0..cfg.accel.population {
            let mut decoded = None;
            let mut theta_last = None;
            for _ in 0..cfg.accel.resample_limit {
                let theta = es.ask();
                match encoder.decode(&theta) {
                    Some(d) => {
                        decoded = Some((theta, d));
                        break;
                    }
                    None => theta_last = Some(theta),
                }
            }
            match decoded {
                Some((theta, accel)) => slots.push((slot, theta, accel)),
                None => {
                    if let Some(t) = theta_last {
                        infeasible.push(t);
                    }
                }
            }
        }

        // Each candidate's whole NAS evolution is one parallel job. The
        // NAS seed is slot-derived (deterministic sampling schedule); the
        // mapping searches inside use the engine cache with
        // content-derived seeds, so cross-candidate reuse is sound.
        let outcomes = parallel_map(engine.threads(), &slots, |_idx, (slot, _, accel)| {
            let nas_cfg = NasConfig {
                seed: cfg
                    .nas
                    .seed
                    .wrapping_mul(9_176_131)
                    .wrapping_add((iteration * cfg.accel.population + slot) as u64),
                ..cfg.nas
            };
            // One fingerprint per candidate: every subnet the NAS
            // proposes shares it.
            let design_fp = crate::mapping_search::design_fingerprint(accel, &cfg.accel.mapping);
            search_subnet(&nas_cfg, accuracy_model, |net| {
                crate::mapping_search::network_mapping_search_memo(
                    model,
                    net,
                    accel,
                    &cfg.accel.mapping,
                    engine.cache(),
                    design_fp,
                )
                .map(|cost| cost.edp())
            })
        });

        // Fold results in slot order (deterministic tie-breaks).
        let mut scored: Vec<(Vec<f64>, f64)> = Vec::with_capacity(slots.len() + infeasible.len());
        for ((_, theta, accel), outcome) in slots.into_iter().zip(outcomes) {
            match outcome {
                Some(out) => {
                    total_evals += out.evaluations;
                    if best.as_ref().is_none_or(|b| out.reward < b.edp) {
                        best = Some(JointResult {
                            accelerator: accel,
                            subnet: out.subnet,
                            accuracy: out.accuracy,
                            edp: out.reward,
                            evaluations: total_evals,
                        });
                    }
                    scored.push((theta, out.reward));
                }
                None => scored.push((theta, f64::INFINITY)),
            }
        }
        for theta in infeasible {
            scored.push((theta, f64::INFINITY));
        }
        es.tell(&scored);
    }

    best.map(|mut b| {
        b.evaluations = total_evals;
        b
    })
}

/// One point of an accuracy-vs-EDP Pareto sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParetoEntry {
    /// Accuracy floor the point was searched under (percent).
    pub floor: f64,
    /// The matched tuple found at this floor.
    pub result: JointResult,
}

/// Extension beyond the paper's single Fig. 10 point: sweeps the joint
/// search over a list of accuracy floors, producing the full
/// accuracy-vs-EDP trade-off curve of the co-design space. Floors that
/// admit no feasible tuple are skipped. All floors share one engine, so
/// mapping results computed for one floor are reused by the others.
pub fn pareto_sweep(
    model: &CostModel,
    constraint: &ResourceConstraint,
    accuracy_model: &AccuracyModel,
    cfg: &JointConfig,
    floors: &[f64],
) -> Vec<ParetoEntry> {
    let engine = CoSearchEngine::new(cfg.accel.threads);
    let mut out = Vec::with_capacity(floors.len());
    for (i, &floor) in floors.iter().enumerate() {
        let mut swept = *cfg;
        swept.nas.accuracy_floor = floor;
        swept.nas.seed = cfg.nas.seed.wrapping_add(i as u64);
        if let Some(result) = search_joint_with(&engine, model, constraint, accuracy_model, &swept)
        {
            out.push(ParetoEntry { floor, result });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use naas_accel::baselines;

    #[test]
    fn joint_search_finds_accurate_low_edp_pair() {
        let model = CostModel::new();
        let envelope = ResourceConstraint::from_design(&baselines::eyeriss());
        let cfg = JointConfig::quick(4);
        let accuracy = AccuracyModel::default();
        let out = search_joint(&model, &envelope, &accuracy, &cfg).expect("finds a pair");
        assert!(out.accuracy >= cfg.nas.accuracy_floor);
        assert!(out.edp > 0.0);
        assert!(envelope.admits(&out.accelerator).is_ok());
    }

    #[test]
    fn deterministic_under_seed() {
        let model = CostModel::new();
        let envelope = ResourceConstraint::from_design(&baselines::shidiannao());
        let cfg = JointConfig::quick(11);
        let accuracy = AccuracyModel::default();
        let a = search_joint(&model, &envelope, &accuracy, &cfg).unwrap();
        let b = search_joint(&model, &envelope, &accuracy, &cfg).unwrap();
        assert_eq!(a.subnet, b.subnet);
        assert_eq!(a.edp, b.edp);
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let model = CostModel::new();
        let envelope = ResourceConstraint::from_design(&baselines::eyeriss());
        let mut cfg = JointConfig::quick(6);
        let accuracy = AccuracyModel::default();
        cfg.accel.threads = 1;
        let single = search_joint(&model, &envelope, &accuracy, &cfg).unwrap();
        cfg.accel.threads = 4;
        let multi = search_joint(&model, &envelope, &accuracy, &cfg).unwrap();
        assert_eq!(single.subnet, multi.subnet);
        assert_eq!(single.accelerator, multi.accelerator);
        assert_eq!(single.edp, multi.edp);
    }

    #[test]
    fn pareto_sweep_respects_floors() {
        let model = CostModel::new();
        let envelope = ResourceConstraint::from_design(&baselines::eyeriss());
        let cfg = JointConfig::quick(8);
        let accuracy = AccuracyModel::default();
        let entries = pareto_sweep(&model, &envelope, &accuracy, &cfg, &[74.0, 76.5]);
        assert!(!entries.is_empty());
        for e in &entries {
            assert!(
                e.result.accuracy >= e.floor,
                "floor {} violated by {}",
                e.floor,
                e.result.accuracy
            );
        }
        // Higher floors cannot make EDP better (larger feasible nets).
        if entries.len() == 2 {
            assert!(entries[1].result.edp >= entries[0].result.edp * 0.5);
        }
    }

    #[test]
    fn infeasible_floor_is_skipped() {
        let model = CostModel::new();
        let envelope = ResourceConstraint::from_design(&baselines::shidiannao());
        let cfg = JointConfig::quick(9);
        let accuracy = AccuracyModel::default();
        // 99% is above the surrogate's ceiling — no feasible subnet.
        let entries = pareto_sweep(&model, &envelope, &accuracy, &cfg, &[99.0]);
        assert!(entries.is_empty());
    }
}
