//! The third level: joint neural-accelerator-compiler co-search
//! (paper §II-C, the "Integrated with NAS" path of Fig. 1).
//!
//! For every accelerator candidate proposed by the outer evolution, an
//! inner NAS evolution (adapted Once-For-All search) proposes subnets that
//! satisfy the accuracy floor; each subnet is scored by the mapping
//! search on that candidate; the best subnet's EDP becomes the
//! accelerator's reward. The result is a matched
//! (accelerator, network, mapping) tuple "with guaranteed accuracy and
//! lowest EDP".
//!
//! Candidates of a generation are independent, so their whole NAS
//! evolutions run in parallel on the engine's work-stealing pool; all
//! mapping searches inside them share the engine's content-addressed
//! cache, so a subnet layer shape evaluated once on a design is never
//! evaluated on it again — across subnets, candidates, generations, and
//! every sweep sharing the engine.
//!
//! Like the accelerator search, the joint loop is expressed as a
//! serializable [`JointSearchState`] advanced one outer generation at a
//! time ([`joint_search_step`]), so long joint runs checkpoint and
//! resume on the same `naas_engine::checkpoint` machinery — an
//! interrupted run continues the exact trajectory of an uninterrupted
//! one ([`resume_joint_search`]). And like the accelerator search, the
//! step is split from its evaluator ([`joint_search_step_with`]): the
//! distributed coordinator reroutes each candidate's NAS evolution to a
//! remote worker without touching the search semantics, bit-identically
//! (`tests/tests/distributed.rs`).

use crate::accel_search::AccelSearchConfig;
use crate::engine::CoSearchEngine;
use crate::pareto::ParetoArchive;
use crate::reward::ObjectivePolicy;
use naas_accel::{area::AreaModel, Accelerator, ResourceConstraint};
use naas_cost::{CostModel, ObjectiveVector};
use naas_engine::{parallel_map, CheckpointPolicy};
use naas_nas::search::search_subnet;
use naas_nas::{AccuracyModel, NasConfig, Subnet};
use naas_opt::{CemEs, HardwareEncoder, Optimizer};
use serde::{Deserialize, Serialize};

/// Configuration of the joint search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JointConfig {
    /// Outer accelerator-search budget (its `mapping` field also budgets
    /// the innermost mapping search, and its `threads` field sizes the
    /// engine pool).
    pub accel: AccelSearchConfig,
    /// Per-candidate NAS budget.
    pub nas: NasConfig,
}

impl JointConfig {
    /// A tiny-budget configuration for tests and smoke runs.
    pub fn quick(seed: u64) -> Self {
        JointConfig {
            accel: AccelSearchConfig::quick(seed),
            nas: NasConfig {
                population: 6,
                generations: 2,
                seed,
                ..NasConfig::default()
            },
        }
    }
}

/// One joint candidate's complete evaluation: the NAS outcome for this
/// accelerator (best feasible subnet, its accuracy and EDP-reward,
/// evaluation count) plus the matched pair's objective vector — the
/// unit that crosses the `evaluate_shard` wire in joint mode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JointCandidateEval {
    /// Best accuracy-feasible subnet found on this candidate.
    pub subnet: Subnet,
    /// The subnet's EDP on this candidate (cycles · nJ) — the scalar
    /// the outer ES consumes as the candidate's reward.
    pub reward: f64,
    /// The subnet's predicted top-1 accuracy (percent).
    pub accuracy: f64,
    /// Subnets evaluated by this candidate's NAS evolution.
    pub evaluations: usize,
    /// The matched (accelerator, subnet) pair's objective vector:
    /// suite latency/energy of the subnet on the design, design area,
    /// and the subnet's accuracy.
    pub objectives: ObjectiveVector,
}

/// Result of the joint co-search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JointResult {
    /// The matched accelerator.
    pub accelerator: Accelerator,
    /// The matched subnet.
    pub subnet: Subnet,
    /// Predicted ImageNet top-1 accuracy of the subnet (percent).
    pub accuracy: f64,
    /// EDP of the subnet on the accelerator with searched mappings
    /// (cycles · nJ).
    pub edp: f64,
    /// Total subnet evaluations across all accelerator candidates.
    pub evaluations: usize,
}

/// The complete, serializable state of a joint search between outer
/// generations — the joint-loop counterpart of
/// [`crate::accel_search::AccelSearchState`], on the same checkpoint
/// machinery: snapshot it with `naas_engine::checkpoint::save`, restore
/// it, and the search continues the exact trajectory of an uninterrupted
/// run (the ES serializes its raw RNG state). The accuracy surrogate and
/// cost model are *not* embedded; the resuming caller supplies the same
/// ones.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JointSearchState {
    /// The search configuration (outer + NAS budgets, seeds).
    pub config: JointConfig,
    /// The resource envelope being searched.
    pub constraint: ResourceConstraint,
    /// Outer generations completed so far.
    pub iteration: usize,
    es: CemEs,
    best: Option<JointResult>,
    total_evals: usize,
    /// The Pareto front, present iff `config.accel.objectives` is
    /// `Pareto`. Serialized with the state so a resumed run restores a
    /// bit-identical front (`Option` so pre-archive checkpoints, where
    /// the field reads as null, still load).
    archive: Option<ParetoArchive>,
}

impl JointSearchState {
    /// `true` once every configured outer generation has run.
    pub fn is_done(&self) -> bool {
        self.iteration >= self.config.accel.iterations
    }

    /// The best matched tuple found so far, if any.
    pub fn best(&self) -> Option<&JointResult> {
        self.best.as_ref()
    }

    /// Subnet evaluations across all candidates so far.
    pub fn evaluations(&self) -> usize {
        self.total_evals
    }

    /// The Pareto archive, if this search runs with
    /// [`ObjectivePolicy::Pareto`].
    pub fn archive(&self) -> Option<&ParetoArchive> {
        self.archive.as_ref()
    }

    /// Consumes the state into the final result: the best matched tuple
    /// with the search-wide evaluation count, or `None` when no
    /// (design, subnet) pair satisfied the accuracy floor in the budget.
    pub fn into_result(self) -> Option<JointResult> {
        let total_evals = self.total_evals;
        self.best.map(|mut b| {
            b.evaluations = total_evals;
            b
        })
    }
}

/// Initializes a joint search over `constraint`.
pub fn joint_search_init(constraint: &ResourceConstraint, cfg: &JointConfig) -> JointSearchState {
    let encoder = HardwareEncoder::new(constraint.clone(), cfg.accel.scheme);
    JointSearchState {
        config: *cfg,
        constraint: constraint.clone(),
        iteration: 0,
        es: CemEs::new(encoder.dim(), cfg.accel.es, cfg.accel.seed),
        best: None,
        total_evals: 0,
        archive: match cfg.accel.objectives {
            ObjectivePolicy::Scalar => None,
            ObjectivePolicy::Pareto => Some(ParetoArchive::new()),
        },
    }
}

/// The slot-derived seed of one candidate's NAS evolution: a pure
/// function of the joint config, the outer generation, and the
/// population slot — so any evaluator (local pool, remote shard) that
/// knows the slot reproduces the exact sampling schedule.
pub fn joint_nas_seed(cfg: &JointConfig, iteration: usize, slot: usize) -> u64 {
    cfg.nas
        .seed
        .wrapping_mul(9_176_131)
        .wrapping_add((iteration * cfg.accel.population + slot) as u64)
}

/// Runs one accelerator candidate's whole NAS evolution: the inner
/// workload of a joint-search generation, exactly as a single-process
/// [`joint_search_step`] performs it. `nas_seed` must come from
/// [`joint_nas_seed`]; the mapping searches inside go through the
/// engine's shared cache with content-derived seeds, so where this runs
/// (and what was cached before) is invisible in the outcome. This is
/// the unit the distributed coordinator ships to workers.
pub fn evaluate_joint_candidate(
    engine: &CoSearchEngine,
    model: &CostModel,
    accuracy_model: &AccuracyModel,
    accel: &Accelerator,
    mapping_cfg: &crate::mapping_search::MappingSearchConfig,
    nas_cfg: &NasConfig,
    nas_seed: u64,
) -> Option<JointCandidateEval> {
    let nas_cfg = NasConfig {
        seed: nas_seed,
        ..*nas_cfg
    };
    // One fingerprint per candidate: every subnet the NAS proposes
    // shares it.
    let design_fp = crate::mapping_search::design_fingerprint(accel, mapping_cfg);
    let out = search_subnet(&nas_cfg, accuracy_model, |net| {
        crate::mapping_search::network_mapping_search_memo(
            model,
            net,
            accel,
            mapping_cfg,
            engine.cache(),
            design_fp,
        )
        .map(|cost| cost.edp())
    })?;
    // Re-derive the winning subnet's full cost report for the objective
    // vector: the NAS loop evaluated it moments ago through the same
    // memo cache with content-derived seeds, so this is a cache hit and
    // bit-identical to the evaluation that produced `out.reward`.
    let cost = crate::mapping_search::network_mapping_search_memo(
        model,
        &out.subnet.to_network(),
        accel,
        mapping_cfg,
        engine.cache(),
        design_fp,
    )?;
    let area_um2 = AreaModel::default().area_mm2(accel) * 1e6;
    let objectives =
        ObjectiveVector::from_suite(std::slice::from_ref(&cost), area_um2, out.accuracy);
    Some(JointCandidateEval {
        subnet: out.subnet,
        reward: out.reward,
        accuracy: out.accuracy,
        evaluations: out.evaluations,
        objectives,
    })
}

/// Advances the joint search by one outer generation: sample accelerator
/// candidates, run each candidate's whole NAS evolution as one parallel
/// job on the engine's pool, update the ES. Returns `false` (without
/// doing work) once the budget is exhausted.
pub fn joint_search_step(
    engine: &CoSearchEngine,
    model: &CostModel,
    accuracy_model: &AccuracyModel,
    state: &mut JointSearchState,
) -> bool {
    let cfg = state.config;
    let iteration = state.iteration;
    joint_search_step_with(state, |slots| {
        // Each candidate's whole NAS evolution is one parallel job. The
        // NAS seed is slot-derived (deterministic sampling schedule);
        // the mapping searches inside use the engine cache with
        // content-derived seeds, so cross-candidate reuse is sound.
        parallel_map(engine.threads(), slots, |_idx, (slot, _, accel)| {
            evaluate_joint_candidate(
                engine,
                model,
                accuracy_model,
                accel,
                &cfg.accel.mapping,
                &cfg.nas,
                joint_nas_seed(&cfg, iteration, *slot),
            )
        })
    })
}

/// [`joint_search_step`] with a caller-supplied population evaluator —
/// the seam the distributed coordinator
/// ([`crate::distributed::DistributedCoordinator::step_joint`]) plugs
/// into, mirroring [`crate::accel_search::accel_search_step_with`]. The
/// sampling, scoring and ES-update logic here is the *entire* joint
/// search semantics; `evaluate` only decides *where* each candidate's
/// NAS evolution runs.
///
/// `evaluate` receives the generation's decoded candidates as
/// `(slot, theta, accelerator)` triples in slot order — the slot index
/// is part of the contract, because the candidate's NAS seed is derived
/// from it ([`joint_nas_seed`]) — and must return one outcome per
/// candidate **in the same order**. Any order-preserving evaluator
/// whose per-candidate outcome equals [`evaluate_joint_candidate`]'s
/// produces a bit-identical search trajectory.
pub fn joint_search_step_with<F>(state: &mut JointSearchState, evaluate: F) -> bool
where
    F: FnOnce(&[(usize, Vec<f64>, Accelerator)]) -> Vec<Option<JointCandidateEval>>,
{
    let Some(sampled) = joint_sample_generation(state) else {
        return false;
    };
    let outcomes = evaluate(&sampled.slots);
    joint_commit_generation(state, sampled, outcomes);
    true
}

/// One sampled-but-not-yet-committed joint generation — the joint-mode
/// counterpart of [`crate::accel_search::SampledGeneration`], produced
/// by [`joint_sample_generation`] and consumed by
/// [`joint_commit_generation`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JointSampledGeneration {
    /// The outer iteration this generation was sampled for.
    pub iteration: usize,
    /// Decoded candidates as `(slot, theta, accelerator)` in slot order;
    /// slot indices stay stable even when some slots fail to decode
    /// (they seed [`joint_nas_seed`]).
    pub slots: Vec<(usize, Vec<f64>, Accelerator)>,
    /// Last rejected draw of each slot that never decoded; scores +inf
    /// at commit.
    pub infeasible: Vec<Vec<f64>>,
}

/// The sampling half of [`joint_search_step_with`]: consumes the ES RNG
/// to draw one outer generation. Returns `None` — without touching any
/// state — once the budget is exhausted.
pub fn joint_sample_generation(state: &mut JointSearchState) -> Option<JointSampledGeneration> {
    if state.is_done() {
        return None;
    }
    let cfg = state.config;
    let iteration = state.iteration;
    let encoder = HardwareEncoder::new(state.constraint.clone(), cfg.accel.scheme);

    // Sample the generation sequentially (the ES is stateful).
    let mut slots: Vec<(usize, Vec<f64>, Accelerator)> = Vec::with_capacity(cfg.accel.population);
    let mut infeasible: Vec<Vec<f64>> = Vec::new();
    for slot in 0..cfg.accel.population {
        let mut decoded = None;
        let mut theta_last = None;
        for _ in 0..cfg.accel.resample_limit {
            let theta = state.es.ask();
            match encoder.decode(&theta) {
                Some(d) => {
                    decoded = Some((theta, d));
                    break;
                }
                None => theta_last = Some(theta),
            }
        }
        match decoded {
            Some((theta, accel)) => slots.push((slot, theta, accel)),
            None => {
                if let Some(t) = theta_last {
                    infeasible.push(t);
                }
            }
        }
    }
    Some(JointSampledGeneration {
        iteration,
        slots,
        infeasible,
    })
}

/// The commit half of [`joint_search_step_with`]: folds one outcome per
/// sampled candidate (slot order) into the state and advances the outer
/// iteration counter.
pub fn joint_commit_generation(
    state: &mut JointSearchState,
    sampled: JointSampledGeneration,
    outcomes: Vec<Option<JointCandidateEval>>,
) {
    let cfg = state.config;
    let JointSampledGeneration {
        iteration,
        slots,
        infeasible,
    } = sampled;
    assert_eq!(
        outcomes.len(),
        slots.len(),
        "evaluator must return one outcome per candidate"
    );
    assert_eq!(
        iteration, state.iteration,
        "a sampled generation commits against the state that sampled it"
    );

    // Fold results in slot order (deterministic tie-breaks).
    let mut scored: Vec<(Vec<f64>, f64)> = Vec::with_capacity(slots.len() + infeasible.len());
    for ((slot, theta, accel), outcome) in slots.into_iter().zip(outcomes) {
        match outcome {
            Some(out) => {
                state.total_evals += out.evaluations;
                if let Some(archive) = state.archive.as_mut() {
                    // Global candidate order (slot indices are stable
                    // even when some slots fail to decode), identical
                    // in every execution mode.
                    let candidate_index =
                        iteration as u64 * cfg.accel.population as u64 + slot as u64;
                    archive.offer(candidate_index, out.objectives, &accel);
                }
                if state.best.as_ref().is_none_or(|b| out.reward < b.edp) {
                    state.best = Some(JointResult {
                        accelerator: accel,
                        subnet: out.subnet,
                        accuracy: out.accuracy,
                        edp: out.reward,
                        evaluations: state.total_evals,
                    });
                }
                scored.push((theta, out.reward));
            }
            None => scored.push((theta, f64::INFINITY)),
        }
    }
    for theta in infeasible {
        scored.push((theta, f64::INFINITY));
    }
    state.es.tell(&scored);
    state.iteration += 1;
}

/// Runs the joint neural-accelerator-compiler co-search on a private
/// engine sized by `cfg.accel.threads`.
///
/// Returns `None` when no (design, subnet) pair satisfying the accuracy
/// floor was found within the budget.
pub fn search_joint(
    model: &CostModel,
    constraint: &ResourceConstraint,
    accuracy_model: &AccuracyModel,
    cfg: &JointConfig,
) -> Option<JointResult> {
    let engine = CoSearchEngine::new(cfg.accel.threads);
    search_joint_with(&engine, model, constraint, accuracy_model, cfg)
}

/// [`search_joint`] on a caller-supplied engine, sharing its mapping
/// cache with whatever else runs on it (e.g. the other floors of a
/// [`pareto_sweep`]).
pub fn search_joint_with(
    engine: &CoSearchEngine,
    model: &CostModel,
    constraint: &ResourceConstraint,
    accuracy_model: &AccuracyModel,
    cfg: &JointConfig,
) -> Option<JointResult> {
    let mut state = joint_search_init(constraint, cfg);
    run_joint_to_completion(engine, model, accuracy_model, &mut state, None);
    state.into_result()
}

/// Continues a checkpointed joint search to completion, optionally
/// keeping up the checkpoint cadence. The caller must supply the same
/// cost and accuracy models the original run used (the state embeds
/// everything else). Resuming produces the identical final result an
/// uninterrupted run would have.
///
/// # Panics
///
/// Panics if a due checkpoint cannot be written (a search that silently
/// stops being resumable would be worse).
pub fn resume_joint_search(
    engine: &CoSearchEngine,
    model: &CostModel,
    accuracy_model: &AccuracyModel,
    mut state: JointSearchState,
    checkpoint: Option<&CheckpointPolicy>,
) -> Option<JointResult> {
    run_joint_to_completion(engine, model, accuracy_model, &mut state, checkpoint);
    state.into_result()
}

fn run_joint_to_completion(
    engine: &CoSearchEngine,
    model: &CostModel,
    accuracy_model: &AccuracyModel,
    state: &mut JointSearchState,
    checkpoint: Option<&CheckpointPolicy>,
) {
    while joint_search_step(engine, model, accuracy_model, state) {
        if let Some(policy) = checkpoint {
            if policy.due_after(state.iteration - 1) || state.is_done() {
                naas_engine::checkpoint::save(&policy.path, state)
                    .unwrap_or_else(|e| panic!("cannot write checkpoint: {e}"));
            }
        }
    }
}

/// One point of an accuracy-vs-EDP Pareto sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParetoEntry {
    /// Accuracy floor the point was searched under (percent).
    pub floor: f64,
    /// The matched tuple found at this floor.
    pub result: JointResult,
}

/// Extension beyond the paper's single Fig. 10 point: sweeps the joint
/// search over a list of accuracy floors, producing the full
/// accuracy-vs-EDP trade-off curve of the co-design space. Floors that
/// admit no feasible tuple are skipped. All floors share one engine, so
/// mapping results computed for one floor are reused by the others.
pub fn pareto_sweep(
    model: &CostModel,
    constraint: &ResourceConstraint,
    accuracy_model: &AccuracyModel,
    cfg: &JointConfig,
    floors: &[f64],
) -> Vec<ParetoEntry> {
    let engine = CoSearchEngine::new(cfg.accel.threads);
    let mut out = Vec::with_capacity(floors.len());
    for (i, &floor) in floors.iter().enumerate() {
        let mut swept = *cfg;
        swept.nas.accuracy_floor = floor;
        swept.nas.seed = cfg.nas.seed.wrapping_add(i as u64);
        if let Some(result) = search_joint_with(&engine, model, constraint, accuracy_model, &swept)
        {
            out.push(ParetoEntry { floor, result });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use naas_accel::baselines;

    #[test]
    fn joint_search_finds_accurate_low_edp_pair() {
        let model = CostModel::new();
        let envelope = ResourceConstraint::from_design(&baselines::eyeriss());
        let cfg = JointConfig::quick(4);
        let accuracy = AccuracyModel::default();
        let out = search_joint(&model, &envelope, &accuracy, &cfg).expect("finds a pair");
        assert!(out.accuracy >= cfg.nas.accuracy_floor);
        assert!(out.edp > 0.0);
        assert!(envelope.admits(&out.accelerator).is_ok());
    }

    #[test]
    fn deterministic_under_seed() {
        let model = CostModel::new();
        let envelope = ResourceConstraint::from_design(&baselines::shidiannao());
        let cfg = JointConfig::quick(11);
        let accuracy = AccuracyModel::default();
        let a = search_joint(&model, &envelope, &accuracy, &cfg).unwrap();
        let b = search_joint(&model, &envelope, &accuracy, &cfg).unwrap();
        assert_eq!(a.subnet, b.subnet);
        assert_eq!(a.edp, b.edp);
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let model = CostModel::new();
        let envelope = ResourceConstraint::from_design(&baselines::eyeriss());
        let mut cfg = JointConfig::quick(6);
        let accuracy = AccuracyModel::default();
        cfg.accel.threads = 1;
        let single = search_joint(&model, &envelope, &accuracy, &cfg).unwrap();
        cfg.accel.threads = 4;
        let multi = search_joint(&model, &envelope, &accuracy, &cfg).unwrap();
        assert_eq!(single.subnet, multi.subnet);
        assert_eq!(single.accelerator, multi.accelerator);
        assert_eq!(single.edp, multi.edp);
    }

    #[test]
    fn stepwise_and_oneshot_agree() {
        let model = CostModel::new();
        let envelope = ResourceConstraint::from_design(&baselines::eyeriss());
        let cfg = JointConfig::quick(17);
        let accuracy = AccuracyModel::default();
        let oneshot = search_joint(&model, &envelope, &accuracy, &cfg).unwrap();

        let engine = CoSearchEngine::new(cfg.accel.threads);
        let mut state = joint_search_init(&envelope, &cfg);
        let mut steps = 0;
        while joint_search_step(&engine, &model, &accuracy, &mut state) {
            steps += 1;
        }
        assert_eq!(steps, cfg.accel.iterations);
        let stepped = state.into_result().unwrap();
        assert_eq!(stepped, oneshot);
    }

    #[test]
    fn checkpointed_joint_search_resumes_to_identical_result() {
        let model = CostModel::new();
        let envelope = ResourceConstraint::from_design(&baselines::eyeriss());
        let cfg = JointConfig::quick(23);
        let accuracy = AccuracyModel::default();
        let uninterrupted = search_joint(&model, &envelope, &accuracy, &cfg).unwrap();

        // Run one generation, freeze, thaw, resume on a *fresh* engine
        // (cold cache — content-derived seeds make that immaterial).
        let engine = CoSearchEngine::new(2);
        let mut state = joint_search_init(&envelope, &cfg);
        assert!(joint_search_step(&engine, &model, &accuracy, &mut state));
        let path =
            std::env::temp_dir().join(format!("naas-joint-ckpt-{}.json", std::process::id()));
        naas_engine::checkpoint::save(&path, &state).unwrap();
        let thawed: JointSearchState = naas_engine::checkpoint::load(&path).unwrap();
        assert_eq!(thawed, state);

        let fresh = CoSearchEngine::new(2);
        let resumed = resume_joint_search(&fresh, &model, &accuracy, thawed, None).unwrap();
        assert_eq!(resumed, uninterrupted);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn pareto_sweep_respects_floors() {
        let model = CostModel::new();
        let envelope = ResourceConstraint::from_design(&baselines::eyeriss());
        let cfg = JointConfig::quick(8);
        let accuracy = AccuracyModel::default();
        let entries = pareto_sweep(&model, &envelope, &accuracy, &cfg, &[74.0, 76.5]);
        assert!(!entries.is_empty());
        for e in &entries {
            assert!(
                e.result.accuracy >= e.floor,
                "floor {} violated by {}",
                e.floor,
                e.result.accuracy
            );
        }
        // Higher floors cannot make EDP better (larger feasible nets).
        if entries.len() == 2 {
            assert!(entries[1].result.edp >= entries[0].result.edp * 0.5);
        }
    }

    #[test]
    fn infeasible_floor_is_skipped() {
        let model = CostModel::new();
        let envelope = ResourceConstraint::from_design(&baselines::shidiannao());
        let cfg = JointConfig::quick(9);
        let accuracy = AccuracyModel::default();
        // 99% is above the surrogate's ceiling — no feasible subnet.
        let entries = pareto_sweep(&model, &envelope, &accuracy, &cfg, &[99.0]);
        assert!(entries.is_empty());
    }
}
