//! Shape-keyed memoization of per-layer mapping searches.
//!
//! Networks repeat layer shapes heavily (ResNet-50's 54 layers collapse to
//! ~22 distinct shapes), and the inner mapping search is the hot path of
//! the whole co-search, so both the paper's MAESTRO harness and this
//! reproduction dedupe evaluation by layer shape.
//!
//! This single-call cache is the small sibling of the engine's
//! population-scale one: `naas_engine::MemoCache` keys the same
//! [`LayerKey`] under a design fingerprint and shares results across
//! candidates, generations and searches (see [`crate::engine`]).

use naas_ir::ConvSpec;
use std::collections::HashMap;

/// The shape identity of a convolution workload. Now defined in
/// `naas_engine::cache` (the shared memo cache generalizes this module);
/// re-exported here for continuity.
pub use naas_engine::LayerKey;

/// A memo table from layer shape to search results.
#[derive(Debug, Default)]
pub struct LayerCache<V> {
    map: HashMap<LayerKey, V>,
}

impl<V> LayerCache<V> {
    /// Creates an empty cache.
    pub fn new() -> Self {
        LayerCache {
            map: HashMap::new(),
        }
    }

    /// Returns the cached value for a layer's shape, computing and
    /// inserting it on miss.
    pub fn get_or_insert_with(&mut self, layer: &ConvSpec, f: impl FnOnce() -> V) -> &V {
        self.map.entry(LayerKey::of(layer)).or_insert_with(f)
    }

    /// Number of distinct shapes cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` if nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use naas_ir::models;

    #[test]
    fn same_shape_same_key_different_name() {
        let a = ConvSpec::conv2d("a", 64, 64, (56, 56), (3, 3), 1, 1).unwrap();
        let b = ConvSpec::conv2d("b", 64, 64, (56, 56), (3, 3), 1, 1).unwrap();
        assert_eq!(LayerKey::of(&a), LayerKey::of(&b));
    }

    #[test]
    fn different_stride_different_key() {
        let a = ConvSpec::conv2d("a", 64, 64, (56, 56), (3, 3), 1, 1).unwrap();
        let b = ConvSpec::conv2d("b", 64, 64, (56, 56), (3, 3), 2, 1).unwrap();
        assert_ne!(LayerKey::of(&a), LayerKey::of(&b));
    }

    #[test]
    fn resnet_dedupes_substantially() {
        let net = models::resnet50(224);
        let mut cache: LayerCache<u32> = LayerCache::new();
        let mut computed = 0;
        for l in net.layers() {
            cache.get_or_insert_with(l, || {
                computed += 1;
                0
            });
        }
        assert_eq!(cache.len(), computed);
        assert!(
            cache.len() * 2 < net.len(),
            "expected ≥2× dedup: {} shapes for {} layers",
            cache.len(),
            net.len()
        );
    }

    #[test]
    fn cache_hits_do_not_recompute() {
        let l = ConvSpec::conv2d("a", 8, 8, (8, 8), (3, 3), 1, 1).unwrap();
        let mut cache: LayerCache<u32> = LayerCache::new();
        cache.get_or_insert_with(&l, || 1);
        let v = *cache.get_or_insert_with(&l, || panic!("must not recompute"));
        assert_eq!(v, 1);
    }
}
