//! Deterministic bounded Pareto archive for multi-objective search.
//!
//! In `--objectives pareto` mode the search keeps, alongside its scalar
//! trajectory, the non-dominated front of every valid candidate's
//! [`ObjectiveVector`]. The archive is the *only* multi-objective state:
//! the optimizer still consumes the scalarized reward, so the candidate
//! stream is bit-identical to scalar mode and the archive's content is a
//! pure function of that stream. Determinism is load-bearing — the
//! distributed coordinator merges shard results in candidate order and
//! must produce a byte-identical front to a single-process run — so
//! every rule below is total and stable:
//!
//! * **Insert order** is global candidate order: `candidate_index =
//!   iteration * population + slot`, assigned before any sharding.
//! * **Dominance insert**: a candidate dominated by (or equal to) an
//!   archived entry is rejected (counted); otherwise it evicts every
//!   entry it dominates and joins the front, which stays sorted by
//!   `candidate_index`.
//! * **Bounded truncation**: past [`ParetoArchive::capacity`], the entry
//!   with the smallest hypervolume contribution (exclusive hypervolume
//!   against [`REFERENCE`]) is dropped; contribution ties drop the
//!   *largest* `candidate_index` — the front prefers older discoveries,
//!   which is the stable choice under resume.
//!
//! Hypervolume is computed exactly (HSO-style recursive dimension
//! sweep) in a normalized minimization space: each objective is mapped
//! to `[0, 1)` against the fixed reference point, so archives from any
//! run are comparable and contributions keep full `f64` resolution
//! instead of cancelling at ~1e47 magnitudes.

use naas_accel::Accelerator;
use naas_cost::ObjectiveVector;
use serde::{Deserialize, Serialize};

/// The fixed hypervolume reference point (worst corner). Chosen far
/// beyond any design this cost model can produce (suite latencies and
/// energies sit around 1e9–1e12, areas below 1e9 µm²) so it never
/// clips a real candidate, and *fixed* so hypervolume gauges are
/// comparable across runs, processes and checkpoints. Accuracy is −1
/// (one point below "no accuracy information") so accelerator-only
/// fronts, where every vector carries [`ObjectiveVector::NO_ACCURACY`],
/// still span a non-degenerate box along the accuracy axis.
pub const REFERENCE: ObjectiveVector = ObjectiveVector {
    latency_cycles: 1_000_000_000_000_000,
    energy_nj: 1e15,
    area_um2: 1e15,
    accuracy: -1.0,
};

/// Default archive bound: enough to render a useful frontier, small
/// enough that exact hypervolume truncation stays cheap.
pub const DEFAULT_CAPACITY: usize = 32;

/// One archived non-dominated candidate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArchiveEntry {
    /// Global position in the candidate stream
    /// (`iteration * population + slot`) — the stable tie-break key.
    pub candidate_index: u64,
    /// The candidate's objective vector.
    pub objectives: ObjectiveVector,
    /// The accelerator design that achieved it.
    pub accelerator: Accelerator,
}

/// Deterministic bounded Pareto archive (see module docs for the
/// insert/truncate rules). Serialized whole into search checkpoints so
/// a resumed run restores a bit-identical front, counters included.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParetoArchive {
    capacity: usize,
    entries: Vec<ArchiveEntry>,
    /// Candidates that entered the front (possibly evicted later).
    pub inserts: u64,
    /// Candidates rejected as dominated by (or equal to) the front.
    pub rejections: u64,
}

impl ParetoArchive {
    /// An empty archive with [`DEFAULT_CAPACITY`].
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// An empty archive bounded at `capacity` entries (min 1).
    pub fn with_capacity(capacity: usize) -> Self {
        ParetoArchive {
            capacity: capacity.max(1),
            entries: Vec::new(),
            inserts: 0,
            rejections: 0,
        }
    }

    /// The archive bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current front, sorted by `candidate_index` ascending.
    pub fn entries(&self) -> &[ArchiveEntry] {
        &self.entries
    }

    /// Number of entries on the front.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the front is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Offers one candidate to the archive; returns `true` if it joined
    /// the front. Must be called in global candidate order — the
    /// `candidate_index` tie-breaks are only meaningful if inserts are
    /// replayed identically everywhere (single-process, distributed
    /// merge, resume).
    pub fn offer(
        &mut self,
        candidate_index: u64,
        objectives: ObjectiveVector,
        accelerator: &Accelerator,
    ) -> bool {
        let dominated = self
            .entries
            .iter()
            .any(|e| e.objectives.dominates(&objectives) || e.objectives == objectives);
        if dominated {
            self.rejections += 1;
            return false;
        }
        self.entries
            .retain(|e| !objectives.dominates(&e.objectives));
        let pos = self
            .entries
            .partition_point(|e| e.candidate_index < candidate_index);
        self.entries.insert(
            pos,
            ArchiveEntry {
                candidate_index,
                objectives,
                accelerator: accelerator.clone(),
            },
        );
        self.inserts += 1;
        self.truncate_to_capacity();
        true
    }

    /// Exact hypervolume of the front against [`REFERENCE`], in
    /// normalized units (each axis scaled to `[0, 1]`, so the value is
    /// bounded by 1). Monotone under insert; the telemetry gauge.
    pub fn hypervolume(&self) -> f64 {
        let points: Vec<Vec<f64>> = self
            .entries
            .iter()
            .filter_map(|e| normalized(&e.objectives))
            .collect();
        union_volume(points)
    }

    fn truncate_to_capacity(&mut self) {
        while self.entries.len() > self.capacity {
            let coords: Vec<Option<Vec<f64>>> = self
                .entries
                .iter()
                .map(|e| normalized(&e.objectives))
                .collect();
            let all: Vec<Vec<f64>> = coords.iter().flatten().cloned().collect();
            let total = union_volume(all);
            // Smallest exclusive contribution loses; on ties the largest
            // candidate_index loses (entries are sorted ascending, so a
            // later equal-contribution entry overwrites the pick).
            let mut drop_at = 0usize;
            let mut drop_contribution = f64::INFINITY;
            for i in 0..self.entries.len() {
                let rest: Vec<Vec<f64>> = coords
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .filter_map(|(_, p)| p.clone())
                    .collect();
                let contribution = total - union_volume(rest);
                if contribution <= drop_contribution {
                    drop_at = i;
                    drop_contribution = contribution;
                }
            }
            self.entries.remove(drop_at);
        }
    }

    /// A compact textual rendering of the front for CLI output, one
    /// line per entry in candidate order.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "pareto front: {} entries (capacity {}), hypervolume {:.6e}\n",
            self.entries.len(),
            self.capacity,
            self.hypervolume()
        ));
        out.push_str(&format!(
            "  inserts {}  dominated-rejections {}\n",
            self.inserts, self.rejections
        ));
        for e in &self.entries {
            out.push_str(&format!(
                "  #{:<6} latency {:>12} cyc  energy {:>12.4e} nJ  area {:>10.4e} um2  accuracy {:>6.2}\n",
                e.candidate_index,
                e.objectives.latency_cycles,
                e.objectives.energy_nj,
                e.objectives.area_um2,
                e.objectives.accuracy,
            ));
        }
        out
    }
}

impl Default for ParetoArchive {
    fn default() -> Self {
        Self::new()
    }
}

/// Maps a vector into normalized minimization space against
/// [`REFERENCE`]: every coordinate lands in `[0, 1)` (0 is best), or
/// `None` if the vector sits at or beyond the reference on some axis —
/// such a point spans no volume and is skipped by the hypervolume
/// computation (it can still occupy the front via dominance).
fn normalized(o: &ObjectiveVector) -> Option<Vec<f64>> {
    let accuracy_span = 100.0 - REFERENCE.accuracy;
    let coords = vec![
        o.latency_cycles as f64 / REFERENCE.latency_cycles as f64,
        o.energy_nj / REFERENCE.energy_nj,
        o.area_um2 / REFERENCE.area_um2,
        (100.0 - o.accuracy) / accuracy_span,
    ];
    if coords.iter().any(|&c| c >= 1.0) {
        return None;
    }
    Some(coords.into_iter().map(|c| c.max(0.0)).collect())
}

/// Exact volume of the union of boxes `[p, 1]^d` over normalized
/// minimization points — HSO-style recursion: slice along the last
/// dimension at each point's coordinate, recurse on the projection of
/// the points active in each slab.
fn union_volume(mut points: Vec<Vec<f64>>) -> f64 {
    if points.is_empty() {
        return 0.0;
    }
    let d = points[0].len();
    if d == 1 {
        let lowest = points.iter().map(|p| p[0]).fold(1.0, f64::min);
        return 1.0 - lowest;
    }
    // All coordinates are finite members of [0, 1], so the comparison
    // is total; ties produce zero-width slabs and cannot affect the sum.
    points.sort_by(|a, b| {
        a[d - 1]
            .partial_cmp(&b[d - 1])
            .expect("normalized coordinates are finite")
    });
    let mut volume = 0.0;
    for i in 0..points.len() {
        let z0 = points[i][d - 1];
        let z1 = if i + 1 < points.len() {
            points[i + 1][d - 1]
        } else {
            1.0
        };
        if z1 > z0 {
            let slab: Vec<Vec<f64>> = points[..=i].iter().map(|p| p[..d - 1].to_vec()).collect();
            volume += (z1 - z0) * union_volume(slab);
        }
    }
    volume
}

#[cfg(test)]
mod tests {
    use super::*;
    use naas_accel::baselines;

    fn v(lat: u64, e: f64, a: f64, acc: f64) -> ObjectiveVector {
        ObjectiveVector {
            latency_cycles: lat,
            energy_nj: e,
            area_um2: a,
            accuracy: acc,
        }
    }

    fn design() -> Accelerator {
        baselines::eyeriss()
    }

    #[test]
    fn dominated_offers_are_rejected_and_counted() {
        let mut a = ParetoArchive::new();
        assert!(a.offer(0, v(100, 10.0, 1.0, 0.0), &design()));
        assert!(!a.offer(1, v(200, 20.0, 2.0, 0.0), &design()), "dominated");
        assert!(!a.offer(2, v(100, 10.0, 1.0, 0.0), &design()), "equal");
        assert_eq!((a.inserts, a.rejections), (1, 2));
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn dominating_offer_evicts_the_dominated() {
        let mut a = ParetoArchive::new();
        a.offer(0, v(100, 10.0, 1.0, 0.0), &design());
        a.offer(1, v(90, 12.0, 1.0, 0.0), &design()); // incomparable, joins
        assert_eq!(a.len(), 2);
        assert!(
            a.offer(2, v(80, 9.0, 0.5, 0.0), &design()),
            "dominates both"
        );
        assert_eq!(a.len(), 1);
        assert_eq!(a.entries()[0].candidate_index, 2);
    }

    #[test]
    fn front_stays_sorted_by_candidate_index() {
        let mut a = ParetoArchive::new();
        a.offer(5, v(100, 10.0, 1.0, 0.0), &design());
        a.offer(7, v(90, 12.0, 1.0, 0.0), &design());
        a.offer(9, v(95, 11.0, 0.9, 0.0), &design());
        let indices: Vec<u64> = a.entries().iter().map(|e| e.candidate_index).collect();
        assert_eq!(indices, vec![5, 7, 9]);
    }

    #[test]
    fn hypervolume_is_monotone_under_insert() {
        let mut a = ParetoArchive::new();
        let mut last = 0.0;
        let points = [
            v(1_000_000, 1e6, 1e6, 0.0),
            v(900_000, 1.1e6, 1e6, 0.0),
            v(800_000, 1.2e6, 1e6, 0.0),
            v(1_100_000, 0.9e6, 1e6, 0.0),
        ];
        for (i, p) in points.iter().enumerate() {
            a.offer(i as u64, *p, &design());
            let hv = a.hypervolume();
            assert!(
                hv >= last - 1e-12,
                "hypervolume shrank after insert: {hv} < {last}"
            );
            last = hv;
        }
        assert!(last > 0.0);
    }

    #[test]
    fn truncation_drops_smallest_contribution() {
        let mut a = ParetoArchive::with_capacity(2);
        // Three mutually incomparable points; the middle one is nearly
        // dominated (tiny exclusive contribution) and must be dropped.
        a.offer(0, v(100_000, 1e6, 1e6, 0.0), &design());
        a.offer(1, v(99_999, 1.000_001e6, 1e6, 0.0), &design());
        a.offer(2, v(50_000, 2e6, 1e6, 0.0), &design());
        assert_eq!(a.len(), 2);
        let indices: Vec<u64> = a.entries().iter().map(|e| e.candidate_index).collect();
        // #1 buys almost nothing over #0 (1 cycle at 1e-3 nJ cost);
        // #0 and #2 anchor large exclusive regions.
        assert_eq!(indices, vec![0, 2]);
    }

    #[test]
    fn truncation_ties_drop_the_later_candidate() {
        // Points at or beyond the reference span no volume, so their
        // exclusive contributions are *exactly* 0.0 — a guaranteed tie
        // (float subtraction makes symmetric constructions only
        // approximately equal). The later candidate_index must lose.
        const FAR: u64 = 2_000_000_000_000_000; // past REFERENCE.latency_cycles
        let mut a = ParetoArchive::with_capacity(2);
        a.offer(0, v(FAR, 300.0, 100.0, 0.0), &design());
        a.offer(1, v(FAR + 1, 200.0, 100.0, 0.0), &design());
        a.offer(2, v(FAR + 2, 100.0, 100.0, 0.0), &design());
        let indices: Vec<u64> = a.entries().iter().map(|e| e.candidate_index).collect();
        assert_eq!(indices, vec![0, 1], "tied contributions drop the newest");
        // And with a real-volume anchor present, ties still resolve
        // among the zero-contribution entries only.
        let mut b = ParetoArchive::with_capacity(2);
        b.offer(0, v(FAR, 300.0, 100.0, 0.0), &design());
        b.offer(1, v(1_000, 400.0, 100.0, 0.0), &design());
        b.offer(2, v(FAR + 5, 100.0, 100.0, 0.0), &design());
        let indices: Vec<u64> = b.entries().iter().map(|e| e.candidate_index).collect();
        assert_eq!(indices, vec![0, 1], "positive contribution survives");
    }

    #[test]
    fn archive_round_trips_through_serde() {
        let mut a = ParetoArchive::with_capacity(4);
        a.offer(0, v(100_000, 1e6, 1e6, 0.0), &design());
        a.offer(1, v(90_000, 1.1e6, 1e6, 0.0), &design());
        a.offer(2, v(150_000, 0.9e6, 1e6, 0.0), &design());
        let json = serde_json::to_string(&a).unwrap();
        let back: ParetoArchive = serde_json::from_str(&json).unwrap();
        assert_eq!(back, a);
        assert_eq!(serde_json::to_string(&back).unwrap(), json);
    }

    #[test]
    fn points_beyond_the_reference_span_no_volume() {
        let mut a = ParetoArchive::new();
        a.offer(0, v(u64::MAX, 1e20, 1e20, 0.0), &design());
        assert_eq!(a.len(), 1, "dominance still archives it");
        assert_eq!(a.hypervolume(), 0.0);
    }

    #[test]
    fn render_names_every_entry() {
        let mut a = ParetoArchive::new();
        a.offer(3, v(100, 10.0, 1.0, 75.5), &design());
        let text = a.render();
        assert!(text.contains("1 entries"));
        assert!(text.contains("#3"));
        assert!(text.contains("75.50"));
    }
}
