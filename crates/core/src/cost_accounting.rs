//! Search-cost accounting — reproduces Table IV.
//!
//! The paper compares the *development cost* of producing matched
//! (network, accelerator) pairs for `N` deployment scenarios, in GPU days
//! (Gds), AWS dollars and CO₂ pounds. NASAIC's meta-controller trains
//! every sampled network from scratch (500 episodes × 12 Gd, projected);
//! NHAS decouples training but retrains each deployment's network
//! (16 N Gd); NAAS rides a single Once-For-All supernet training
//! (50 Gd, paid once) plus a sub-GPU-day evolution per scenario.

use serde::{Deserialize, Serialize};

/// AWS on-demand price of a P3.16xlarge-class GPU day (paper footnote).
pub const AWS_DOLLARS_PER_GPU_DAY: f64 = 75.0;
/// CO₂ emission per GPU day, after Strubell et al. (paper footnote).
pub const CO2_LBS_PER_GPU_DAY: f64 = 7.5;

/// A search-cost decomposition in GPU days.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchCost {
    /// Approach label.
    pub approach: String,
    /// Co-search (exploration) cost in GPU days.
    pub co_search_gd: f64,
    /// Network training cost in GPU days.
    pub training_gd: f64,
}

impl SearchCost {
    /// Total GPU days.
    pub fn total_gd(&self) -> f64 {
        self.co_search_gd + self.training_gd
    }

    /// AWS cost in dollars.
    pub fn aws_dollars(&self) -> f64 {
        self.total_gd() * AWS_DOLLARS_PER_GPU_DAY
    }

    /// CO₂ emission in pounds.
    pub fn co2_lbs(&self) -> f64 {
        self.total_gd() * CO2_LBS_PER_GPU_DAY
    }
}

/// NASAIC's cost for `n` deployment scenarios: 500 episodes × 12 Gd of
/// from-scratch training per scenario, plus final training
/// (optimistic projection from CIFAR, as the paper notes).
pub fn nasaic_cost(n: u32) -> SearchCost {
    let n = n as f64;
    SearchCost {
        approach: "NASAIC".to_string(),
        co_search_gd: 500.0 * 12.0 * n,
        training_gd: 16.0 * n,
    }
}

/// NHAS's cost for `n` scenarios: a 12-Gd one-time supernet + 4 Gd of
/// search per scenario, plus 16 Gd retraining per deployment.
pub fn nhas_cost(n: u32) -> SearchCost {
    let n = n as f64;
    SearchCost {
        approach: "NHAS".to_string(),
        co_search_gd: 12.0 + 4.0 * n,
        training_gd: 16.0 * n,
    }
}

/// NAAS's cost for `n` scenarios: one 50-Gd Once-For-All training
/// (amortized across all deployments, no retraining) plus < 0.25 Gd of
/// evolution per scenario.
pub fn naas_cost(n: u32) -> SearchCost {
    let n = n as f64;
    SearchCost {
        approach: "NAAS (ours)".to_string(),
        co_search_gd: 0.25 * n,
        training_gd: 50.0,
    }
}

/// Converts a *measured* co-search throughput into GPU-day units:
/// `evaluations` cost-model calls at `evals_per_second` on one machine.
/// This grounds the `<0.25 N` claim with this repository's own numbers.
pub fn measured_co_search_gd(evaluations: u64, evals_per_second: f64) -> f64 {
    assert!(evals_per_second > 0.0, "throughput must be positive");
    evaluations as f64 / evals_per_second / 86_400.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_ordering_holds() {
        for n in [1u32, 2, 5, 10] {
            let nasaic = nasaic_cost(n).total_gd();
            let nhas = nhas_cost(n).total_gd();
            assert!(nhas < nasaic, "NHAS must beat NASAIC at N={n}");
        }
        // NAAS's one-time 50-Gd OFA training amortizes: it overtakes NHAS
        // from the second deployment scenario onward (12+20N vs 50+0.25N).
        assert!(naas_cost(1).total_gd() > nhas_cost(1).total_gd());
        for n in [2u32, 5, 10] {
            assert!(
                naas_cost(n).total_gd() < nhas_cost(n).total_gd(),
                "NAAS must beat NHAS at N={n}"
            );
        }
    }

    #[test]
    fn paper_claims_at_n_equals_one() {
        // NASAIC ≈ 6000 Gd co-search; ours < 50.25 total; ratio > 120×.
        let ratio = nasaic_cost(1).total_gd() / naas_cost(1).total_gd();
        assert!(ratio > 119.0, "got {ratio}");
    }

    #[test]
    fn aws_and_co2_scale_with_total() {
        let c = nhas_cost(2);
        assert!((c.aws_dollars() - c.total_gd() * 75.0).abs() < 1e-9);
        assert!((c.co2_lbs() - c.total_gd() * 7.5).abs() < 1e-9);
    }

    #[test]
    fn measured_cost_is_tiny() {
        // 3M evaluations at 100k evals/s ≈ 30 s ≈ 3.5e-4 days.
        let gd = measured_co_search_gd(3_000_000, 100_000.0);
        assert!(gd < 0.001);
    }
}
