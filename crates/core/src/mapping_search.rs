//! The inner loop of NAAS: per-layer compiler mapping search (paper §II-B).
//!
//! Every layer is optimized independently ("different convolution layers
//! may not share the same optimal mapping strategy") with the same
//! evolution strategy as the outer loop, over the mapping encoding of
//! Fig. 2/3: per-level loop-order importances and tiling ratios plus the
//! PE-level order.

use crate::engine::MappingMemo;
use crate::layer_cache::LayerCache;
use crate::pipeline::EvalPipeline;
use naas_accel::Accelerator;
use naas_cost::{CostModel, LayerCost, NetworkCost};
use naas_engine::LayerKey;
use naas_ir::{ConvSpec, Network};
use naas_mapping::Mapping;
use naas_opt::{CemEs, EncodingScheme, EsConfig, MappingEncoder, Optimizer, RandomSearch};
use serde::{Deserialize, Serialize};

/// Configuration of the per-layer mapping search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MappingSearchConfig {
    /// Candidates per generation.
    pub population: usize,
    /// Generations of the evolution strategy.
    pub iterations: usize,
    /// Encoding for non-numerical parameters (importance vs. index —
    /// Fig. 9 ablates this).
    pub scheme: EncodingScheme,
    /// Use uniform random sampling instead of evolution (Fig. 4 baseline).
    pub random: bool,
    /// Attempts to find a capacity-valid candidate per population slot
    /// before scoring it infeasible.
    pub resample_limit: usize,
    /// Seed the search with the balanced heuristic mapping (on by
    /// default; the encoding ablation of Fig. 9 turns it off so the
    /// encodings must discover good mappings unaided).
    pub seed_with_heuristic: bool,
    /// Evolution-strategy hyper-parameters.
    pub es: EsConfig,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MappingSearchConfig {
    fn default() -> Self {
        MappingSearchConfig {
            population: 16,
            iterations: 6,
            scheme: EncodingScheme::Importance,
            random: false,
            resample_limit: 25,
            seed_with_heuristic: true,
            es: EsConfig::default(),
            seed: 0,
        }
    }
}

impl MappingSearchConfig {
    /// A tiny-budget configuration for tests and smoke runs.
    pub fn quick(seed: u64) -> Self {
        MappingSearchConfig {
            population: 8,
            iterations: 3,
            seed,
            ..MappingSearchConfig::default()
        }
    }
}

/// Outcome of a per-layer mapping search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MappingSearchResult {
    /// The best mapping found.
    pub mapping: Mapping,
    /// Its cost on the target design.
    pub cost: LayerCost,
    /// Capacity-valid candidates evaluated.
    pub evaluations: usize,
    /// Best EDP after each generation (inner-loop convergence trace,
    /// the per-layer analogue of Fig. 4's outer-loop curve).
    pub history: Vec<f64>,
}

/// Searches the mapping space of one layer on one design, returning the
/// lowest-EDP mapping found.
///
/// The balanced heuristic mapping seeds the comparison: the search result
/// is never worse than [`Mapping::balanced`] (when that heuristic is
/// itself capacity-valid). Returns `None` only when *no* valid mapping was
/// found within the budget — the signal the outer loop uses to discard an
/// accelerator candidate.
///
/// Runs on this worker thread's recycled [`EvalPipeline`] (engine pool
/// jobs each get their own); callers that manage their own buffers use
/// [`search_layer_mapping_with`].
pub fn search_layer_mapping(
    model: &CostModel,
    layer: &ConvSpec,
    accel: &Accelerator,
    cfg: &MappingSearchConfig,
) -> Option<MappingSearchResult> {
    crate::pipeline::with_thread_pipeline(|pipeline| {
        search_layer_mapping_with(pipeline, model, layer, accel, cfg)
    })
}

/// [`search_layer_mapping`] on a caller-owned [`EvalPipeline`].
///
/// Each generation is one batched propose → decode → evaluate → tell
/// cycle over the pipeline's recycled buffers; the resample-on-capacity-
/// failure semantics of §II-A0c and the optimizer's RNG consumption are
/// identical to the historical scalar loop (see `pipeline` module docs),
/// so results are bit-identical to it.
pub fn search_layer_mapping_with(
    pipeline: &mut EvalPipeline,
    model: &CostModel,
    layer: &ConvSpec,
    accel: &Accelerator,
    cfg: &MappingSearchConfig,
) -> Option<MappingSearchResult> {
    let encoder = MappingEncoder::new(accel.connectivity().ndim(), cfg.scheme);
    let mut es: Box<dyn Optimizer> = if cfg.random {
        Box::new(RandomSearch::new(encoder.dim(), cfg.seed))
    } else {
        Box::new(CemEs::new(encoder.dim(), cfg.es, cfg.seed))
    };

    let mut evaluations = 0usize;
    let mut best: Option<(Mapping, LayerCost)> = None;

    // Seed with the capacity-aware heuristic (unless ablated away).
    if cfg.seed_with_heuristic {
        let seed_mapping = Mapping::balanced(layer, accel);
        if let Ok(cost) = model.evaluate_with(pipeline.scratch_mut(), layer, accel, &seed_mapping) {
            evaluations += 1;
            best = Some((seed_mapping, cost));
        }
    }

    let mut history = Vec::with_capacity(cfg.iterations);
    for _ in 0..cfg.iterations {
        let outcome = pipeline.run_generation(
            es.as_mut(),
            &encoder,
            model,
            layer,
            accel,
            cfg.population,
            cfg.resample_limit,
            &mut best,
        );
        evaluations += outcome.valid;
        es.tell(pipeline.scored(outcome.scored));
        history.push(best.as_ref().map_or(f64::INFINITY, |(_, c)| c.edp()));
    }

    best.map(|(mapping, cost)| MappingSearchResult {
        mapping,
        cost,
        evaluations,
        history,
    })
}

/// Runs the mapping search for every layer of a network (deduplicated by
/// layer shape) and returns the aggregate cost, or `None` if any layer
/// has no valid mapping on this design.
///
/// Memoization is local to this call; population-scale searches go
/// through [`network_mapping_search_cached`] instead, which shares
/// results across candidates, generations and searches.
pub fn network_mapping_search(
    model: &CostModel,
    network: &Network,
    accel: &Accelerator,
    cfg: &MappingSearchConfig,
) -> Option<NetworkCost> {
    let mut cache: LayerCache<Option<MappingSearchResult>> = LayerCache::new();
    let mut layers = Vec::with_capacity(network.len());
    for layer in network {
        let result = cache
            .get_or_insert_with(layer, || search_layer_mapping(model, layer, accel, cfg))
            .as_ref()?;
        layers.push(result.cost);
    }
    Some(NetworkCost { layers })
}

/// Identity of a design point in the shared memo cache: the accelerator
/// plus the *entire* inner-search configuration (budget, encoding, base
/// seed). Two evaluations share cache entries exactly when this
/// fingerprint — and therefore the full inner-search behaviour — agrees.
pub fn design_fingerprint(accel: &Accelerator, cfg: &MappingSearchConfig) -> u64 {
    naas_engine::fingerprint(&(accel, cfg))
}

/// The seed the inner search uses for one layer of one design under the
/// shared cache: derived from content (base seed × design fingerprint ×
/// layer-shape fingerprint), never from slot/generation/thread indices.
/// This is what makes the shared cache sound *and* makes results
/// identical at any thread count, cold or warm.
pub fn layer_search_seed(base_seed: u64, design_fp: u64, key: &LayerKey) -> u64 {
    naas_engine::derive_seed(base_seed, design_fp, key.fingerprint())
}

/// [`network_mapping_search`] through a shared [`MappingMemo`]: per-layer
/// results are reused across every candidate, generation and search that
/// shares the cache. Returns `None` if any layer has no valid mapping on
/// this design (negative results are cached too).
pub fn network_mapping_search_cached(
    model: &CostModel,
    network: &Network,
    accel: &Accelerator,
    cfg: &MappingSearchConfig,
    cache: &MappingMemo,
) -> Option<NetworkCost> {
    network_mapping_search_memo(
        model,
        network,
        accel,
        cfg,
        cache,
        design_fingerprint(accel, cfg),
    )
}

/// [`network_mapping_search_cached`] with the design fingerprint
/// precomputed — callers that evaluate one design many times (several
/// networks per candidate, thousands of subnets in a NAS evolution)
/// hoist the serialization+hash out of the hot loop. `design_fp` must be
/// `design_fingerprint(accel, cfg)` for the cache to be sound.
pub fn network_mapping_search_memo(
    model: &CostModel,
    network: &Network,
    accel: &Accelerator,
    cfg: &MappingSearchConfig,
    cache: &MappingMemo,
    design_fp: u64,
) -> Option<NetworkCost> {
    let fp = design_fp;
    let mut layers = Vec::with_capacity(network.len());
    for layer in network {
        let key = LayerKey::of(layer);
        let result = cache.get_or_compute(fp, key, || {
            let seeded = MappingSearchConfig {
                seed: layer_search_seed(cfg.seed, fp, &key),
                ..*cfg
            };
            search_layer_mapping(model, layer, accel, &seeded)
        })?;
        layers.push(result.cost);
    }
    Some(NetworkCost { layers })
}

#[cfg(test)]
mod tests {
    use super::*;
    use naas_accel::baselines;
    use naas_ir::models;

    fn layer() -> ConvSpec {
        ConvSpec::conv2d("c", 64, 128, (28, 28), (3, 3), 1, 1).unwrap()
    }

    #[test]
    fn search_beats_or_matches_heuristic() {
        let model = CostModel::new();
        let accel = baselines::eyeriss();
        let l = layer();
        let heuristic = model
            .evaluate(&l, &accel, &Mapping::balanced(&l, &accel))
            .expect("heuristic valid");
        let searched = search_layer_mapping(&model, &l, &accel, &MappingSearchConfig::quick(1))
            .expect("search succeeds");
        assert!(searched.cost.edp() <= heuristic.edp());
    }

    #[test]
    fn more_budget_does_not_hurt() {
        let model = CostModel::new();
        let accel = baselines::nvdla_256();
        let l = layer();
        let small = search_layer_mapping(&model, &l, &accel, &MappingSearchConfig::quick(7))
            .unwrap()
            .cost
            .edp();
        let big_cfg = MappingSearchConfig {
            population: 24,
            iterations: 10,
            seed: 7,
            ..MappingSearchConfig::default()
        };
        let big = search_layer_mapping(&model, &l, &accel, &big_cfg)
            .unwrap()
            .cost
            .edp();
        assert!(big <= small * 1.001);
    }

    #[test]
    fn deterministic_under_seed() {
        let model = CostModel::new();
        let accel = baselines::shidiannao();
        let l = layer();
        let cfg = MappingSearchConfig::quick(99);
        let a = search_layer_mapping(&model, &l, &accel, &cfg).unwrap();
        let b = search_layer_mapping(&model, &l, &accel, &cfg).unwrap();
        assert_eq!(a.mapping, b.mapping);
        assert_eq!(a.cost.cycles, b.cost.cycles);
    }

    #[test]
    fn history_is_monotone_non_increasing() {
        let model = CostModel::new();
        let accel = baselines::eyeriss();
        let out =
            search_layer_mapping(&model, &layer(), &accel, &MappingSearchConfig::quick(4)).unwrap();
        assert_eq!(out.history.len(), 3);
        for w in out.history.windows(2) {
            assert!(w[1] <= w[0], "best-so-far trace must not increase");
        }
        assert_eq!(*out.history.last().unwrap(), out.cost.edp());
    }

    #[test]
    fn network_search_covers_all_layers() {
        let model = CostModel::new();
        let accel = baselines::nvdla_1024();
        let net = models::cifar_resnet20();
        let cost = network_mapping_search(&model, &net, &accel, &MappingSearchConfig::quick(3))
            .expect("all layers mappable");
        assert_eq!(cost.layers.len(), net.len());
        assert!(cost.edp() > 0.0);
    }

    #[test]
    fn random_strategy_also_finds_valid_mappings() {
        let model = CostModel::new();
        let accel = baselines::eyeriss();
        let cfg = MappingSearchConfig {
            random: true,
            ..MappingSearchConfig::quick(5)
        };
        let out = search_layer_mapping(&model, &layer(), &accel, &cfg).expect("random finds");
        assert!(out.cost.edp() > 0.0);
    }

    #[test]
    fn index_scheme_works_end_to_end() {
        let model = CostModel::new();
        let accel = baselines::nvdla_256();
        let cfg = MappingSearchConfig {
            scheme: EncodingScheme::Index,
            ..MappingSearchConfig::quick(11)
        };
        let out = search_layer_mapping(&model, &layer(), &accel, &cfg).expect("index works");
        assert!(out.evaluations > 0);
    }
}
