//! The co-search's handle on the `naas-engine` subsystem.
//!
//! A [`CoSearchEngine`] bundles the two shared resources every search
//! loop in this crate draws on: a resolved worker count for the
//! work-stealing evaluator, and the process-wide mapping-result memo
//! cache. One engine can back many searches — an experiment that runs
//! several searches over the same envelope (Fig. 4's NAAS-vs-random
//! pair, Fig. 5's per-scenario baseline comparison, a Pareto sweep)
//! shares one cache and never pays twice for a `(design, layer-shape)`
//! pair.
//!
//! Sharing is *sound* because cached values are content-addressed: the
//! inner mapping search for a layer is seeded from the design and layer
//! fingerprints (see `naas_engine::fingerprint`), never from slot,
//! generation or thread indices — so a cache hit returns exactly what a
//! cold evaluation would have computed.

use crate::mapping_search::MappingSearchResult;
use naas_engine::{CacheStats, MemoCache};

/// The memo table shared by every search on one engine: design
/// fingerprint × layer shape → mapping-search outcome (`None` marks an
/// un-mappable layer, which is just as valuable to remember).
pub type MappingMemo = MemoCache<Option<MappingSearchResult>>;

/// Shared execution context for co-searches: worker pool size plus the
/// cross-search mapping memo cache.
pub struct CoSearchEngine {
    threads: usize,
    cache: MappingMemo,
}

impl CoSearchEngine {
    /// Creates an engine with `threads` workers (`0` = all cores) and an
    /// empty cache.
    pub fn new(threads: usize) -> Self {
        CoSearchEngine {
            threads: naas_engine::resolve_threads(threads),
            cache: MemoCache::new(),
        }
    }

    /// A single-threaded engine (useful for tests and baselines).
    pub fn single_threaded() -> Self {
        CoSearchEngine::new(1)
    }

    /// Resolved worker count (never 0).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The shared mapping memo cache.
    pub fn cache(&self) -> &MappingMemo {
        &self.cache
    }

    /// Cache occupancy/effectiveness counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_resolution() {
        assert!(CoSearchEngine::new(0).threads() >= 1);
        assert_eq!(CoSearchEngine::new(3).threads(), 3);
        assert_eq!(CoSearchEngine::single_threaded().threads(), 1);
    }

    #[test]
    fn fresh_engine_has_empty_cache() {
        let engine = CoSearchEngine::single_threaded();
        let stats = engine.cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (0, 0, 0));
    }
}
