//! Reward aggregation across benchmark networks.
//!
//! The paper uses the *geometric mean* of per-network EDP as the outer
//! loop's reward, "to provide a balanced performance on all benchmarks"
//! (§III-B) — an arithmetic mean would let one heavy network (VGG16)
//! dominate the gradient.

use serde::{Deserialize, Serialize};

/// How per-network EDPs aggregate into the outer loop's scalar reward.
///
/// The paper uses the geometric mean (§III-B); worst-case is the natural
/// alternative when a deployment must bound tail latency across models —
/// ablated in `benches/ablation_reward.rs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum RewardKind {
    /// Geometric mean over the benchmark networks (the paper's choice).
    #[default]
    Geomean,
    /// Maximum (worst) EDP over the benchmark networks.
    WorstCase,
}

impl RewardKind {
    /// Aggregates per-network EDPs into the scalar reward.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice or non-positive values (like [`geomean`]).
    pub fn aggregate(self, edps: &[f64]) -> f64 {
        match self {
            RewardKind::Geomean => geomean(edps),
            RewardKind::WorstCase => {
                assert!(!edps.is_empty(), "reward of empty set");
                edps.iter().fold(0.0_f64, |acc, &v| {
                    assert!(
                        v > 0.0 && v.is_finite(),
                        "reward requires positive finite values"
                    );
                    acc.max(v)
                })
            }
        }
    }
}

/// Geometric mean of strictly positive values.
///
/// Computed in log space for numerical robustness (EDPs span ~10 orders
/// of magnitude across our benchmark suite).
///
/// ```
/// use naas::geomean;
/// assert!((geomean(&[1.0, 100.0]) - 10.0).abs() < 1e-9);
/// assert!((geomean(&[7.5]) - 7.5).abs() < 1e-9);
/// ```
///
/// # Panics
///
/// Panics on an empty slice or non-positive values — both indicate a bug
/// in the calling search loop.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of empty set");
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(
                v > 0.0 && v.is_finite(),
                "geomean requires positive finite values, got {v}"
            );
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_manual_computation() {
        let vals = [2.0, 8.0];
        assert!((geomean(&vals) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn balanced_against_outliers() {
        // One huge value moves the arithmetic mean far more than the
        // geometric one — the property the paper relies on.
        let vals = [1.0, 1.0, 1000.0];
        let arith = vals.iter().sum::<f64>() / 3.0;
        assert!(geomean(&vals) < arith / 10.0);
    }

    #[test]
    fn huge_magnitudes_do_not_overflow() {
        let vals = [1e300, 1e280, 1e290];
        let g = geomean(&vals);
        assert!(g.is_finite() && g > 1e279);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rejected() {
        let _ = geomean(&[1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_rejected() {
        let _ = geomean(&[]);
    }

    #[test]
    fn reward_kinds_aggregate() {
        let edps = [2.0, 8.0, 4.0];
        assert!((RewardKind::Geomean.aggregate(&edps) - 4.0).abs() < 1e-12);
        assert_eq!(RewardKind::WorstCase.aggregate(&edps), 8.0);
        assert_eq!(RewardKind::default(), RewardKind::Geomean);
    }

    #[test]
    fn worst_case_dominates_geomean() {
        let edps = [1.0, 100.0];
        assert!(RewardKind::WorstCase.aggregate(&edps) >= RewardKind::Geomean.aggregate(&edps));
    }
}
