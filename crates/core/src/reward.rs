//! Reward policies: scalarization of per-network EDPs, and the opt-in
//! multi-objective alternative.
//!
//! The paper uses the *geometric mean* of per-network EDP as the outer
//! loop's reward, "to provide a balanced performance on all benchmarks"
//! (§III-B) — an arithmetic mean would let one heavy network (VGG16)
//! dominate the gradient. That geomean is one *scalarization policy*
//! over the candidate's full objective vector
//! ([`naas_cost::ObjectiveVector`]): every evaluation carries the
//! vector, [`RewardKind`] collapses it (via the per-network EDPs) into
//! the scalar the evolutionary optimizer consumes, and
//! [`ObjectivePolicy`] selects whether the search *additionally*
//! maintains the non-dominated front ([`crate::pareto`]).

use serde::{Deserialize, Serialize, Value};

/// How per-network EDPs scalarize into the outer loop's reward.
///
/// The paper uses the geometric mean (§III-B); worst-case is the natural
/// alternative when a deployment must bound tail latency across models —
/// ablated in `benches/ablation_reward.rs`. Either way the inputs are
/// the **per-network whole-suite EDPs** (`NetworkCost::edp`, cycles·nJ)
/// of one candidate — not per-layer EDPs, and not already-aggregated
/// rewards (see `naas::accel_search::evaluate_candidate` for the one
/// place the collapse happens).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum RewardKind {
    /// Geometric mean over the benchmark networks (the paper's choice).
    #[default]
    Geomean,
    /// Maximum (worst) EDP over the benchmark networks.
    WorstCase,
}

impl RewardKind {
    /// Aggregates one candidate's per-network EDPs into its scalar
    /// reward — the single scalarization point of the search stack.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice or non-positive/non-finite values (like
    /// [`geomean`]): locally computed EDPs satisfy the contract by
    /// construction, so a violation is a calling-loop bug. Values that
    /// crossed a trust boundary (the `evaluate_shard` wire) must be
    /// validated *before* they reach this function — the distributed
    /// coordinator rejects NaN/non-positive wire values at its
    /// deserialization seam (`naas::distributed`) and re-issues the
    /// shard instead of panicking here.
    pub fn aggregate(self, edps: &[f64]) -> f64 {
        match self {
            RewardKind::Geomean => geomean(edps),
            RewardKind::WorstCase => {
                assert!(!edps.is_empty(), "reward of empty set");
                edps.iter().fold(0.0_f64, |acc, &v| {
                    assert!(
                        v > 0.0 && v.is_finite(),
                        "reward requires positive finite values"
                    );
                    acc.max(v)
                })
            }
        }
    }
}

/// Whether the search optimizes the scalarized reward alone, or also
/// maintains a Pareto archive of the non-dominated objective vectors.
///
/// The policy never changes the search *trajectory*: in both modes the
/// optimizer consumes the [`RewardKind`]-scalarized reward, so a
/// `Pareto` run visits the exact candidates the default run visits and
/// its best-design output is bit-identical. `Pareto` additionally feeds
/// every valid candidate's objective vector through the deterministic
/// bounded archive in the search state ([`crate::pareto::ParetoArchive`])
/// and serializes the front into checkpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ObjectivePolicy {
    /// Optimize and report only the scalarized reward (the default —
    /// the paper's behaviour).
    #[default]
    Scalar,
    /// Scalar trajectory plus a deterministic bounded Pareto archive
    /// over `(latency, energy, area, accuracy)`.
    Pareto,
}

impl ObjectivePolicy {
    /// Parses the CLI spelling (`--objectives scalar|pareto`).
    ///
    /// # Errors
    ///
    /// The unknown value, echoed for the usage message.
    pub fn parse(value: &str) -> Result<Self, String> {
        match value {
            "scalar" => Ok(ObjectivePolicy::Scalar),
            "pareto" => Ok(ObjectivePolicy::Pareto),
            other => Err(format!(
                "unknown objective policy `{other}` (scalar|pareto)"
            )),
        }
    }
}

impl std::fmt::Display for ObjectivePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ObjectivePolicy::Scalar => write!(f, "scalar"),
            ObjectivePolicy::Pareto => write!(f, "pareto"),
        }
    }
}

// Hand-written (rather than derived) so that an *absent* field — a
// checkpoint written before the policy existed — deserializes to the
// default instead of failing the load: the vendored serde shim reads
// missing object fields as `Null`.
impl Serialize for ObjectivePolicy {
    fn serialize(&self) -> Value {
        match self {
            ObjectivePolicy::Scalar => Value::Str("Scalar".to_string()),
            ObjectivePolicy::Pareto => Value::Str("Pareto".to_string()),
        }
    }
}

impl Deserialize for ObjectivePolicy {
    fn deserialize(value: &Value) -> Result<Self, serde::Error> {
        match value {
            Value::Null => Ok(ObjectivePolicy::default()),
            Value::Str(s) if s == "Scalar" => Ok(ObjectivePolicy::Scalar),
            Value::Str(s) if s == "Pareto" => Ok(ObjectivePolicy::Pareto),
            other => Err(serde::Error(format!(
                "unrecognized ObjectivePolicy encoding: {other:?}"
            ))),
        }
    }
}

/// Geometric mean of strictly positive values.
///
/// Computed in log space for numerical robustness (EDPs span ~10 orders
/// of magnitude across our benchmark suite).
///
/// ```
/// use naas::geomean;
/// assert!((geomean(&[1.0, 100.0]) - 10.0).abs() < 1e-9);
/// assert!((geomean(&[7.5]) - 7.5).abs() < 1e-9);
/// ```
///
/// # Panics
///
/// Panics on an empty slice or non-positive values — both indicate a bug
/// in the calling search loop.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of empty set");
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(
                v > 0.0 && v.is_finite(),
                "geomean requires positive finite values, got {v}"
            );
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_manual_computation() {
        let vals = [2.0, 8.0];
        assert!((geomean(&vals) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn balanced_against_outliers() {
        // One huge value moves the arithmetic mean far more than the
        // geometric one — the property the paper relies on.
        let vals = [1.0, 1.0, 1000.0];
        let arith = vals.iter().sum::<f64>() / 3.0;
        assert!(geomean(&vals) < arith / 10.0);
    }

    #[test]
    fn huge_magnitudes_do_not_overflow() {
        let vals = [1e300, 1e280, 1e290];
        let g = geomean(&vals);
        assert!(g.is_finite() && g > 1e279);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rejected() {
        let _ = geomean(&[1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_rejected() {
        let _ = geomean(&[]);
    }

    #[test]
    fn reward_kinds_aggregate() {
        let edps = [2.0, 8.0, 4.0];
        assert!((RewardKind::Geomean.aggregate(&edps) - 4.0).abs() < 1e-12);
        assert_eq!(RewardKind::WorstCase.aggregate(&edps), 8.0);
        assert_eq!(RewardKind::default(), RewardKind::Geomean);
    }

    #[test]
    fn worst_case_dominates_geomean() {
        let edps = [1.0, 100.0];
        assert!(RewardKind::WorstCase.aggregate(&edps) >= RewardKind::Geomean.aggregate(&edps));
    }

    #[test]
    fn objective_policy_round_trips_and_defaults_on_absence() {
        for policy in [ObjectivePolicy::Scalar, ObjectivePolicy::Pareto] {
            let back = ObjectivePolicy::deserialize(&policy.serialize()).unwrap();
            assert_eq!(back, policy);
        }
        // A pre-policy checkpoint has no such field; the shim hands the
        // deserializer `Null`, which must yield the default, not an error.
        assert_eq!(
            ObjectivePolicy::deserialize(&Value::Null).unwrap(),
            ObjectivePolicy::Scalar
        );
        assert!(ObjectivePolicy::deserialize(&Value::Str("Nope".into())).is_err());
    }

    #[test]
    fn objective_policy_parses_cli_spellings() {
        assert_eq!(
            ObjectivePolicy::parse("scalar"),
            Ok(ObjectivePolicy::Scalar)
        );
        assert_eq!(
            ObjectivePolicy::parse("pareto"),
            Ok(ObjectivePolicy::Pareto)
        );
        assert!(ObjectivePolicy::parse("both").is_err());
    }
}
