//! NASAIC re-implementation (Yang et al., DAC 2020) for the Table III
//! comparison.
//!
//! NASAIC builds a *heterogeneous* accelerator from fixed source IPs —
//! NVDLA-style and ShiDianNao-style sub-accelerators — and searches only
//! the **allocation** of #PEs and NoC bandwidth between them (plus the
//! neural architecture, which Table III holds fixed: "inferencing the
//! same network searched by NASAIC"). Layers dispatch to whichever IP
//! runs them better; the IPs execute one layer at a time (single-workload
//! inference), so latency sums over layers and idle IPs only cost their
//! share of silicon.

use crate::baselines::heuristic_network_cost;
use naas_accel::{Accelerator, ArchitecturalSizing, Connectivity};
use naas_cost::{CostModel, NetworkCost};
use naas_ir::{Dim, Network};
use serde::{Deserialize, Serialize};

/// Configuration of the NASAIC allocation search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NasaicConfig {
    /// Total PE budget to split between the two IPs.
    pub total_pes: u64,
    /// Total on-chip SRAM budget in bytes.
    pub total_onchip_bytes: u64,
    /// Total NoC bandwidth in bytes/cycle.
    pub total_bandwidth: f64,
    /// DRAM bandwidth in bytes/cycle.
    pub dram_bandwidth: f64,
    /// Allocation grid resolution (NASAIC's RL explores a comparably
    /// coarse space; an exhaustive grid is exact here).
    pub grid: usize,
    /// Worker threads for grid evaluation (`0` = all cores).
    pub threads: usize,
}

impl Default for NasaicConfig {
    fn default() -> Self {
        // The DLA-1024-class budget NASAIC's CIFAR experiments assume.
        NasaicConfig {
            total_pes: 1024,
            total_onchip_bytes: 576 * 1024,
            total_bandwidth: 64.0,
            dram_bandwidth: 16.0,
            grid: 9,
            threads: 0,
        }
    }
}

/// Result of the NASAIC allocation search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NasaicResult {
    /// PEs allocated to the NVDLA-style IP.
    pub dla_pes: u64,
    /// PEs allocated to the ShiDianNao-style IP.
    pub shi_pes: u64,
    /// Layers dispatched to the DLA IP.
    pub dla_layers: usize,
    /// Layers dispatched to the Shi IP.
    pub shi_layers: usize,
    /// Total latency in cycles.
    pub latency_cycles: u64,
    /// Total energy in nanojoules.
    pub energy_nj: f64,
    /// Energy-delay product in cycles · nJ.
    pub edp: f64,
}

/// Builds the NVDLA-style IP at a PE/memory allocation.
fn dla_ip(pes: u64, onchip: u64, bw: f64, dram_bw: f64) -> Option<Accelerator> {
    let side = ((pes as f64).sqrt() as u64 & !1).max(2);
    let l1 = 64u64;
    let l2 = onchip.checked_sub(side * side * l1)?;
    if l2 < 1024 {
        return None;
    }
    Some(Accelerator::new(
        format!("nasaic_dla_{}", side * side),
        ArchitecturalSizing::new(l1, l2, bw, dram_bw),
        Connectivity::grid(side, side, Dim::C, Dim::K).ok()?,
    ))
}

/// Builds the ShiDianNao-style IP at a PE/memory allocation.
fn shi_ip(pes: u64, onchip: u64, bw: f64, dram_bw: f64) -> Option<Accelerator> {
    let side = ((pes as f64).sqrt() as u64 & !1).max(2);
    let l1 = 64u64;
    let l2 = onchip.checked_sub(side * side * l1)?;
    if l2 < 1024 {
        return None;
    }
    Some(Accelerator::new(
        format!("nasaic_shi_{}", side * side),
        ArchitecturalSizing::new(l1, l2, bw, dram_bw),
        Connectivity::grid(side, side, Dim::Y, Dim::X).ok()?,
    ))
}

/// Searches PE/bandwidth allocations between the two IPs for the given
/// network and returns the best heterogeneous configuration.
///
/// Returns `None` if no allocation can run the network.
pub fn search_nasaic_allocation(
    model: &CostModel,
    network: &Network,
    cfg: &NasaicConfig,
) -> Option<NasaicResult> {
    // Grid points are independent: evaluate them on the engine pool and
    // fold in grid order (first-best tie-break stays deterministic).
    let steps: Vec<usize> = (1..cfg.grid).collect();
    let evaluated = naas_engine::parallel_map(cfg.threads, &steps, |_idx, &step| {
        let f = step as f64 / cfg.grid as f64;
        let dla_pes = ((cfg.total_pes as f64 * f) as u64).max(4);
        let shi_pes = cfg.total_pes.saturating_sub(dla_pes).max(4);
        let dla_mem = (cfg.total_onchip_bytes as f64 * f) as u64;
        let shi_mem = cfg.total_onchip_bytes - dla_mem;
        let dla_bw = cfg.total_bandwidth * f;
        let shi_bw = cfg.total_bandwidth * (1.0 - f);

        let (Some(dla), Some(shi)) = (
            dla_ip(dla_pes, dla_mem, dla_bw, cfg.dram_bandwidth),
            shi_ip(shi_pes, shi_mem, shi_bw, cfg.dram_bandwidth),
        ) else {
            return None;
        };

        // Per-layer dispatch to the better IP (heuristic mapping: NASAIC
        // does not search mappings).
        let dla_cost = heuristic_network_cost(model, network, &dla)?;
        let shi_cost = heuristic_network_cost(model, network, &shi)?;
        let mut latency = 0u64;
        let mut energy_pj = 0.0;
        let mut dla_layers = 0usize;
        let mut shi_layers = 0usize;
        for (a, b) in dla_cost.layers.iter().zip(&shi_cost.layers) {
            if a.edp() <= b.edp() {
                latency += a.cycles;
                energy_pj += a.energy_pj;
                dla_layers += 1;
            } else {
                latency += b.cycles;
                energy_pj += b.energy_pj;
                shi_layers += 1;
            }
        }
        let energy_nj = energy_pj / 1000.0;
        let edp = latency as f64 * energy_nj;
        Some(NasaicResult {
            dla_pes: dla.pe_count(),
            shi_pes: shi.pe_count(),
            dla_layers,
            shi_layers,
            latency_cycles: latency,
            energy_nj,
            edp,
        })
    });

    let mut best: Option<NasaicResult> = None;
    for candidate in evaluated.into_iter().flatten() {
        if best.as_ref().is_none_or(|b| candidate.edp < b.edp) {
            best = Some(candidate);
        }
    }
    best
}

/// Summarizes a NAAS result in Table III's units for side-by-side
/// comparison.
pub fn table3_row(cost: &NetworkCost) -> (u64, f64, f64) {
    (cost.cycles(), cost.energy_nj(), cost.edp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use naas_ir::models;

    #[test]
    fn allocation_search_finds_heterogeneous_config() {
        let model = CostModel::new();
        let net = models::nasaic_cifar_net();
        let out = search_nasaic_allocation(&model, &net, &NasaicConfig::default())
            .expect("an allocation works");
        assert!(out.dla_pes + out.shi_pes <= 1024);
        assert_eq!(out.dla_layers + out.shi_layers, net.len());
        assert!(out.edp > 0.0);
    }

    #[test]
    fn both_ips_attract_some_layers() {
        // Heterogeneity only pays if the dispatch actually splits; with a
        // mixed conv/pw network both dataflows should win somewhere.
        let model = CostModel::new();
        let net = models::nasaic_cifar_net();
        let out = search_nasaic_allocation(&model, &net, &NasaicConfig::default()).unwrap();
        assert!(out.dla_layers > 0, "DLA IP should win some layers");
    }

    #[test]
    fn finer_grid_is_no_worse() {
        let model = CostModel::new();
        let net = models::cifar_resnet20();
        let coarse = search_nasaic_allocation(
            &model,
            &net,
            &NasaicConfig {
                grid: 3,
                ..NasaicConfig::default()
            },
        )
        .unwrap();
        let fine = search_nasaic_allocation(
            &model,
            &net,
            &NasaicConfig {
                grid: 9,
                ..NasaicConfig::default()
            },
        )
        .unwrap();
        assert!(fine.edp <= coarse.edp * 1.001);
    }
}
