//! Re-implementations of the comparison points of the paper's evaluation:
//! baseline designs with a fair compiler, the sizing-only search of prior
//! work (Fig. 8), NASAIC (Table III) and NHAS (Fig. 10).

pub mod nasaic;
pub mod nhas;
pub mod sizing_only;

pub use nasaic::{search_nasaic_allocation, NasaicConfig, NasaicResult};
pub use nhas::{search_nhas, NhasConfig, NhasResult};
pub use sizing_only::{search_sizing_only, SizingOnlyConfig, SizingOnlyResult};

use crate::mapping_search::{network_mapping_search, MappingSearchConfig};
use naas_accel::Accelerator;
use naas_cost::{CostModel, NetworkCost};
use naas_ir::Network;
use naas_mapping::Mapping;

/// Cost of a network on a *fixed* baseline design, giving the baseline
/// the same per-layer mapping search NAAS enjoys (order and tiling on the
/// frozen dataflow). This is the denominator of every speedup/energy
/// ratio in Fig. 5/6: the comparison isolates *architecture* quality, not
/// compiler quality.
///
/// Returns `None` if some layer cannot be mapped on the baseline at all.
pub fn baseline_network_cost(
    model: &CostModel,
    network: &Network,
    baseline: &Accelerator,
    mapping_cfg: &MappingSearchConfig,
) -> Option<NetworkCost> {
    network_mapping_search(model, network, baseline, mapping_cfg)
}

/// Cost of a network on a fixed design using only the deterministic
/// balanced-mapping heuristic (no mapping search) — how sizing-only
/// frameworks, which do not search mappings, are evaluated.
pub fn heuristic_network_cost(
    model: &CostModel,
    network: &Network,
    accel: &Accelerator,
) -> Option<NetworkCost> {
    let mut layers = Vec::with_capacity(network.len());
    for layer in network {
        let mapping = Mapping::balanced(layer, accel);
        layers.push(model.evaluate(layer, accel, &mapping).ok()?);
    }
    Some(NetworkCost { layers })
}

#[cfg(test)]
mod tests {
    use super::*;
    use naas_accel::baselines as designs;
    use naas_ir::models;

    #[test]
    fn baseline_cost_with_search_beats_heuristic() {
        let model = CostModel::new();
        let net = models::cifar_resnet20();
        let accel = designs::eyeriss();
        let heuristic = heuristic_network_cost(&model, &net, &accel).expect("heuristic maps");
        let searched = baseline_network_cost(&model, &net, &accel, &MappingSearchConfig::quick(1))
            .expect("search maps");
        assert!(searched.edp() <= heuristic.edp());
    }
}
