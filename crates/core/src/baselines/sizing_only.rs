//! Architectural-sizing-only search — the prior-work baseline
//! (NASAIC, NHAS) that Fig. 8 compares NAAS against.
//!
//! Connectivity (array shape class, dataflow) stays frozen to the source
//! design; only #PEs scale, buffer split and bandwidth move; the compiler
//! uses the deterministic heuristic mapping (these frameworks do not
//! search mappings).

use crate::baselines::heuristic_network_cost;
use crate::reward::geomean;
use naas_accel::{Accelerator, ResourceConstraint};
use naas_cost::{CostModel, NetworkCost};
use naas_ir::Network;
use naas_opt::{CemEs, EsConfig, Optimizer, SizingOnlyEncoder};
use serde::{Deserialize, Serialize};

/// Configuration of the sizing-only search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SizingOnlyConfig {
    /// Candidates per generation.
    pub population: usize,
    /// Generations.
    pub iterations: usize,
    /// ES hyper-parameters.
    pub es: EsConfig,
    /// Decode attempts per slot.
    pub resample_limit: usize,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads for candidate evaluation (`0` = all cores).
    pub threads: usize,
}

impl Default for SizingOnlyConfig {
    fn default() -> Self {
        SizingOnlyConfig {
            population: 16,
            iterations: 10,
            es: EsConfig::default(),
            resample_limit: 50,
            seed: 0,
            threads: 0,
        }
    }
}

impl SizingOnlyConfig {
    /// A tiny-budget configuration for tests.
    pub fn quick(seed: u64) -> Self {
        SizingOnlyConfig {
            population: 6,
            iterations: 3,
            seed,
            ..SizingOnlyConfig::default()
        }
    }
}

/// Result of the sizing-only search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SizingOnlyResult {
    /// The best sizing variant found.
    pub accelerator: Accelerator,
    /// Heuristic-mapped cost per network.
    pub per_network: Vec<NetworkCost>,
    /// Geomean EDP reward.
    pub reward: f64,
}

/// Searches the sizing-only space anchored at `baseline` inside
/// `constraint`. Returns `None` if no candidate maps every benchmark.
pub fn search_sizing_only(
    model: &CostModel,
    networks: &[Network],
    baseline: &Accelerator,
    constraint: &ResourceConstraint,
    cfg: &SizingOnlyConfig,
) -> Option<SizingOnlyResult> {
    assert!(!networks.is_empty(), "need at least one benchmark network");
    let encoder = SizingOnlyEncoder::new(baseline.clone(), constraint.clone());
    let mut es = CemEs::new(encoder.dim(), cfg.es, cfg.seed);
    let mut best: Option<SizingOnlyResult> = None;

    for _ in 0..cfg.iterations {
        // Sample sequentially (the ES is stateful), evaluate the decoded
        // population on the engine pool, fold in slot order.
        let mut slots: Vec<(Vec<f64>, Accelerator)> = Vec::with_capacity(cfg.population);
        let mut infeasible: Vec<Vec<f64>> = Vec::new();
        for _ in 0..cfg.population {
            let mut decoded = None;
            let mut last = None;
            for _ in 0..cfg.resample_limit {
                let theta = es.ask();
                match encoder.decode(&theta) {
                    Some(d) => {
                        decoded = Some((theta, d));
                        break;
                    }
                    None => last = Some(theta),
                }
            }
            match decoded {
                Some(slot) => slots.push(slot),
                None => {
                    if let Some(t) = last {
                        infeasible.push(t);
                    }
                }
            }
        }

        let costs = naas_engine::parallel_map(cfg.threads, &slots, |_idx, (_, accel)| {
            networks
                .iter()
                .map(|net| heuristic_network_cost(model, net, accel))
                .collect::<Option<Vec<NetworkCost>>>()
        });

        let mut scored = Vec::with_capacity(slots.len() + infeasible.len());
        for ((theta, accel), costs) in slots.into_iter().zip(costs) {
            match costs {
                Some(per_network) => {
                    let edps: Vec<f64> = per_network.iter().map(NetworkCost::edp).collect();
                    let reward = geomean(&edps);
                    if best.as_ref().is_none_or(|b| reward < b.reward) {
                        best = Some(SizingOnlyResult {
                            accelerator: accel,
                            per_network,
                            reward,
                        });
                    }
                    scored.push((theta, reward));
                }
                None => scored.push((theta, f64::INFINITY)),
            }
        }
        for theta in infeasible {
            scored.push((theta, f64::INFINITY));
        }
        es.tell(&scored);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use naas_accel::baselines as designs;
    use naas_ir::models;

    #[test]
    fn sizing_only_stays_in_connectivity_class() {
        let model = CostModel::new();
        let base = designs::nvdla_256();
        let envelope = ResourceConstraint::from_design(&base);
        let out = search_sizing_only(
            &model,
            &[models::cifar_resnet20()],
            &base,
            &envelope,
            &SizingOnlyConfig::quick(2),
        )
        .expect("finds a sizing variant");
        assert_eq!(
            out.accelerator.connectivity().dataflow_label(),
            base.connectivity().dataflow_label()
        );
        assert!(envelope.admits(&out.accelerator).is_ok());
    }

    #[test]
    fn deterministic_under_seed() {
        let model = CostModel::new();
        let base = designs::eyeriss();
        let envelope = ResourceConstraint::from_design(&base);
        let cfg = SizingOnlyConfig::quick(6);
        let nets = [models::cifar_resnet20()];
        let a = search_sizing_only(&model, &nets, &base, &envelope, &cfg).unwrap();
        let b = search_sizing_only(&model, &nets, &base, &envelope, &cfg).unwrap();
        assert_eq!(a.accelerator, b.accelerator);
    }
}
