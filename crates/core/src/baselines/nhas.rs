//! NHAS re-implementation (Lin et al., NeurIPS WS 2019) for the Fig. 10 comparison.
//!
//! Neural-Hardware Architecture Search co-searches the neural
//! architecture with the accelerator's *architectural sizing* (array and
//! buffer sizes on a fixed-dataflow template) — but not the connectivity
//! and not the compiler mapping. We reproduce it as: outer sizing-only
//! evolution anchored at the baseline design; per sizing candidate, an
//! inner subnet evolution scored with the deterministic heuristic
//! mapping.

use crate::baselines::heuristic_network_cost;
use naas_accel::{Accelerator, ResourceConstraint};
use naas_cost::CostModel;
use naas_nas::search::search_subnet;
use naas_nas::{AccuracyModel, NasConfig, Subnet};
use naas_opt::{CemEs, EsConfig, Optimizer, SizingOnlyEncoder};
use serde::{Deserialize, Serialize};

/// Configuration of the NHAS co-search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NhasConfig {
    /// Sizing candidates per generation.
    pub population: usize,
    /// Generations of the sizing evolution.
    pub iterations: usize,
    /// ES hyper-parameters.
    pub es: EsConfig,
    /// Decode attempts per slot.
    pub resample_limit: usize,
    /// Per-candidate NAS budget.
    pub nas: NasConfig,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads for candidate evaluation (`0` = all cores).
    pub threads: usize,
}

impl NhasConfig {
    /// A tiny-budget configuration for tests and smoke runs.
    pub fn quick(seed: u64) -> Self {
        NhasConfig {
            population: 4,
            iterations: 2,
            es: EsConfig::default(),
            resample_limit: 25,
            nas: NasConfig {
                population: 6,
                generations: 2,
                seed,
                ..NasConfig::default()
            },
            seed,
            threads: 0,
        }
    }
}

/// Result of the NHAS co-search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NhasResult {
    /// Best sizing variant found.
    pub accelerator: Accelerator,
    /// Best subnet found on it.
    pub subnet: Subnet,
    /// Predicted accuracy of the subnet (percent).
    pub accuracy: f64,
    /// EDP of the pair (cycles · nJ).
    pub edp: f64,
}

/// Runs the NHAS-style co-search anchored at `baseline` inside
/// `constraint`. Returns `None` if no feasible pair is found.
pub fn search_nhas(
    model: &CostModel,
    baseline: &Accelerator,
    constraint: &ResourceConstraint,
    accuracy_model: &AccuracyModel,
    cfg: &NhasConfig,
) -> Option<NhasResult> {
    let encoder = SizingOnlyEncoder::new(baseline.clone(), constraint.clone());
    let mut es = CemEs::new(encoder.dim(), cfg.es, cfg.seed);
    let mut best: Option<NhasResult> = None;

    for iteration in 0..cfg.iterations {
        // Sample sequentially (the ES is stateful); each candidate's NAS
        // evolution then runs as one job on the engine pool, seeded by
        // slot — deterministic at any thread count because results fold
        // in slot order.
        let mut slots: Vec<(usize, Vec<f64>, Accelerator)> = Vec::with_capacity(cfg.population);
        let mut infeasible: Vec<Vec<f64>> = Vec::new();
        for slot in 0..cfg.population {
            let mut decoded = None;
            let mut last = None;
            for _ in 0..cfg.resample_limit {
                let theta = es.ask();
                match encoder.decode(&theta) {
                    Some(d) => {
                        decoded = Some((theta, d));
                        break;
                    }
                    None => last = Some(theta),
                }
            }
            match decoded {
                Some((theta, accel)) => slots.push((slot, theta, accel)),
                None => {
                    if let Some(t) = last {
                        infeasible.push(t);
                    }
                }
            }
        }

        let outcomes = naas_engine::parallel_map(cfg.threads, &slots, |_idx, (slot, _, accel)| {
            let nas_cfg = NasConfig {
                seed: cfg
                    .seed
                    .wrapping_mul(7_368_787)
                    .wrapping_add((iteration * cfg.population + slot) as u64),
                ..cfg.nas
            };
            search_subnet(&nas_cfg, accuracy_model, |net| {
                heuristic_network_cost(model, net, accel).map(|c| c.edp())
            })
        });

        let mut scored = Vec::with_capacity(slots.len() + infeasible.len());
        for ((_, theta, accel), outcome) in slots.into_iter().zip(outcomes) {
            match outcome {
                Some(out) => {
                    if best.as_ref().is_none_or(|b| out.reward < b.edp) {
                        best = Some(NhasResult {
                            accelerator: accel,
                            subnet: out.subnet,
                            accuracy: out.accuracy,
                            edp: out.reward,
                        });
                    }
                    scored.push((theta, out.reward));
                }
                None => scored.push((theta, f64::INFINITY)),
            }
        }
        for theta in infeasible {
            scored.push((theta, f64::INFINITY));
        }
        es.tell(&scored);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use naas_accel::baselines as designs;

    #[test]
    fn nhas_finds_feasible_pair() {
        let model = CostModel::new();
        let base = designs::eyeriss();
        let envelope = ResourceConstraint::from_design(&base);
        let out = search_nhas(
            &model,
            &base,
            &envelope,
            &AccuracyModel::default(),
            &NhasConfig::quick(3),
        )
        .expect("nhas finds a pair");
        assert!(out.accuracy >= 76.0);
        assert!(envelope.admits(&out.accelerator).is_ok());
        assert_eq!(
            out.accelerator.connectivity().dataflow_label(),
            base.connectivity().dataflow_label(),
            "NHAS must not change the dataflow"
        );
    }
}
