//! The batch-evaluation service: a warm [`CoSearchEngine`] serving
//! JSON-line requests (`naas-search serve`).
//!
//! The NAAS cost oracle amortizes: the same `(design, layer-shape)`
//! mapping results recur across candidates, generations and sweeps, so a
//! *long-running* process with a shared content-addressed cache answers
//! most traffic without recomputing anything. [`BatchEvalService`] keeps
//! exactly one engine resident — the shared [`MemoCache`] and the
//! work-stealing pool; evaluation runs through thread-local
//! `EvalPipeline`s, recycled across every request of a coalesced batch
//! (a persistent cross-batch worker pool is future work) — and exposes
//! the library's evaluation entry points as service commands:
//!
//! | command          | answers                                             |
//! |------------------|-----------------------------------------------------|
//! | `hello`          | protocol version + capability list (the handshake)  |
//! | `list_scenarios` | the scenario registry                               |
//! | `score_design`   | one design × one scenario's benchmark suite         |
//! | `search_layer`   | best mapping for one layer on one design            |
//! | `evaluate_batch` | a population of mappings via `CostModel::evaluate_batch` |
//! | `evaluate_shard` | a shard of outer-search candidates (the distributed fan-out primitive; accel or joint mode) |
//! | `search_step`    | one generation of a serialized accel or joint search state |
//! | `cache_stats`    | the shared cache's counters                         |
//! | `metrics`        | a full process telemetry snapshot ([`naas_engine::telemetry`]) |
//! | `shutdown`       | acknowledges, then the server drains and persists   |
//!
//! `evaluate_shard` and `search_step` carry optional `cache` payloads in
//! and `cache_delta` payloads out: incremental [`MemoCache`] snapshots
//! that let a coordinator relay mapping results between workers, so a
//! `(design, layer-shape)` pair solved anywhere in the fleet is solved
//! everywhere. The full wire spec is `docs/PROTOCOL.md`.
//!
//! Concurrent in-flight requests are coalesced by the engine's
//! [`Batcher`] and fanned out over the pool in one `parallel_map` call
//! per batch ([`ServiceServer`]), so service throughput rides the same
//! batched pipeline as an in-process population evaluation. Because
//! every answer is a pure function of the request (content-addressed
//! cache, content-derived seeds), a served response is **bit-identical**
//! to the equivalent direct library call, at any concurrency, cold or
//! warm.
//!
//! A panicking request handler is contained by `catch_unwind` and
//! reported as an error response — one bad request must not abort a
//! process other clients are sharing.
//!
//! [`MemoCache`]: naas_engine::MemoCache

use crate::accel_search::{self, AccelSearchState};
use crate::engine::CoSearchEngine;
use crate::mapping_search::{self, MappingSearchConfig, MappingSearchResult};
use crate::reward::RewardKind;
use naas_accel::Accelerator;
use naas_cost::{CostModel, LayerCost};
use naas_engine::service::{error_line, ok_line, Batcher, ParseFailure, Request};
use naas_engine::telemetry;
use naas_engine::{parallel_map, scenario, CheckpointError};
use naas_ir::{ConvKind, ConvSpec};
use naas_mapping::Mapping;
use naas_nas::{AccuracyModel, NasConfig};
use serde::{Deserialize, Serialize, Value};
use std::collections::BTreeMap;
use std::fmt;
use std::io::{BufRead, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{mpsc, Arc};

/// Why a request could not be answered. Every variant maps to an error
/// *response* on the wire — never a panic, never a dropped connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The command name is not part of the protocol.
    UnknownCommand(String),
    /// A parameter is missing or has the wrong shape.
    BadRequest(String),
    /// A named entity (scenario, design, model) is not registered.
    NotFound(String),
    /// The evaluation itself failed (un-mappable design, no valid
    /// mapping within budget, ...).
    Failed(String),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::UnknownCommand(c) => write!(f, "unknown command `{c}`"),
            ServiceError::BadRequest(m) => write!(f, "bad request: {m}"),
            ServiceError::NotFound(m) => write!(f, "not found: {m}"),
            ServiceError::Failed(m) => write!(f, "evaluation failed: {m}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// Configuration of a [`BatchEvalService`].
#[derive(Debug, Clone, Default)]
pub struct ServiceConfig {
    /// Worker threads for batch fan-out (`0` = all cores).
    pub threads: usize,
    /// The inner mapping-search budget every request is answered with.
    /// Part of the cache key: all requests sharing a config share cache
    /// entries.
    pub mapping: MappingSearchConfig,
    /// Persist the shared cache here on shutdown (and warm-load it on
    /// startup when the file exists).
    pub cache_file: Option<PathBuf>,
    /// Bound the shared memo cache to this many resident entries
    /// (`0` = unbounded) — `--cache-cap` on the CLI. A long-lived
    /// worker in a week-long fleet should set this; eviction costs
    /// recomputation, never correctness.
    pub cache_cap: usize,
    /// Artificial per-candidate delay (microseconds) injected into
    /// `evaluate_shard`, serialized across concurrent requests so the
    /// whole worker slows down like a genuinely underpowered machine.
    /// `NAAS_EVAL_DELAY_US` on the CLI; `0` (the default) disables it.
    /// Chaos-testing only — it never changes any answer, just when the
    /// answer arrives.
    pub eval_delay_us: u64,
}

/// Capability strings this build advertises in its `hello` reply.
/// Clients gate optional behaviour on these instead of sniffing errors:
/// the distributed coordinator requires `"joint"` before routing joint
/// generations to a worker. A [`crate::gateway::GatewayService`] appends
/// `"jobs"` on top of this list — only processes actually serving the
/// `job_*` command family advertise it.
pub const CAPABILITIES: &[&str] = &[
    "evaluate_shard",
    "search_step",
    "joint",
    "joint_unit",
    "cache_gossip",
    "metrics",
    "objectives",
];

/// What the stream/batcher plumbing ([`ServiceServer`]) needs from a
/// service: answer one framed request line, size the batch fan-out, and
/// persist state on graceful shutdown. [`BatchEvalService`] is the base
/// implementation; [`crate::gateway::GatewayService`] layers the job
/// commands on top and reuses every byte of the server plumbing —
/// stream framing, coalescing, ordered writes, listener lifecycle —
/// unchanged.
pub trait WireService: Send + Sync + 'static {
    /// Answers one parsed request line with one response line. Must
    /// contain handler panics (see [`BatchEvalService::answer`]) — one
    /// bad request must never abort a shared process.
    fn answer(&self, parsed: &Result<Request, ParseFailure>) -> String;
    /// Worker threads for the scheduler's batch fan-out.
    fn threads(&self) -> usize;
    /// Persists durable state (the memo cache) on graceful shutdown.
    ///
    /// # Errors
    ///
    /// Propagates the underlying checkpoint write failure.
    fn persist_cache(&self) -> Result<(), CheckpointError>;
}

impl WireService for BatchEvalService {
    fn answer(&self, parsed: &Result<Request, ParseFailure>) -> String {
        BatchEvalService::answer(self, parsed)
    }

    fn threads(&self) -> usize {
        BatchEvalService::threads(self)
    }

    fn persist_cache(&self) -> Result<(), CheckpointError> {
        BatchEvalService::persist_cache(self)
    }
}

/// A resident evaluation service over one warm [`CoSearchEngine`]. See
/// the module docs for the protocol.
///
/// # Examples
///
/// One request line in, one response line out —
/// [`BatchEvalService::respond`] is the whole protocol in miniature
/// (servers wrap it with stream plumbing, see [`ServiceServer`]):
///
/// ```
/// use naas::{BatchEvalService, ServiceConfig};
/// use serde_json::Value;
///
/// let service = BatchEvalService::new(ServiceConfig::default())?;
/// let line = service.respond(r#"{"id": 1, "cmd": "cache_stats"}"#);
/// let response: Value = serde_json::from_str(&line).unwrap();
/// assert_eq!(response.get("ok"), Some(&Value::Bool(true)));
/// assert_eq!(response.get("id"), Some(&Value::U64(1)));
///
/// // Malformed lines still get correlatable error responses.
/// let line = service.respond(r#"{"id": 2, "cmd": 42}"#);
/// let response: Value = serde_json::from_str(&line).unwrap();
/// assert_eq!(response.get("ok"), Some(&Value::Bool(false)));
/// assert_eq!(response.get("id"), Some(&Value::U64(2)));
/// # Ok::<(), naas_engine::CheckpointError>(())
/// ```
pub struct BatchEvalService {
    engine: CoSearchEngine,
    model: CostModel,
    config: ServiceConfig,
    /// Resolved scenarios, memoized by content fingerprint: a
    /// coordinator ships the same scenario with every shard request of
    /// every generation, and rebuilding the benchmark suite each time
    /// would be pure repeated work on the generation barrier. Bounded
    /// by the number of *distinct* scenarios a service ever sees.
    resolved_scenarios: std::sync::Mutex<BTreeMap<u64, Arc<naas_engine::EvalJob>>>,
    /// Serializes the injected `eval_delay_us` sleeps: the batcher runs
    /// concurrent shard requests in parallel, but a genuinely slow
    /// machine is slow *in total*, not per-stream — so throttled
    /// requests queue on this gate one at a time.
    delay_gate: std::sync::Mutex<()>,
}

/// The layer parameter of `search_layer` / `evaluate_batch`: the numeric
/// shape of a convolution. Matches the serde shape of [`ConvSpec`]
/// itself, so serialized library specs are valid request payloads; the
/// decoded fields are re-validated through [`ConvSpec::new`] before any
/// evaluation sees them.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct LayerParams {
    name: Option<String>,
    kind: Option<ConvKind>,
    batch: Option<u64>,
    in_channels: u64,
    out_channels: u64,
    in_y: u64,
    in_x: u64,
    kernel_r: u64,
    kernel_s: u64,
    stride: u64,
    padding: u64,
    groups: Option<u64>,
}

impl LayerParams {
    fn build(&self) -> Result<ConvSpec, ServiceError> {
        let kind = self.kind.unwrap_or({
            if (self.kernel_r, self.kernel_s) == (1, 1) {
                ConvKind::Pointwise
            } else {
                ConvKind::Standard
            }
        });
        ConvSpec::new(
            self.name.clone().unwrap_or_else(|| "layer".to_string()),
            kind,
            self.batch.unwrap_or(1),
            self.in_channels,
            self.out_channels,
            (self.in_y, self.in_x),
            (self.kernel_r, self.kernel_s),
            self.stride,
            self.padding,
            self.groups.unwrap_or(1),
        )
        .map_err(|e| ServiceError::BadRequest(format!("invalid layer: {e}")))
    }
}

fn layer_cost_value(cost: &LayerCost) -> Value {
    Value::Object(vec![
        ("edp".to_string(), Value::F64(cost.edp())),
        ("cycles".to_string(), Value::U64(cost.cycles)),
        ("energy_pj".to_string(), Value::F64(cost.energy_pj)),
        ("utilization".to_string(), Value::F64(cost.utilization)),
    ])
}

impl BatchEvalService {
    /// Creates the service; when `config.cache_file` names an existing
    /// file, its entries are warm-loaded into the shared cache
    /// (content-addressed, so warming never changes any answer).
    ///
    /// # Errors
    ///
    /// Propagates a cache file that exists but cannot be read/decoded —
    /// starting with silently dropped warm state would be worse.
    pub fn new(config: ServiceConfig) -> Result<Self, CheckpointError> {
        let service = BatchEvalService {
            engine: CoSearchEngine::new(config.threads),
            model: CostModel::new(),
            config,
            resolved_scenarios: std::sync::Mutex::new(BTreeMap::new()),
            delay_gate: std::sync::Mutex::new(()),
        };
        // Cap before warm-loading, so an oversized cache file is
        // trimmed on absorption instead of ballooning at startup.
        service
            .engine
            .cache()
            .set_entry_cap(service.config.cache_cap);
        if let Some(path) = &service.config.cache_file {
            if path.exists() {
                service.engine.cache().load_from(path)?;
            }
        }
        Ok(service)
    }

    /// The resident engine (shared cache, resolved worker count).
    pub fn engine(&self) -> &CoSearchEngine {
        &self.engine
    }

    /// Worker threads used for batch fan-out.
    pub fn threads(&self) -> usize {
        self.engine.threads()
    }

    /// Persists the shared cache to the configured `cache_file`, if any.
    /// Called by the server on graceful shutdown; safe to call at any
    /// cadence (atomic, durable writes).
    ///
    /// # Errors
    ///
    /// Propagates the underlying checkpoint write failure.
    pub fn persist_cache(&self) -> Result<(), CheckpointError> {
        match &self.config.cache_file {
            Some(path) => self.engine.cache().save_to(path),
            None => Ok(()),
        }
    }

    /// Answers one raw request line with one response line. Panics
    /// inside handlers are contained and reported as error responses.
    pub fn respond(&self, line: &str) -> String {
        self.answer(&Request::parse(line))
    }

    /// [`BatchEvalService::respond`] on an already-parsed request — the
    /// server path, which frames each line once in the stream reader and
    /// carries the parse through the batcher (a batched `evaluate_batch`
    /// request is mostly parse cost; parsing twice would double it).
    pub fn answer(&self, parsed: &Result<Request, ParseFailure>) -> String {
        let request = match parsed {
            Ok(request) => request,
            // Echo whatever id could be recovered from the malformed
            // line, so a pipelining client can still correlate the error.
            Err(failure) => return error_line(&failure.id, &failure.message),
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| self.handle(request)));
        match outcome {
            Ok(Ok(result)) => ok_line(&request.id, result),
            Ok(Err(e)) => error_line(&request.id, &e.to_string()),
            Err(payload) => {
                let message = payload
                    .downcast_ref::<&str>()
                    .copied()
                    .map(str::to_string)
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "opaque panic payload".to_string());
                error_line(&request.id, &format!("internal panic: {message}"))
            }
        }
    }

    /// Dispatches one parsed request.
    ///
    /// # Errors
    ///
    /// Any [`ServiceError`]; the caller renders it as an error response.
    pub fn handle(&self, request: &Request) -> Result<Value, ServiceError> {
        match request.cmd.as_str() {
            "hello" => self.hello(request),
            "list_scenarios" => Ok(self.list_scenarios()),
            "score_design" => self.score_design(request),
            "search_layer" => self.search_layer(request),
            "evaluate_batch" => self.evaluate_batch(request),
            "evaluate_shard" => self.evaluate_shard(request),
            "search_step" => self.search_step(request),
            "cache_stats" => Ok(self.cache_stats()),
            "metrics" => Ok(self.metrics()),
            "shutdown" => Ok(Value::Str("shutting down".to_string())),
            // Deliberate test hook: proves a panicking handler becomes an
            // error response, not a process abort (see tests/service.rs).
            "__panic" => panic!("injected panic (service test hook)"),
            other => Err(ServiceError::UnknownCommand(other.to_string())),
        }
    }

    /// `hello`: the protocol version handshake. Answers this build's
    /// [`PROTOCOL_VERSION`] and [`CAPABILITIES`]; when the client states
    /// its own `protocol`, a mismatch is answered as an orderly error —
    /// so *either* side of a mixed-version fleet fails the connection
    /// cleanly at dial time instead of corrupting serialized state
    /// mid-run.
    ///
    /// [`PROTOCOL_VERSION`]: naas_engine::PROTOCOL_VERSION
    fn hello(&self, request: &Request) -> Result<Value, ServiceError> {
        use naas_engine::PROTOCOL_VERSION;
        if let Some(theirs) = request.param("protocol") {
            let theirs = theirs
                .as_u64()
                .ok_or_else(|| ServiceError::BadRequest("`protocol` must be a u64".into()))?;
            if theirs != PROTOCOL_VERSION {
                return Err(ServiceError::BadRequest(format!(
                    "protocol mismatch: this server speaks {PROTOCOL_VERSION}, \
                     the client speaks {theirs}"
                )));
            }
        }
        Ok(Value::Object(vec![
            ("protocol".to_string(), Value::U64(PROTOCOL_VERSION)),
            (
                "capabilities".to_string(),
                Value::Array(
                    CAPABILITIES
                        .iter()
                        .map(|c| Value::Str(c.to_string()))
                        .collect(),
                ),
            ),
            (
                "server".to_string(),
                Value::Str(format!("naas-search ({} threads)", self.threads())),
            ),
        ]))
    }

    /// `cache_stats`: the engine cache's own counters, extended with the
    /// fields the cache always computed but never exposed over the wire
    /// (`evictions`, `hit_rate`). Purely additive over the protocol-2
    /// shape — old clients keep reading `hits`/`misses`/`entries`.
    fn cache_stats(&self) -> Value {
        let stats = self.engine.cache_stats();
        Value::Object(vec![
            ("hits".to_string(), Value::U64(stats.hits)),
            ("misses".to_string(), Value::U64(stats.misses)),
            ("entries".to_string(), Value::U64(stats.entries)),
            (
                "evictions".to_string(),
                Value::U64(self.engine.cache().evictions()),
            ),
            ("hit_rate".to_string(), Value::F64(stats.hit_rate())),
        ])
    }

    /// `metrics`: one point-in-time snapshot of the process-global
    /// telemetry registry plus this engine's cache counters — the
    /// machine-readable health probe behind `naas-search client metrics`.
    /// Gated by the `"metrics"` capability string (additive; no
    /// `PROTOCOL_VERSION` bump).
    fn metrics(&self) -> Value {
        let snapshot =
            telemetry::metrics().snapshot(telemetry::cache_counters(self.engine.cache()));
        serde_json::to_value(&snapshot)
    }

    fn list_scenarios(&self) -> Value {
        Value::Object(vec![(
            "scenarios".to_string(),
            serde_json::to_value(&scenario::registry()),
        )])
    }

    /// Resolves the `scenario` parameter — a registered scenario's name
    /// (string) or a full serialized [`Scenario`] object (so coordinators
    /// can ship `--file` scenarios the worker's registry has never heard
    /// of) — into networks + envelope. Resolution is memoized by content
    /// fingerprint, so repeat traffic (every shard request of a
    /// distributed run names the same scenario) reuses the built suite.
    ///
    /// [`Scenario`]: naas_engine::Scenario
    fn resolve_scenario(
        &self,
        request: &Request,
    ) -> Result<Arc<naas_engine::EvalJob>, ServiceError> {
        let scenario = match request.param("scenario") {
            Some(Value::Str(name)) => scenario::find(name)
                .ok_or_else(|| ServiceError::NotFound(format!("scenario `{name}`")))?,
            Some(value @ Value::Object(_)) => {
                serde_json::from_value::<naas_engine::Scenario>(value).map_err(|e| {
                    ServiceError::BadRequest(format!("invalid scenario object: {e}"))
                })?
            }
            _ => {
                return Err(ServiceError::BadRequest(
                    "`scenario` (name or scenario object) is required".into(),
                ))
            }
        };
        let fp = naas_engine::fingerprint(&scenario);
        if let Some(job) = self
            .resolved_scenarios
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .get(&fp)
        {
            return Ok(Arc::clone(job));
        }
        let job = Arc::new(
            scenario
                .resolve()
                .map_err(|e| ServiceError::Failed(e.to_string()))?,
        );
        self.resolved_scenarios
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .insert(fp, Arc::clone(&job));
        Ok(job)
    }

    /// The `design` parameter: a baseline name (string) or a full
    /// serialized [`Accelerator`] (object). `None` falls back to the
    /// scenario's envelope baseline when one is in scope.
    fn resolve_design(
        &self,
        request: &Request,
        fallback: Option<&Accelerator>,
    ) -> Result<Accelerator, ServiceError> {
        match request.param("design") {
            None => fallback.cloned().ok_or_else(|| {
                ServiceError::BadRequest("`design` (name or design object) is required".into())
            }),
            Some(Value::Str(name)) => scenario::baseline_by_name(name)
                .ok_or_else(|| ServiceError::NotFound(format!("design `{name}`"))),
            Some(value) => serde_json::from_value::<Accelerator>(value)
                .map_err(|e| ServiceError::BadRequest(format!("invalid design object: {e}"))),
        }
    }

    /// The inner-search config this request evaluates under: the
    /// service-wide budget, with an optional per-request `seed` and an
    /// optional `mapping_budget` override
    /// (`{"population": N, "iterations": N}`, either field alone is
    /// fine).
    ///
    /// Overrides never pollute the shared cache: the whole
    /// [`MappingSearchConfig`] is part of the design fingerprint
    /// (`mapping_search::design_fingerprint`), so requests with different
    /// budgets read and write disjoint cache keys.
    fn mapping_config(&self, request: &Request) -> Result<MappingSearchConfig, ServiceError> {
        let mut cfg = self.config.mapping;
        if let Some(seed) = request.param("seed") {
            cfg.seed = seed
                .as_u64()
                .ok_or_else(|| ServiceError::BadRequest("`seed` must be a u64".into()))?;
        }
        if let Some(budget) = request.param("mapping_budget") {
            if !matches!(budget, Value::Object(_)) {
                return Err(ServiceError::BadRequest(
                    "`mapping_budget` must be an object with `population` and/or `iterations`"
                        .into(),
                ));
            }
            for (field, slot) in [
                ("population", &mut cfg.population),
                ("iterations", &mut cfg.iterations),
            ] {
                match budget.get(field) {
                    None | Some(Value::Null) => {}
                    Some(value) => {
                        let n = value.as_u64().filter(|&n| n > 0).ok_or_else(|| {
                            ServiceError::BadRequest(format!(
                                "`mapping_budget.{field}` must be a positive integer"
                            ))
                        })?;
                        *slot = n as usize;
                    }
                }
            }
        }
        Ok(cfg)
    }

    fn layer_param(&self, request: &Request) -> Result<ConvSpec, ServiceError> {
        let value = request
            .param("layer")
            .ok_or_else(|| ServiceError::BadRequest("`layer` (object) is required".into()))?;
        let params: LayerParams = serde_json::from_value(value)
            .map_err(|e| ServiceError::BadRequest(format!("invalid layer object: {e}")))?;
        params.build()
    }

    /// `score_design`: one design against one scenario's benchmark
    /// suite, through the shared cache — the same call path (and
    /// therefore bit-identical results) as
    /// [`mapping_search::network_mapping_search_cached`].
    fn score_design(&self, request: &Request) -> Result<Value, ServiceError> {
        let job = self.resolve_scenario(request)?;
        let design = self.resolve_design(request, Some(&job.baseline))?;
        let cfg = self.mapping_config(request)?;
        let design_fp = mapping_search::design_fingerprint(&design, &cfg);

        let mut per_network = Vec::with_capacity(job.networks.len());
        let mut edps = Vec::with_capacity(job.networks.len());
        for (spec, network) in job.scenario.networks.iter().zip(&job.networks) {
            let cost = mapping_search::network_mapping_search_memo(
                &self.model,
                network,
                &design,
                &cfg,
                self.engine.cache(),
                design_fp,
            )
            .ok_or_else(|| {
                ServiceError::Failed(format!(
                    "design `{}` cannot map network `{}`",
                    design.name(),
                    spec.model
                ))
            })?;
            edps.push(cost.edp());
            per_network.push(Value::Object(vec![
                ("model".to_string(), Value::Str(spec.model.clone())),
                ("edp".to_string(), Value::F64(cost.edp())),
                ("cycles".to_string(), Value::U64(cost.cycles())),
                ("energy_pj".to_string(), Value::F64(cost.energy_pj())),
            ]));
        }
        let reward = RewardKind::Geomean.aggregate(&edps);
        Ok(Value::Object(vec![
            ("design".to_string(), Value::Str(design.name().to_string())),
            (
                "scenario".to_string(),
                Value::Str(job.scenario.name.clone()),
            ),
            ("reward".to_string(), Value::F64(reward)),
            (
                "within_envelope".to_string(),
                Value::Bool(job.constraint.admits(&design).is_ok()),
            ),
            ("per_network".to_string(), Value::Array(per_network)),
        ]))
    }

    /// `search_layer`: the inner mapping search for one layer on one
    /// design, on this worker's recycled `EvalPipeline`.
    fn search_layer(&self, request: &Request) -> Result<Value, ServiceError> {
        let layer = self.layer_param(request)?;
        let design = self.resolve_design(request, None)?;
        let cfg = self.mapping_config(request)?;
        let result = mapping_search::search_layer_mapping(&self.model, &layer, &design, &cfg)
            .ok_or_else(|| {
                ServiceError::Failed(format!(
                    "no valid mapping for layer `{}` on design `{}` within budget",
                    layer.name(),
                    design.name()
                ))
            })?;
        Ok(Value::Object(vec![
            ("cost".to_string(), layer_cost_value(&result.cost)),
            (
                "evaluations".to_string(),
                Value::U64(result.evaluations as u64),
            ),
            ("history".to_string(), serde_json::to_value(&result.history)),
            ("mapping".to_string(), serde_json::to_value(&result.mapping)),
        ]))
    }

    /// `evaluate_batch`: a whole population of mappings for one layer on
    /// one design through [`CostModel::evaluate_batch`] — the
    /// allocation-free batched path, using this worker's pipeline
    /// scratch. Per-mapping failures are per-entry results, not request
    /// failures.
    fn evaluate_batch(&self, request: &Request) -> Result<Value, ServiceError> {
        let layer = self.layer_param(request)?;
        let design = self.resolve_design(request, None)?;
        let mappings_value = request
            .param("mappings")
            .ok_or_else(|| ServiceError::BadRequest("`mappings` (array) is required".into()))?;
        let mappings: Vec<Mapping> = serde_json::from_value(mappings_value)
            .map_err(|e| ServiceError::BadRequest(format!("invalid mappings array: {e}")))?;

        let mut results = Vec::with_capacity(mappings.len());
        crate::pipeline::with_thread_pipeline(|pipeline| {
            self.model.evaluate_batch(
                &layer,
                &design,
                &mappings,
                pipeline.scratch_mut(),
                &mut results,
            );
        });
        let entries: Vec<Value> = results
            .iter()
            .map(|r| match r {
                Ok(cost) => Value::Object(vec![
                    ("ok".to_string(), Value::Bool(true)),
                    ("cost".to_string(), layer_cost_value(cost)),
                ]),
                Err(e) => Value::Object(vec![
                    ("ok".to_string(), Value::Bool(false)),
                    ("error".to_string(), Value::Str(e.to_string())),
                ]),
            })
            .collect();
        Ok(Value::Object(vec![
            ("count".to_string(), Value::U64(entries.len() as u64)),
            ("results".to_string(), Value::Array(entries)),
        ]))
    }

    /// Absorbs an optional `cache` parameter (an incremental
    /// [`naas_engine::CacheSnapshot`]) into the shared cache. Absorbing
    /// is always sound — entries are content-addressed and live entries
    /// win — so a coordinator can forward deltas from any worker to any
    /// other.
    fn absorb_cache_param(&self, request: &Request) -> Result<usize, ServiceError> {
        match request.param("cache") {
            None => Ok(0),
            Some(value) => {
                let snapshot: naas_engine::CacheSnapshot<Option<MappingSearchResult>> =
                    serde_json::from_value(value).map_err(|e| {
                        ServiceError::BadRequest(format!("invalid cache snapshot: {e}"))
                    })?;
                Ok(self.engine.cache().absorb(snapshot))
            }
        }
    }

    /// `evaluate_shard`: one shard of an outer-search generation — a
    /// list of candidate designs evaluated on this worker's pool. This
    /// is the distributed coordinator's fan-out primitive
    /// (`naas::distributed`), in two modes:
    ///
    /// * **accelerator search** (default): each candidate is costed
    ///   against a scenario's benchmark suite through
    ///   [`accel_search::evaluate_candidate`], the exact evaluation a
    ///   single-process `accel_search_step` performs;
    /// * **joint search** (`joint` parameter present): each candidate
    ///   runs its whole NAS evolution through
    ///   [`crate::joint::evaluate_joint_candidate`], seeded by the
    ///   coordinator-supplied slot-derived seeds.
    ///
    /// Either way, shard results merged in candidate order reproduce
    /// the single-process search bit-for-bit. Infeasible candidates
    /// answer `null` (a result, not a request failure). The reply
    /// piggybacks a `cache_delta` of every mapping result this worker
    /// computed since its last report, for the coordinator to relay to
    /// its siblings.
    fn evaluate_shard(&self, request: &Request) -> Result<Value, ServiceError> {
        let candidates_value = request.param("candidates").ok_or_else(|| {
            ServiceError::BadRequest("`candidates` (array of design objects) is required".into())
        })?;
        let candidates: Vec<Accelerator> = serde_json::from_value(candidates_value)
            .map_err(|e| ServiceError::BadRequest(format!("invalid candidates array: {e}")))?;
        let mapping: MappingSearchConfig = match request.param("mapping") {
            Some(value) => serde_json::from_value(value)
                .map_err(|e| ServiceError::BadRequest(format!("invalid mapping config: {e}")))?,
            None => self.mapping_config(request)?,
        };
        self.absorb_cache_param(request)?;
        self.engine.cache().enable_journal();

        if self.config.eval_delay_us > 0 {
            let _slow = self
                .delay_gate
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            std::thread::sleep(std::time::Duration::from_micros(
                self.config
                    .eval_delay_us
                    .saturating_mul(candidates.len() as u64),
            ));
        }

        let entries = match (request.param("joint_unit"), request.param("joint")) {
            (Some(unit), _) => self.evaluate_joint_unit_shard(unit, &candidates, &mapping)?,
            (None, Some(joint)) => self.evaluate_joint_shard(joint, &candidates, &mapping)?,
            (None, None) => self.evaluate_accel_shard(request, &candidates, &mapping)?,
        };
        Ok(Value::Object(vec![
            ("count".to_string(), Value::U64(entries.len() as u64)),
            ("results".to_string(), Value::Array(entries)),
            (
                "cache_delta".to_string(),
                serde_json::to_value(&self.engine.cache().take_new_entries()),
            ),
        ]))
    }

    /// The accelerator-search mode of [`Self::evaluate_shard`]:
    /// candidates × the scenario's benchmark suite.
    fn evaluate_accel_shard(
        &self,
        request: &Request,
        candidates: &[Accelerator],
        mapping: &MappingSearchConfig,
    ) -> Result<Vec<Value>, ServiceError> {
        let job = self.resolve_scenario(request)?;
        if job.networks.is_empty() {
            return Err(ServiceError::BadRequest(
                "scenario has no benchmark networks".into(),
            ));
        }
        let reward: RewardKind = match request.param("reward") {
            Some(value) => serde_json::from_value(value)
                .map_err(|e| ServiceError::BadRequest(format!("invalid reward kind: {e}")))?,
            None => RewardKind::Geomean,
        };
        let results = parallel_map(self.threads(), candidates, |_idx, accel| {
            accel_search::evaluate_candidate(
                &self.engine,
                &self.model,
                accel,
                &job.networks,
                mapping,
                reward,
            )
        });
        Ok(results
            .iter()
            .map(|outcome| match outcome {
                None => Value::Null,
                // Protocol v3 result shape: the scalarized reward, the
                // per-network cost reports, and the objective vector.
                Some(eval) => Value::Object(vec![
                    ("reward".to_string(), Value::F64(eval.reward)),
                    (
                        "per_network".to_string(),
                        serde_json::to_value(&eval.per_network),
                    ),
                    (
                        "objectives".to_string(),
                        serde_json::to_value(&eval.objectives),
                    ),
                ]),
            })
            .collect())
    }

    /// The joint-search mode of [`Self::evaluate_shard`]: one whole NAS
    /// evolution per candidate. The `joint` parameter carries the NAS
    /// budget, one slot-derived seed per candidate
    /// ([`crate::joint::joint_nas_seed`] — seeds travel instead of slot
    /// indices so the worker needs no knowledge of the global
    /// population layout), and optionally the accuracy surrogate (the
    /// worker's default is used when absent — ship it whenever the
    /// coordinator's is non-default).
    fn evaluate_joint_shard(
        &self,
        joint: &Value,
        candidates: &[Accelerator],
        mapping: &MappingSearchConfig,
    ) -> Result<Vec<Value>, ServiceError> {
        let nas: NasConfig = serde_json::from_value(joint.get("nas").ok_or_else(|| {
            ServiceError::BadRequest("`joint.nas` (NAS config object) is required".into())
        })?)
        .map_err(|e| ServiceError::BadRequest(format!("invalid joint.nas config: {e}")))?;
        let seeds: Vec<u64> = serde_json::from_value(joint.get("seeds").ok_or_else(|| {
            ServiceError::BadRequest("`joint.seeds` (one u64 per candidate) is required".into())
        })?)
        .map_err(|e| ServiceError::BadRequest(format!("invalid joint.seeds array: {e}")))?;
        if seeds.len() != candidates.len() {
            return Err(ServiceError::BadRequest(format!(
                "joint.seeds/candidates length mismatch: {} vs {}",
                seeds.len(),
                candidates.len()
            )));
        }
        let accuracy: AccuracyModel = match joint.get("accuracy") {
            None | Some(Value::Null) => AccuracyModel::default(),
            Some(value) => serde_json::from_value(value).map_err(|e| {
                ServiceError::BadRequest(format!("invalid joint.accuracy model: {e}"))
            })?,
        };
        let jobs: Vec<(&Accelerator, u64)> = candidates.iter().zip(seeds).collect();
        let results = parallel_map(self.threads(), &jobs, |_idx, (accel, seed)| {
            crate::joint::evaluate_joint_candidate(
                &self.engine,
                &self.model,
                &accuracy,
                accel,
                mapping,
                &nas,
                *seed,
            )
        });
        Ok(results
            .iter()
            .map(|outcome| match outcome {
                None => Value::Null,
                Some(out) => serde_json::to_value(out),
            })
            .collect())
    }

    /// The sub-candidate joint mode of [`Self::evaluate_shard`]
    /// (`joint_unit` parameter, gated on the `joint_unit` capability):
    /// each entry of the shard is one **work unit** — one subnet mapped
    /// onto one accelerator design (`candidates[i]` pairs with
    /// `joint_unit.subnets[i]`; a design repeats once per unit that
    /// targets it, keeping the candidates/results cardinality contract
    /// of the wire format intact). The worker runs only the inner
    /// mapping search — the NAS evolution consuming these scores lives
    /// on the coordinator — and answers the raw [`naas_cost::NetworkCost`] per
    /// unit (`null` = no feasible mapping). Content-derived seeds make
    /// each unit a pure function of `(design, subnet, mapping config)`,
    /// so where a unit lands never changes its answer.
    fn evaluate_joint_unit_shard(
        &self,
        joint_unit: &Value,
        candidates: &[Accelerator],
        mapping: &MappingSearchConfig,
    ) -> Result<Vec<Value>, ServiceError> {
        let subnets: Vec<naas_nas::Subnet> =
            serde_json::from_value(joint_unit.get("subnets").ok_or_else(|| {
                ServiceError::BadRequest(
                    "`joint_unit.subnets` (one subnet per candidate) is required".into(),
                )
            })?)
            .map_err(|e| {
                ServiceError::BadRequest(format!("invalid joint_unit.subnets array: {e}"))
            })?;
        if subnets.len() != candidates.len() {
            return Err(ServiceError::BadRequest(format!(
                "joint_unit.subnets/candidates length mismatch: {} vs {}",
                subnets.len(),
                candidates.len()
            )));
        }
        let units: Vec<(&Accelerator, naas_nas::Subnet)> = candidates.iter().zip(subnets).collect();
        let results = parallel_map(self.threads(), &units, |_idx, (accel, subnet)| {
            let design_fp = mapping_search::design_fingerprint(accel, mapping);
            mapping_search::network_mapping_search_memo(
                &self.model,
                &subnet.to_network(),
                accel,
                mapping,
                self.engine.cache(),
                design_fp,
            )
        });
        Ok(results
            .iter()
            .map(|cost| match cost {
                None => Value::Null,
                Some(cost) => serde_json::to_value(cost),
            })
            .collect())
    }

    /// `search_step`: advances a serialized search state by one
    /// generation on this worker and returns the updated state — a whole
    /// remote-driven search for thin clients (state out ≡ state the
    /// equivalent local step call would produce, since the state embeds
    /// every bit of search trajectory). With `joint: true` the state is
    /// a [`crate::joint::JointSearchState`] (no scenario needed — the
    /// NAS supplies the workload; an optional `accuracy` model overrides
    /// the worker default); otherwise an [`AccelSearchState`] advanced
    /// against the required scenario's suite. `advanced` is `false` when
    /// the state's budget was already exhausted.
    fn search_step(&self, request: &Request) -> Result<Value, ServiceError> {
        let state_value = request.param("state").ok_or_else(|| {
            ServiceError::BadRequest("`state` (search-state object) is required".into())
        })?;
        let joint = match request.param("joint") {
            None | Some(Value::Bool(false)) => false,
            Some(Value::Bool(true)) => true,
            Some(_) => {
                return Err(ServiceError::BadRequest(
                    "`joint` must be a boolean in search_step".into(),
                ))
            }
        };
        if joint {
            let mut state: crate::joint::JointSearchState = serde_json::from_value(state_value)
                .map_err(|e| {
                    ServiceError::BadRequest(format!("invalid joint search state: {e}"))
                })?;
            let accuracy: AccuracyModel = match request.param("accuracy") {
                None => AccuracyModel::default(),
                Some(value) => serde_json::from_value(value).map_err(|e| {
                    ServiceError::BadRequest(format!("invalid accuracy model: {e}"))
                })?,
            };
            self.absorb_cache_param(request)?;
            self.engine.cache().enable_journal();
            let advanced =
                crate::joint::joint_search_step(&self.engine, &self.model, &accuracy, &mut state);
            return Ok(self.search_step_reply(advanced, state.is_done(), &state));
        }
        let job = self.resolve_scenario(request)?;
        if job.networks.is_empty() {
            return Err(ServiceError::BadRequest(
                "scenario has no benchmark networks".into(),
            ));
        }
        let mut state: AccelSearchState = serde_json::from_value(state_value)
            .map_err(|e| ServiceError::BadRequest(format!("invalid search state: {e}")))?;
        self.absorb_cache_param(request)?;
        self.engine.cache().enable_journal();
        let advanced =
            accel_search::accel_search_step(&self.engine, &self.model, &job.networks, &mut state);
        Ok(self.search_step_reply(advanced, state.is_done(), &state))
    }

    /// The common `search_step` reply shape for both state kinds.
    fn search_step_reply<S: Serialize>(&self, advanced: bool, done: bool, state: &S) -> Value {
        Value::Object(vec![
            ("advanced".to_string(), Value::Bool(advanced)),
            ("done".to_string(), Value::Bool(done)),
            ("state".to_string(), serde_json::to_value(state)),
            (
                "cache_delta".to_string(),
                serde_json::to_value(&self.engine.cache().take_new_entries()),
            ),
        ])
    }
}

/// One queued request: the framed request (parsed once, in the stream
/// reader), its position in its stream, and the channel its response
/// goes back on.
pub struct InFlight {
    /// The parsed request, or the parse failure to report.
    pub request: Result<Request, ParseFailure>,
    /// Stream-local sequence number, used to restore request order on
    /// the way out.
    pub seq: u64,
    /// Response channel back to the owning stream.
    pub reply: mpsc::Sender<(u64, String)>,
}

/// The coalescing scheduler: one thread draining the shared [`Batcher`],
/// fanning every drained batch over the service's worker pool.
///
/// Request streams ([`ServiceServer::serve_stream`]) push lines as fast
/// as they arrive; whatever is in flight when the scheduler comes
/// around — across *all* connections — is answered in one
/// `parallel_map` call.
///
/// Generic over the [`WireService`] behind it (defaulting to
/// [`BatchEvalService`]): the gateway serves its job commands through
/// the identical plumbing by starting a
/// `ServiceServer<GatewayService>`.
pub struct ServiceServer<S: WireService = BatchEvalService> {
    service: Arc<S>,
    batcher: Arc<Batcher<InFlight>>,
    scheduler: Option<std::thread::JoinHandle<()>>,
    drained: Arc<(std::sync::Mutex<bool>, std::sync::Condvar)>,
}

impl<S: WireService> ServiceServer<S> {
    /// Starts the scheduler thread over `service`.
    pub fn start(service: Arc<S>) -> Self {
        let batcher: Arc<Batcher<InFlight>> = Arc::new(Batcher::new());
        let drained = Arc::new((std::sync::Mutex::new(false), std::sync::Condvar::new()));
        let scheduler = {
            let service = Arc::clone(&service);
            let batcher = Arc::clone(&batcher);
            let drained = Arc::clone(&drained);
            std::thread::spawn(move || {
                while let Some(batch) = batcher.next_batch() {
                    // `answer` contains panics internally, so this fan-out
                    // cannot bring the scheduler down.
                    let responses = parallel_map(service.threads(), &batch, |_, job: &InFlight| {
                        service.answer(&job.request)
                    });
                    for (job, response) in batch.into_iter().zip(responses) {
                        // A client that hung up mid-request is not an error.
                        let _ = job.reply.send((job.seq, response));
                    }
                }
                let (flag, signal) = &*drained;
                *flag.lock().unwrap_or_else(|p| p.into_inner()) = true;
                signal.notify_all();
            })
        };
        ServiceServer {
            service,
            batcher,
            scheduler: Some(scheduler),
            drained,
        }
    }

    /// The underlying service.
    pub fn service(&self) -> &S {
        &self.service
    }

    /// Enqueues one raw request line; the response arrives on `reply`
    /// tagged with `seq`. Returns `false` if the server is shutting
    /// down.
    pub fn submit(&self, line: String, seq: u64, reply: mpsc::Sender<(u64, String)>) -> bool {
        self.batcher.push(InFlight {
            request: Request::parse(&line),
            seq,
            reply,
        })
    }

    /// Refuses new work and blocks until every queued request has been
    /// answered (responses handed to their streams' channels). Used by
    /// the `--port` server before process exit, where the blocked accept
    /// loop prevents a consuming [`ServiceServer::stop`].
    pub fn drain(&self) {
        self.batcher.close();
        let (flag, signal) = &*self.drained;
        let mut done = flag.lock().unwrap_or_else(|p| p.into_inner());
        while !*done {
            done = signal.wait(done).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Serves one request stream (stdin/stdout, a TCP connection):
    /// reads JSONL requests until EOF or a `shutdown` command, writes
    /// every response in request order. Reading and writing overlap, so
    /// a pipelining client keeps many requests in flight and they
    /// coalesce into shared batches with every other stream.
    ///
    /// Returns `true` when the stream requested shutdown.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures on the stream itself.
    pub fn serve_stream<R, W>(&self, reader: R, mut writer: W) -> std::io::Result<bool>
    where
        R: BufRead + Send,
        W: Write,
    {
        use std::sync::atomic::{AtomicBool, Ordering};
        let (tx, rx) = mpsc::channel::<(u64, String)>();
        let shutdown = AtomicBool::new(false);
        let shutdown_flag = &shutdown;
        // Set by the writer side on an I/O failure, so the reader stops
        // feeding a stream whose responses can no longer be delivered
        // (it notices at its next line boundary).
        let stream_dead = AtomicBool::new(false);
        let stream_dead_flag = &stream_dead;
        let result: std::io::Result<()> = std::thread::scope(|scope| {
            let reader_tx = tx;
            let reader_handle = scope.spawn(move || {
                let mut seq = 0u64;
                for line in reader.lines() {
                    let line = match line {
                        Ok(line) => line,
                        Err(e) => return Err(e),
                    };
                    if stream_dead_flag.load(Ordering::SeqCst) {
                        break;
                    }
                    if line.trim().is_empty() {
                        continue;
                    }
                    // Frame once here; the parse travels with the job.
                    let request = Request::parse(&line);
                    let wants_shutdown =
                        matches!(&request, Ok(request) if request.cmd == "shutdown");
                    let id = match &request {
                        Ok(request) => request.id.clone(),
                        Err(failure) => failure.id.clone(),
                    };
                    let accepted = self.batcher.push(InFlight {
                        request,
                        seq,
                        reply: reader_tx.clone(),
                    });
                    if !accepted {
                        // Server closing: the line was consumed, so it
                        // still gets a response (every consumed line
                        // must be answered, or a pipelining client
                        // deadlocks), then stop reading.
                        let _ = reader_tx.send((seq, error_line(&id, "server is shutting down")));
                        break;
                    }
                    seq += 1;
                    if wants_shutdown {
                        shutdown_flag.store(true, Ordering::SeqCst);
                        break;
                    }
                }
                Ok(())
            });
            // The reader's `tx` clones die with it and with each answered
            // request, so this loop ends exactly when every submitted
            // request has been answered and the reader is done.
            let mut next_seq = 0u64;
            let mut pending: BTreeMap<u64, String> = BTreeMap::new();
            let mut write_error: Option<std::io::Error> = None;
            for (seq, response) in rx {
                if write_error.is_some() {
                    continue; // keep draining so the channel empties
                }
                pending.insert(seq, response);
                while let Some(response) = pending.remove(&next_seq) {
                    if let Err(e) = writeln!(writer, "{response}").and_then(|_| writer.flush()) {
                        stream_dead_flag.store(true, Ordering::SeqCst);
                        write_error = Some(e);
                        break;
                    }
                    next_seq += 1;
                }
            }
            reader_handle.join().expect("stream reader panicked")?;
            match write_error {
                Some(e) => Err(e),
                None => Ok(()),
            }
        });
        result?;
        Ok(shutdown.load(std::sync::atomic::Ordering::SeqCst))
    }

    /// Accepts TCP connections on `listener` and serves each on its own
    /// thread ([`ServiceServer::serve_stream`]) until some stream issues
    /// a `shutdown` command. This is the whole of `naas-search worker`:
    /// a coordinator (or several) connects, fans `evaluate_shard` /
    /// `search_step` requests in, and requests from every connection
    /// coalesce in the shared batcher like any other service traffic.
    ///
    /// Returns `Ok(true)` after a shutdown request (the requesting
    /// stream's responses are already flushed; the caller should
    /// [`ServiceServer::drain`] and persist). Connection threads are
    /// detached: a lingering sibling connection cannot block shutdown,
    /// and per-connection I/O errors end that connection only. The
    /// accept loop polls a shutdown flag (non-blocking accept, short
    /// sleep when idle), so noticing shutdown never depends on another
    /// connection arriving.
    ///
    /// # Errors
    ///
    /// Propagates `accept` failures on the listener itself.
    pub fn serve_listener(
        self: &Arc<Self>,
        listener: std::net::TcpListener,
    ) -> std::io::Result<bool> {
        use std::sync::atomic::{AtomicBool, Ordering};
        let stop = Arc::new(AtomicBool::new(false));
        listener.set_nonblocking(true)?;
        loop {
            if stop.load(Ordering::SeqCst) {
                return Ok(true);
            }
            let stream = match listener.accept() {
                Ok((stream, _)) => stream,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    // Short poll: coordinators re-dial mid-run (e.g.
                    // after abandoning a conversation with orphaned
                    // speculative flights), and accept latency lands
                    // directly on the next generation's critical path.
                    std::thread::sleep(std::time::Duration::from_millis(5));
                    continue;
                }
                // A connection that died before accept() completed (port
                // scan, health probe, reset handshake) is that client's
                // problem, not the listener's — keep serving.
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::ConnectionAborted
                            | std::io::ErrorKind::ConnectionReset
                            | std::io::ErrorKind::Interrupted
                    ) =>
                {
                    continue;
                }
                Err(e) => return Err(e),
            };
            // The listener is non-blocking; the per-connection streams
            // must not be (portably, accepted sockets may inherit it).
            if stream.set_nonblocking(false).is_err() {
                continue;
            }
            // Replies are single JSON lines; leaving Nagle on makes
            // each one wait out the peer's delayed ACK.
            let _ = stream.set_nodelay(true);
            let server = Arc::clone(self);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let reader = match stream.try_clone() {
                    Ok(clone) => std::io::BufReader::new(clone),
                    Err(_) => return,
                };
                if let Ok(true) = server.serve_stream(reader, &stream) {
                    stop.store(true, Ordering::SeqCst);
                }
            });
        }
    }

    /// Stops accepting work, drains the queue, joins the scheduler and
    /// persists the service cache.
    ///
    /// # Errors
    ///
    /// Propagates a cache-file write failure.
    pub fn stop(mut self) -> Result<(), CheckpointError> {
        self.batcher.close();
        if let Some(handle) = self.scheduler.take() {
            handle.join().expect("service scheduler panicked");
        }
        self.service.persist_cache()
    }
}

impl<S: WireService> Drop for ServiceServer<S> {
    fn drop(&mut self) {
        self.batcher.close();
        if let Some(handle) = self.scheduler.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn service() -> BatchEvalService {
        BatchEvalService::new(ServiceConfig {
            threads: 2,
            mapping: MappingSearchConfig::quick(7),
            ..ServiceConfig::default()
        })
        .expect("no cache file to load")
    }

    fn parse(line: &str) -> Value {
        serde_json::from_str(line).expect("responses are valid JSON")
    }

    #[test]
    fn list_scenarios_answers_registry() {
        let s = service();
        let resp = parse(&s.respond(r#"{"id": 1, "cmd": "list_scenarios"}"#));
        assert_eq!(resp.get("ok"), Some(&Value::Bool(true)));
        let scenarios = resp
            .get("result")
            .and_then(|r| r.get("scenarios"))
            .and_then(Value::as_array)
            .expect("scenario array");
        assert_eq!(scenarios.len(), scenario::registry().len());
    }

    #[test]
    fn unknown_command_and_garbage_get_error_responses() {
        let s = service();
        let resp = parse(&s.respond(r#"{"id": 2, "cmd": "frobnicate"}"#));
        assert_eq!(resp.get("ok"), Some(&Value::Bool(false)));
        assert!(resp
            .get("error")
            .and_then(Value::as_str)
            .unwrap()
            .contains("frobnicate"));
        let resp = parse(&s.respond("{torn line"));
        assert_eq!(resp.get("ok"), Some(&Value::Bool(false)));
    }

    #[test]
    fn panicking_handler_becomes_error_response() {
        let s = service();
        let resp = parse(&s.respond(r#"{"id": 3, "cmd": "__panic"}"#));
        assert_eq!(resp.get("ok"), Some(&Value::Bool(false)));
        assert!(resp
            .get("error")
            .and_then(Value::as_str)
            .unwrap()
            .contains("internal panic"));
        // The service is still alive and answering.
        let resp = parse(&s.respond(r#"{"id": 4, "cmd": "cache_stats"}"#));
        assert_eq!(resp.get("ok"), Some(&Value::Bool(true)));
    }

    #[test]
    fn hello_negotiates_and_rejects_mismatches() {
        let s = service();
        let resp = parse(&s.respond(&format!(
            r#"{{"id": 10, "cmd": "hello", "protocol": {}, "client": "test"}}"#,
            naas_engine::PROTOCOL_VERSION
        )));
        assert_eq!(resp.get("ok"), Some(&Value::Bool(true)));
        let result = resp.get("result").unwrap();
        assert_eq!(
            result.get("protocol"),
            Some(&Value::U64(naas_engine::PROTOCOL_VERSION))
        );
        let caps = result
            .get("capabilities")
            .and_then(Value::as_array)
            .expect("capability array");
        for required in CAPABILITIES {
            assert!(
                caps.iter().any(|c| c.as_str() == Some(required)),
                "missing capability {required}"
            );
        }
        // A stated mismatching version is refused cleanly.
        let resp = parse(&s.respond(r#"{"id": 11, "cmd": "hello", "protocol": 1}"#));
        assert_eq!(resp.get("ok"), Some(&Value::Bool(false)));
        assert!(resp
            .get("error")
            .and_then(Value::as_str)
            .unwrap()
            .contains("protocol mismatch"));
        // A versionless hello (pure discovery) still answers.
        let resp = parse(&s.respond(r#"{"id": 12, "cmd": "hello"}"#));
        assert_eq!(resp.get("ok"), Some(&Value::Bool(true)));
    }

    #[test]
    fn score_design_requires_known_names() {
        let s = service();
        let resp = parse(&s.respond(r#"{"id": 5, "cmd": "score_design", "scenario": "nope"}"#));
        assert!(resp
            .get("error")
            .and_then(Value::as_str)
            .unwrap()
            .contains("scenario `nope`"));
        let resp = parse(&s.respond(
            r#"{"id": 6, "cmd": "score_design", "scenario": "cifar-eyeriss", "design": "TPUv9"}"#,
        ));
        assert!(resp
            .get("error")
            .and_then(Value::as_str)
            .unwrap()
            .contains("design `TPUv9`"));
    }
}
