//! `naas-search` — CLI driver over the engine's declarative scenarios.
//!
//! ```text
//! naas-search list
//! naas-search run <scenario> [--preset smoke|quick|paper] [--seed N]
//!                            [--threads N] [--checkpoint FILE] [--every K]
//!                            [--cache-file FILE]
//! naas-search run --file scenario.json [...]
//! naas-search resume <checkpoint-file> [--threads N] [--cache-file FILE]
//! naas-search show <checkpoint-file>
//! ```
//!
//! `run` executes an accelerator search for a registered scenario (or one
//! loaded from a JSON file), optionally checkpointing every K generations;
//! `resume` continues an interrupted run to completion — deterministically
//! reproducing what the uninterrupted search would have returned; `show`
//! summarizes a checkpoint without running anything.
//!
//! `--cache-file` persists the engine's mapping memo cache: entries are
//! warm-loaded before the search starts (if the file exists) and the
//! cache is saved back on every checkpoint write and at completion.
//! Because cached results are content-addressed, warming never changes
//! results — it only skips recomputing `(design, layer-shape)` pairs a
//! previous run already solved, which is most of a resumed search's work.

use naas::prelude::*;
use naas::{accel_search_init, AccelSearchState};
use naas_engine::{checkpoint, scenario, CheckpointPolicy, Scenario};
use serde::{Deserialize, Serialize};
use std::process::exit;

/// What `naas-search` writes to disk: the search state plus the scenario
/// it belongs to, so `resume` can rebuild the benchmark suite.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct SearchCheckpoint {
    scenario: Scenario,
    state: AccelSearchState,
}

fn usage() -> ! {
    eprintln!(
        "usage:\n  naas-search list\n  naas-search run <scenario|--file scenario.json> \
         [--preset smoke|quick|paper] [--seed N] [--threads N] [--checkpoint FILE] [--every K] \
         [--cache-file FILE]\n  \
         naas-search resume <checkpoint-file> [--threads N] [--every K] [--cache-file FILE]\n  \
         naas-search show <checkpoint-file>"
    );
    exit(2);
}

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("naas-search: {msg}");
    exit(1);
}

/// Tiny flag parser: positionals plus `--key value` options.
struct Args {
    positional: Vec<String>,
    options: Vec<(String, String)>,
}

impl Args {
    fn parse(raw: Vec<String>) -> Args {
        let mut positional = Vec::new();
        let mut options = Vec::new();
        let mut it = raw.into_iter();
        while let Some(arg) = it.next() {
            if let Some(key) = arg.strip_prefix("--") {
                let value = it.next().unwrap_or_else(|| usage());
                options.push((key.to_string(), value));
            } else {
                positional.push(arg);
            }
        }
        Args {
            positional,
            options,
        }
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.options
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn get_num<T: std::str::FromStr>(&self, key: &str) -> Option<T> {
        self.get(key).map(|v| {
            v.parse()
                .unwrap_or_else(|_| fail(format!("--{key} expects a number, got `{v}`")))
        })
    }
}

fn main() {
    let args = Args::parse(std::env::args().skip(1).collect());
    match args.positional.first().map(String::as_str) {
        Some("list") => cmd_list(),
        Some("run") => cmd_run(&args),
        Some("resume") => cmd_resume(&args),
        Some("show") => cmd_show(&args),
        _ => usage(),
    }
}

fn cmd_list() {
    println!("registered scenarios:\n");
    for s in scenario::registry() {
        println!(
            "  {:<20} {} [{} nets, envelope {}, seed {}]",
            s.name,
            s.description,
            s.networks.len(),
            s.envelope,
            s.seed
        );
    }
    println!("\nrun one with: naas-search run <name> [--preset smoke|quick|paper]");
}

fn search_config(args: &Args, seed: u64, threads: usize) -> AccelSearchConfig {
    let preset = args.get("preset").unwrap_or("quick");
    let (population, iterations, map_population, map_iterations) = match preset {
        "smoke" => (5, 3, 6, 2),
        "quick" => (10, 8, 12, 4),
        "paper" => (20, 15, 16, 6),
        other => fail(format!("unknown preset `{other}` (smoke|quick|paper)")),
    };
    let mut cfg = AccelSearchConfig::paper(seed);
    cfg.population = population;
    cfg.iterations = iterations;
    cfg.mapping.population = map_population;
    cfg.mapping.iterations = map_iterations;
    cfg.mapping.seed = seed;
    cfg.threads = threads;
    cfg
}

fn cmd_run(args: &Args) {
    let scenario = match (args.positional.get(1), args.get("file")) {
        (_, Some(path)) => {
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| fail(format!("cannot read {path}: {e}")));
            serde_json::from_str::<Scenario>(&text)
                .unwrap_or_else(|e| fail(format!("cannot parse {path}: {e}")))
        }
        (Some(name), None) => scenario::find(name).unwrap_or_else(|| {
            fail(format!(
                "unknown scenario `{name}` — see `naas-search list`"
            ))
        }),
        (None, None) => usage(),
    };
    let job = scenario.resolve().unwrap_or_else(|e| fail(e));
    let seed = args.get_num("seed").unwrap_or(job.scenario.seed);
    let threads = args.get_num("threads").unwrap_or(0);
    let cfg = search_config(args, seed, threads);

    let policy = args.get("checkpoint").map(|path| CheckpointPolicy {
        path: path.into(),
        every: args.get_num("every").unwrap_or(1),
    });

    println!(
        "searching `{}` — {} network(s) within {} resources, population {} × {} generations",
        job.scenario.name,
        job.networks.len(),
        job.baseline.name(),
        cfg.population,
        cfg.iterations
    );

    let engine = CoSearchEngine::new(cfg.threads);
    let cache_file = warm_load_cache(&engine, args);
    let model = CostModel::new();
    let seeds: Vec<_> = if job.scenario.warm_start {
        vec![job.baseline.clone()]
    } else {
        vec![]
    };

    let state = accel_search_init(&job.constraint, &cfg, &seeds);
    drive(&engine, &model, &job, state, policy.as_ref(), cache_file);
}

/// Resolves `--cache-file` and warm-loads it into the engine's memo
/// cache when the file already exists. Returns the path so the driver
/// can persist the cache as the search progresses.
fn warm_load_cache<'a>(engine: &CoSearchEngine, args: &'a Args) -> Option<&'a std::path::Path> {
    let path = args.get("cache-file").map(std::path::Path::new)?;
    if path.exists() {
        match engine.cache().load_from(path) {
            Ok(entries) => println!(
                "warm-loaded {entries} cache entries from {}",
                path.display()
            ),
            Err(e) => fail(format!("cannot load cache file {}: {e}", path.display())),
        }
    }
    Some(path)
}

fn cmd_resume(args: &Args) {
    let path = args
        .positional
        .get(1)
        .map(String::as_str)
        .unwrap_or_else(|| usage());
    let snapshot: SearchCheckpoint = checkpoint::load(std::path::Path::new(path))
        .unwrap_or_else(|e| fail(format!("cannot load {path}: {e}")));
    let job = snapshot.scenario.resolve().unwrap_or_else(|e| fail(e));
    let threads = args
        .get_num("threads")
        .unwrap_or(snapshot.state.config.threads);
    // A resumed run keeps checkpointing to the file it came from (same
    // cadence flag as `run`), so a second interruption loses at most
    // `--every` generations — not everything since the first crash.
    let policy = CheckpointPolicy {
        path: path.into(),
        every: args.get_num("every").unwrap_or(1),
    };

    println!(
        "resuming `{}` at generation {}/{} from {path}",
        job.scenario.name, snapshot.state.iteration, snapshot.state.config.iterations
    );
    let engine = CoSearchEngine::new(threads);
    let cache_file = warm_load_cache(&engine, args);
    let model = CostModel::new();
    drive(
        &engine,
        &model,
        &job,
        snapshot.state,
        Some(&policy),
        cache_file,
    );
}

/// Steps a search to completion with progress lines and (optionally)
/// per-generation `SearchCheckpoint` snapshots; prints the final report.
/// With a cache file, the memo cache is persisted alongside every
/// checkpoint write and once more at completion, so an interrupted run
/// resumes with its mapping results already warm.
fn drive(
    engine: &CoSearchEngine,
    model: &CostModel,
    job: &naas_engine::EvalJob,
    mut state: AccelSearchState,
    policy: Option<&CheckpointPolicy>,
    cache_file: Option<&std::path::Path>,
) {
    let iterations = state.config.iterations;
    let started = std::time::Instant::now();
    while naas::accel_search_step(engine, model, &job.networks, &mut state) {
        let last = state.history().last().expect("step appends history");
        println!(
            "  gen {:>2}/{}: best EDP {:.3e}, population mean {:.3e}, {} valid, cache {:.0}% hit",
            state.iteration,
            iterations,
            last.best_edp,
            last.mean_edp,
            last.valid,
            state.cache_stats.hit_rate() * 100.0
        );
        let due = policy
            .map(|p| p.due_after(state.iteration - 1))
            .unwrap_or(false);
        if due || state.is_done() {
            if let Some(policy) = policy {
                let snapshot = SearchCheckpoint {
                    scenario: job.scenario.clone(),
                    state: state.clone(),
                };
                checkpoint::save(&policy.path, &snapshot)
                    .unwrap_or_else(|e| fail(format!("cannot write checkpoint: {e}")));
            }
            if let Some(path) = cache_file {
                engine
                    .cache()
                    .save_to(path)
                    .unwrap_or_else(|e| fail(format!("cannot write cache file: {e}")));
            }
        }
    }
    report(state, started.elapsed());
}

fn cmd_show(args: &Args) {
    let path = args
        .positional
        .get(1)
        .map(String::as_str)
        .unwrap_or_else(|| usage());
    let snapshot: SearchCheckpoint = checkpoint::load(std::path::Path::new(path))
        .unwrap_or_else(|e| fail(format!("cannot load {path}: {e}")));
    let state = &snapshot.state;
    println!(
        "scenario `{}`: generation {}/{}, {} evaluations, cache {} entries ({:.0}% hit)",
        snapshot.scenario.name,
        state.iteration,
        state.config.iterations,
        state.history().iter().map(|h| h.valid).sum::<usize>(),
        state.cache_stats.entries,
        state.cache_stats.hit_rate() * 100.0
    );
    match state.best() {
        Some(best) => println!(
            "best so far: reward {:.3e}\n{}",
            best.reward,
            best.accelerator.design_card()
        ),
        None => println!("no valid design found yet"),
    }
}

fn report(state: AccelSearchState, elapsed: std::time::Duration) {
    let stats = state.cache_stats;
    let result = state.into_result();
    println!("\nbest design:\n{}", result.best.accelerator.design_card());
    println!(
        "reward (geomean EDP) {:.3e} after {} evaluations [{:.1}s]",
        result.best.reward,
        result.evaluations,
        elapsed.as_secs_f64()
    );
    println!(
        "cache: {} entries, {} hits / {} misses ({:.0}% hit rate)",
        stats.entries,
        stats.hits,
        stats.misses,
        stats.hit_rate() * 100.0
    );
}
