//! `naas-search` — CLI driver over the engine's declarative scenarios.
//!
//! ```text
//! naas-search list
//! naas-search run <scenario> [--preset smoke|quick|paper] [--seed N]
//!                            [--threads N] [--checkpoint FILE] [--every K]
//!                            [--cache-file FILE] [--cache-cap N]
//!                            [--workers host:port,...] [--metrics-file FILE]
//!                            [--microshards N] [--steal-deadline MS]
//!                            [--overlap on|off] [--objectives scalar|pareto]
//! naas-search run --file scenario.json [...]
//! naas-search resume <checkpoint-file> [--threads N] [--cache-file FILE]
//!                                      [--cache-cap N]
//!                                      [--workers host:port,...|local]
//!                                      [--metrics-file FILE]
//!                                      [--microshards N] [--steal-deadline MS]
//!                                      [--overlap on|off]
//!                                      [--objectives scalar|pareto]
//! naas-search show <checkpoint-file>
//! naas-search serve [--port N] [--bind ADDR] [--preset smoke|quick|paper]
//!                   [--threads N] [--cache-file FILE] [--cache-cap N]
//!                   [--metrics-file FILE]
//! naas-search worker --port N [--bind ADDR] [--preset smoke|quick|paper]
//!                    [--threads N] [--cache-file FILE] [--cache-cap N]
//!                    [--metrics-file FILE]
//! naas-search gateway [--port N] [--bind ADDR] [--max-jobs N]
//!                     [--tenant-quota N] [--executors N]
//!                     [--workers host:port,...] [--threads N]
//!                     [--cache-file FILE] [--cache-cap N]
//!                     [--metrics-file FILE] [--overlap on|off]
//! naas-search client <host:port> [metrics]
//! naas-search client <host:port> submit --scenario NAME [--kind accel|joint]
//!                     [--tenant T] [--weight N] [--seed N] [--preset quick|paper]
//! naas-search client <host:port> status|events|cancel|result|wait --job N
//! ```
//!
//! `run` executes an accelerator search for a registered scenario (or one
//! loaded from a JSON file), optionally checkpointing every K generations;
//! `resume` continues an interrupted run to completion — deterministically
//! reproducing what the uninterrupted search would have returned; `show`
//! summarizes a checkpoint without running anything.
//!
//! `serve` starts the batch-evaluation service: one warm engine (shared
//! mapping cache, work-stealing pool) answering JSONL requests on
//! stdin/stdout and — with `--port` — on a TCP socket, coalescing
//! concurrent in-flight requests into batched pipeline calls. See
//! `naas::service` for the protocol and `docs/PROTOCOL.md` for the wire
//! spec. `client` connects to a serving process and bridges stdin/stdout
//! to it.
//!
//! `worker` is the TCP-only face of `serve`, meant to stand behind a
//! distributed run: `run --workers host:port,...` shards each
//! generation's population over the listed workers (`evaluate_shard`
//! requests), merges replies in candidate order, relays mapping-cache
//! deltas between workers, re-issues the shard of any worker that dies
//! mid-generation, and produces **bit-identical** results (best design +
//! history) to the same run without `--workers`. The shard plan is
//! recorded in checkpoints, so `resume` re-dials the same fleet by
//! default (`--workers` overrides; `--workers local` forces
//! single-process).
//!
//! `--microshards N` tunes how many micro-shards each live worker's
//! queue is cut into per generation (default 6; `0` selects the static
//! one-shard-per-worker scheduler, which disables work stealing and
//! speculative re-issue). `--steal-deadline MS` is the age after which
//! an in-flight micro-shard is speculatively re-issued to an idle
//! worker (default 500 ms, first answer wins). Both are scheduling
//! knobs only — results stay bit-identical at any setting — and both
//! are recorded in the checkpointed shard plan, so `resume` keeps the
//! tuning unless overridden. See docs/OPERATIONS.md ("Tuning the
//! scheduler"). Degenerate tunings (`--steal-deadline 0`,
//! `--microshards` above the population) are rejected at parse time.
//!
//! `--overlap on` switches the coordinator from the barrier scheduler
//! to the event-driven overlap reactor: while a generation's
//! micro-shards are in flight, the next generation is speculatively
//! sampled from a forked optimizer state and dispatched to workers
//! that would otherwise idle; if merging the real results changes the
//! trajectory, the speculation is rolled back and re-asked. Results
//! stay bit-identical to `--overlap off` (the default) at any
//! completion order — overlap is a latency optimization, never a
//! semantic one. The setting is recorded in the checkpointed shard
//! plan, so `resume` keeps it unless overridden. See
//! docs/ARCHITECTURE.md ("The overlap reactor").
//!
//! `--cache-file` persists the engine's mapping memo cache: entries are
//! warm-loaded before the search starts (if the file exists) and the
//! cache is saved back on every checkpoint write and at completion.
//! Because cached results are content-addressed, warming never changes
//! results — it only skips recomputing `(design, layer-shape)` pairs a
//! previous run already solved, which is most of a resumed search's work.
//! `--cache-cap N` bounds the cache to N resident entries (CLOCK
//! eviction; unbounded by default) — set it on week-long runs and on
//! long-lived `serve`/`worker` processes so memory holds steady.
//! Eviction costs recomputation, never correctness.
//!
//! `--objectives pareto` keeps, alongside the unchanged scalarized
//! search, a deterministic bounded Pareto archive over
//! `(latency, energy, area, accuracy)` objective vectors; `run` and
//! `show` print the resulting front. The scalar trajectory is
//! bit-identical with or without the archive — the optimizer still
//! consumes the scalarized reward. The policy is recorded in the
//! checkpointed search config, so `resume` continues it automatically;
//! passing `--objectives` on resume merely asserts the recorded policy
//! (a mismatch is a hard error, because switching policies mid-run
//! would make the resumed front unreproducible).
//!
//! `gateway` is the multi-tenant job multiplexer (protocol 4, `"jobs"`
//! capability): it serves everything `serve` does *plus* the `job_*`
//! command family, running many concurrent accel/joint search jobs as
//! checkpointed step-loops interleaved on one shared engine — and, with
//! `--workers`, one shared worker fleet. `--max-jobs` bounds resident
//! jobs (submits beyond it answer `rejected:over_capacity`),
//! `--tenant-quota` caps any one tenant's in-flight generations, and
//! `--executors` sets cross-job concurrency. The `client` job verbs
//! (`submit`/`status`/`events`/`cancel`/`result`/`wait`) drive it from
//! scripts; `events --follow true` streams per-generation progress as
//! JSONL. Results are byte-identical to running each job alone — see
//! docs/OPERATIONS.md ("Multi-tenant runs").
//!
//! `--metrics-file FILE` turns on the telemetry sink: structured fleet
//! events and periodic metrics snapshots are appended to FILE as JSONL
//! (one object per line, `"kind":"event"` or `"kind":"metrics"`) — on
//! `run`/`resume` a snapshot per generation, on `serve`/`worker` one
//! every 30 seconds. `naas-search client <host:port> metrics` fetches a
//! one-shot snapshot from a live serving process instead. Telemetry is
//! passive: results are bit-identical with or without it.

use naas::prelude::*;
use naas::{accel_search_init, AccelSearchState};
use naas_engine::telemetry::{self, Level};
use naas_engine::{checkpoint, scenario, CheckpointPolicy, Scenario};
use serde::{Deserialize, Serialize, Value};
use std::process::exit;

/// What `naas-search` writes to disk: the search state plus the scenario
/// it belongs to (so `resume` can rebuild the benchmark suite) and the
/// shard plan of a distributed run (so `resume` re-dials the fleet).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct SearchCheckpoint {
    scenario: Scenario,
    state: AccelSearchState,
    /// `None` for single-process runs and checkpoints from older builds.
    shards: Option<naas::ShardPlan>,
}

fn usage() -> ! {
    telemetry::events().emit(
        Level::Error,
        "usage",
        "usage:\n  naas-search list\n  naas-search run <scenario|--file scenario.json> \
         [--preset smoke|quick|paper] [--seed N] [--threads N] [--checkpoint FILE] [--every K] \
         [--cache-file FILE] [--cache-cap N] [--workers host:port,...] [--metrics-file FILE] \
         [--microshards N] [--steal-deadline MS] [--overlap on|off] \
         [--objectives scalar|pareto]\n  \
         naas-search resume <checkpoint-file> [--threads N] [--every K] [--cache-file FILE] \
         [--cache-cap N] [--workers host:port,...|local] [--metrics-file FILE] \
         [--microshards N] [--steal-deadline MS] [--overlap on|off] \
         [--objectives scalar|pareto]\n  \
         naas-search show <checkpoint-file>\n  \
         naas-search serve [--port N] [--bind ADDR] [--preset smoke|quick|paper] \
         [--threads N] [--cache-file FILE] [--cache-cap N] [--metrics-file FILE]\n  \
         naas-search worker --port N [--bind ADDR] [--preset smoke|quick|paper] \
         [--threads N] [--cache-file FILE] [--cache-cap N] [--metrics-file FILE]\n  \
         naas-search gateway [--port N] [--bind ADDR] [--max-jobs N] [--tenant-quota N] \
         [--executors N] [--workers host:port,...] [--threads N] [--cache-file FILE] \
         [--cache-cap N] [--metrics-file FILE] [--overlap on|off]\n  \
         naas-search client <host:port> [metrics]\n  \
         naas-search client <host:port> submit --scenario NAME [--kind accel|joint] \
         [--tenant T] [--weight N] [--seed N] [--preset quick|paper]\n  \
         naas-search client <host:port> status|events|cancel|result|wait --job N",
        &[],
    );
    exit(2);
}

fn fail(msg: impl std::fmt::Display) -> ! {
    telemetry::events().emit(
        Level::Error,
        "fatal",
        &format!("naas-search: {msg}"),
        &[("error", Value::Str(msg.to_string()))],
    );
    exit(1);
}

/// Tiny flag parser: positionals plus `--key value` options.
struct Args {
    positional: Vec<String>,
    options: Vec<(String, String)>,
}

impl Args {
    fn parse(raw: Vec<String>) -> Args {
        let mut positional = Vec::new();
        let mut options = Vec::new();
        let mut it = raw.into_iter();
        while let Some(arg) = it.next() {
            if let Some(key) = arg.strip_prefix("--") {
                let value = it.next().unwrap_or_else(|| usage());
                options.push((key.to_string(), value));
            } else {
                positional.push(arg);
            }
        }
        Args {
            positional,
            options,
        }
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.options
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn get_num<T: std::str::FromStr>(&self, key: &str) -> Option<T> {
        self.get(key).map(|v| {
            v.parse()
                .unwrap_or_else(|_| fail(format!("--{key} expects a number, got `{v}`")))
        })
    }
}

fn main() {
    let args = Args::parse(std::env::args().skip(1).collect());
    match args.positional.first().map(String::as_str) {
        Some("list") => cmd_list(),
        Some("run") => cmd_run(&args),
        Some("resume") => cmd_resume(&args),
        Some("show") => cmd_show(&args),
        Some("serve") => cmd_serve(&args),
        Some("worker") => cmd_worker(&args),
        Some("gateway") => cmd_gateway(&args),
        Some("client") => cmd_client(&args),
        _ => usage(),
    }
}

fn cmd_list() {
    println!("registered scenarios:\n");
    for s in scenario::registry() {
        println!(
            "  {:<20} {} [{} nets, envelope {}, seed {}]",
            s.name,
            s.description,
            s.networks.len(),
            s.envelope,
            s.seed
        );
    }
    println!("\nrun one with: naas-search run <name> [--preset smoke|quick|paper]");
}

fn search_config(args: &Args, seed: u64, threads: usize) -> AccelSearchConfig {
    let preset = args.get("preset").unwrap_or("quick");
    let (population, iterations, map_population, map_iterations) = match preset {
        "smoke" => (5, 3, 6, 2),
        "quick" => (10, 8, 12, 4),
        "paper" => (20, 15, 16, 6),
        other => fail(format!("unknown preset `{other}` (smoke|quick|paper)")),
    };
    let mut cfg = AccelSearchConfig::paper(seed);
    cfg.population = population;
    cfg.iterations = iterations;
    cfg.mapping.population = map_population;
    cfg.mapping.iterations = map_iterations;
    cfg.mapping.seed = seed;
    cfg.threads = threads;
    cfg.objectives = objectives_flag(args).unwrap_or_default();
    cfg
}

/// Parses `--objectives scalar|pareto`; `None` when the flag is absent.
fn objectives_flag(args: &Args) -> Option<naas::ObjectivePolicy> {
    args.get("objectives")
        .map(|spec| naas::ObjectivePolicy::parse(spec).unwrap_or_else(|e| fail(e)))
}

fn cmd_run(args: &Args) {
    let scenario = match (args.positional.get(1), args.get("file")) {
        (_, Some(path)) => {
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| fail(format!("cannot read {path}: {e}")));
            serde_json::from_str::<Scenario>(&text)
                .unwrap_or_else(|e| fail(format!("cannot parse {path}: {e}")))
        }
        (Some(name), None) => scenario::find(name).unwrap_or_else(|| {
            fail(format!(
                "unknown scenario `{name}` — see `naas-search list`"
            ))
        }),
        (None, None) => usage(),
    };
    let job = scenario.resolve().unwrap_or_else(|e| fail(e));
    let seed = args.get_num("seed").unwrap_or(job.scenario.seed);
    let threads = args.get_num("threads").unwrap_or(0);
    let cfg = search_config(args, seed, threads);
    check_scheduler_flags(args, cfg.population);

    let policy = args.get("checkpoint").map(|path| CheckpointPolicy {
        path: path.into(),
        every: args.get_num("every").unwrap_or(1),
    });

    println!(
        "searching `{}` — {} network(s) within {} resources, population {} × {} generations",
        job.scenario.name,
        job.networks.len(),
        job.baseline.name(),
        cfg.population,
        cfg.iterations
    );

    init_metrics_file(args);
    let engine = CoSearchEngine::new(cfg.threads);
    let cache_file = warm_load_cache(&engine, args);
    let model = CostModel::new();
    let seeds: Vec<_> = if job.scenario.warm_start {
        vec![job.baseline.clone()]
    } else {
        vec![]
    };

    let state = accel_search_init(&job.constraint, &cfg, &seeds);
    let mut driver = make_driver(args, args.get("workers"), &job.scenario);
    drive(
        &engine,
        &model,
        &job,
        state,
        policy.as_ref(),
        cache_file,
        &mut driver,
    );
}

/// Where generations are evaluated: in-process, or sharded over a fleet
/// of `naas-search worker` processes.
enum Driver {
    Local,
    Distributed(Box<naas::DistributedCoordinator>),
}

impl Driver {
    fn step(
        &mut self,
        engine: &CoSearchEngine,
        model: &CostModel,
        networks: &[Network],
        state: &mut AccelSearchState,
    ) -> bool {
        match self {
            Driver::Local => naas::accel_search_step(engine, model, networks, state),
            Driver::Distributed(coordinator) => coordinator.step(engine, model, networks, state),
        }
    }

    fn plan(&self) -> Option<naas::ShardPlan> {
        match self {
            Driver::Local => None,
            Driver::Distributed(coordinator) => Some(coordinator.plan()),
        }
    }
}

/// Builds the generation driver from a `--workers` value: a
/// comma-separated `host:port` list shards over that fleet; absent or
/// `local` runs in-process. Either way the search results are
/// bit-identical — workers only relocate candidate evaluations.
fn make_driver(args: &Args, workers: Option<&str>, scenario: &Scenario) -> Driver {
    let Some(list) = workers else {
        return Driver::Local;
    };
    if list == "local" {
        return Driver::Local;
    }
    let addrs: Vec<String> = list
        .split(',')
        .map(str::trim)
        .filter(|a| !a.is_empty())
        .map(String::from)
        .collect();
    if addrs.is_empty() {
        fail("--workers expects a comma-separated host:port list (or `local`)");
    }
    let mut coordinator = naas::DistributedCoordinator::connect(&addrs, scenario)
        .unwrap_or_else(|e| fail(format!("cannot connect worker fleet: {e}")));
    apply_scheduler_flags(&mut coordinator, args, None);
    println!(
        "sharding over {} worker(s): {}",
        addrs.len(),
        addrs.join(", ")
    );
    Driver::Distributed(Box::new(coordinator))
}

/// Applies `--microshards` / `--steal-deadline` / `--overlap` to a
/// coordinator. On resume, a recorded shard `plan` supplies the
/// defaults (the tuning an interrupted run was using), and explicit
/// flags override it; old checkpoints without the fields keep the
/// built-in defaults. Tuning never changes results — only how fast
/// generations clear.
fn apply_scheduler_flags(
    coordinator: &mut naas::DistributedCoordinator,
    args: &Args,
    plan: Option<&naas::ShardPlan>,
) {
    let recorded = plan.and_then(|p| p.microshards);
    if let Some(micro) = args.get_num("microshards").or(recorded) {
        coordinator.set_microshards(micro);
    }
    let recorded_ms = plan.and_then(|p| p.steal_deadline_ms);
    if let Some(ms) = args.get_num::<u64>("steal-deadline").or(recorded_ms) {
        coordinator.set_steal_deadline(std::time::Duration::from_millis(ms));
    }
    let recorded_overlap = plan.and_then(|p| p.overlap);
    if let Some(on) = overlap_flag(args).or(recorded_overlap) {
        coordinator.set_overlap(on);
    }
}

/// Parses `--overlap on|off`; `None` when the flag is absent.
fn overlap_flag(args: &Args) -> Option<bool> {
    args.get("overlap").map(|v| match v {
        "on" => true,
        "off" => false,
        other => fail(format!("--overlap expects `on` or `off`, got `{other}`")),
    })
}

/// Rejects degenerate scheduler tunings at parse time, before any
/// worker is dialed or any generation runs. Only explicitly-given
/// flags are checked — absent flags fall back to defaults that are
/// valid by construction, and recorded checkpoint values were already
/// validated by the run that wrote them.
fn check_scheduler_flags(args: &Args, population: usize) {
    naas::validate_scheduler_flags(
        args.get_num("microshards").unwrap_or(0),
        args.get_num("steal-deadline").unwrap_or(1),
        population,
    )
    .unwrap_or_else(|e| fail(e));
}

/// Resolves `--cache-cap` (0 = unbounded) and `--cache-file`,
/// warm-loading the latter into the engine's memo cache when the file
/// already exists (the cap is applied first, so an oversized file is
/// trimmed on absorption). Returns the path so the driver can persist
/// the cache as the search progresses.
fn warm_load_cache<'a>(engine: &CoSearchEngine, args: &'a Args) -> Option<&'a std::path::Path> {
    if let Some(cap) = args.get_num("cache-cap") {
        engine.cache().set_entry_cap(cap);
    }
    let path = args.get("cache-file").map(std::path::Path::new)?;
    if path.exists() {
        match engine.cache().load_from(path) {
            Ok(entries) => println!(
                "warm-loaded {entries} cache entries from {}",
                path.display()
            ),
            Err(e) => fail(format!("cannot load cache file {}: {e}", path.display())),
        }
    }
    Some(path)
}

/// Attaches the telemetry JSONL sink when `--metrics-file` is given.
/// Returns whether a sink is now active (structured events and metrics
/// snapshots flow to the file; stderr rendering is unaffected).
fn init_metrics_file(args: &Args) -> bool {
    let Some(path) = args.get("metrics-file") else {
        return false;
    };
    telemetry::events()
        .open_sink(path)
        .unwrap_or_else(|e| fail(format!("cannot open metrics file {path}: {e}")));
    true
}

/// Appends one metrics snapshot line for `engine` to the telemetry
/// sink; a no-op without `--metrics-file`.
fn write_metrics_snapshot(engine: &CoSearchEngine) {
    telemetry::events()
        .write_metrics(&telemetry::metrics().snapshot(telemetry::cache_counters(engine.cache())));
}

fn cmd_resume(args: &Args) {
    let path = args
        .positional
        .get(1)
        .map(String::as_str)
        .unwrap_or_else(|| usage());
    let snapshot: SearchCheckpoint = checkpoint::load(std::path::Path::new(path))
        .unwrap_or_else(|e| fail(format!("cannot load {path}: {e}")));
    let job = snapshot.scenario.resolve().unwrap_or_else(|e| fail(e));
    // The objective policy is part of the recorded search config: a
    // resumed run must continue it, or the front would not reproduce
    // the uninterrupted run's. `--objectives` on resume is an assertion
    // only — a mismatch is refused rather than silently switched.
    if let Some(requested) = objectives_flag(args) {
        let recorded = snapshot.state.config.objectives;
        if requested != recorded {
            fail(format!(
                "--objectives {requested} conflicts with the checkpoint's recorded \
                 policy `{recorded}`; a resumed run always continues the recorded policy"
            ));
        }
    }
    let threads = args
        .get_num("threads")
        .unwrap_or(snapshot.state.config.threads);
    check_scheduler_flags(args, snapshot.state.config.population);
    // A resumed run keeps checkpointing to the file it came from (same
    // cadence flag as `run`), so a second interruption loses at most
    // `--every` generations — not everything since the first crash.
    let policy = CheckpointPolicy {
        path: path.into(),
        every: args.get_num("every").unwrap_or(1),
    };

    println!(
        "resuming `{}` at generation {}/{} from {path}",
        job.scenario.name, snapshot.state.iteration, snapshot.state.config.iterations
    );
    init_metrics_file(args);
    let engine = CoSearchEngine::new(threads);
    let cache_file = warm_load_cache(&engine, args);
    let model = CostModel::new();
    // `--workers` overrides the recorded shard plan; without it, re-dial
    // the plan the interrupted run was sharded over. Either way the
    // resumed trajectory is identical — sharding never changes results.
    let mut driver = match (args.get("workers"), &snapshot.shards) {
        (Some(flag), _) => make_driver(args, Some(flag), &job.scenario),
        (None, Some(plan)) => {
            match naas::DistributedCoordinator::connect(&plan.workers, &job.scenario) {
                Ok(mut coordinator) => {
                    apply_scheduler_flags(&mut coordinator, args, Some(plan));
                    println!("re-dialed recorded shard plan: {}", plan.workers.join(", "));
                    Driver::Distributed(Box::new(coordinator))
                }
                Err(e) => {
                    telemetry::events().emit(
                        Level::Warn,
                        "shard_plan_unreachable",
                        &format!(
                            "recorded shard plan unreachable ({e}); resuming single-process \
                             (results are identical either way)"
                        ),
                        &[
                            ("error", Value::Str(e.to_string())),
                            ("workers", Value::Str(plan.workers.join(","))),
                        ],
                    );
                    Driver::Local
                }
            }
        }
        (None, None) => Driver::Local,
    };
    drive(
        &engine,
        &model,
        &job,
        snapshot.state,
        Some(&policy),
        cache_file,
        &mut driver,
    );
}

/// Steps a search to completion with progress lines and (optionally)
/// per-generation `SearchCheckpoint` snapshots; prints the final report.
/// With a cache file, the memo cache is persisted alongside every
/// checkpoint write and once more at completion, so an interrupted run
/// resumes with its mapping results already warm.
#[allow(clippy::too_many_arguments)]
fn drive(
    engine: &CoSearchEngine,
    model: &CostModel,
    job: &naas_engine::EvalJob,
    mut state: AccelSearchState,
    policy: Option<&CheckpointPolicy>,
    cache_file: Option<&std::path::Path>,
    driver: &mut Driver,
) {
    let iterations = state.config.iterations;
    let started = std::time::Instant::now();
    while driver.step(engine, model, &job.networks, &mut state) {
        let last = state.history().last().expect("step appends history");
        println!(
            "  gen {:>2}/{}: best EDP {:.3e}, population mean {:.3e}, {} valid, cache {:.0}% hit",
            state.iteration,
            iterations,
            last.best_edp,
            last.mean_edp,
            last.valid,
            state.cache_stats.hit_rate() * 100.0
        );
        write_metrics_snapshot(engine);
        let due = policy
            .map(|p| p.due_after(state.iteration - 1))
            .unwrap_or(false);
        if due || state.is_done() {
            if let Some(policy) = policy {
                let snapshot = SearchCheckpoint {
                    scenario: job.scenario.clone(),
                    state: state.clone(),
                    shards: driver.plan(),
                };
                checkpoint::save(&policy.path, &snapshot)
                    .unwrap_or_else(|e| fail(format!("cannot write checkpoint: {e}")));
            }
            if let Some(path) = cache_file {
                engine
                    .cache()
                    .save_to(path)
                    .unwrap_or_else(|e| fail(format!("cannot write cache file: {e}")));
            }
        }
    }
    write_metrics_snapshot(engine);
    report(state, started.elapsed());
}

fn cmd_show(args: &Args) {
    let path = args
        .positional
        .get(1)
        .map(String::as_str)
        .unwrap_or_else(|| usage());
    let snapshot: SearchCheckpoint = checkpoint::load(std::path::Path::new(path))
        .unwrap_or_else(|e| fail(format!("cannot load {path}: {e}")));
    let state = &snapshot.state;
    println!(
        "scenario `{}`: generation {}/{}, {} evaluations, cache {} entries ({:.0}% hit)",
        snapshot.scenario.name,
        state.iteration,
        state.config.iterations,
        state.history().iter().map(|h| h.valid).sum::<usize>(),
        state.cache_stats.entries,
        state.cache_stats.hit_rate() * 100.0
    );
    match state.best() {
        Some(best) => println!(
            "best so far: reward {:.3e}\n{}",
            best.reward,
            best.accelerator.design_card()
        ),
        None => println!("no valid design found yet"),
    }
    if let Some(archive) = state.archive() {
        println!("\n{}", archive.render());
    }
}

/// Resolves the `--bind` address (default: loopback only; pass
/// `--bind 0.0.0.0` to serve a multi-machine fleet).
fn bind_addr(args: &Args) -> &str {
    args.get("bind").unwrap_or("127.0.0.1")
}

/// The service-construction preamble shared by `serve` and `worker`:
/// flag parsing, warm cache load, startup banner.
fn build_service(args: &Args, banner: &str) -> naas::BatchEvalService {
    let threads = args.get_num("threads").unwrap_or(0);
    let seed = args.get_num("seed").unwrap_or(2021);
    let mapping = search_config(args, seed, threads).mapping;
    // Chaos-testing hook: NAAS_EVAL_DELAY_US slows every shard
    // evaluation by that many microseconds per candidate, serialized —
    // a worker started with it set behaves like a genuinely slow
    // machine. Never changes any answer.
    let eval_delay_us = std::env::var("NAAS_EVAL_DELAY_US")
        .ok()
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| fail(format!("NAAS_EVAL_DELAY_US expects a number, got `{v}`")))
        })
        .unwrap_or(0);
    let service = naas::BatchEvalService::new(naas::ServiceConfig {
        threads,
        mapping,
        cache_file: args.get("cache-file").map(std::path::PathBuf::from),
        cache_cap: args.get_num("cache-cap").unwrap_or(0),
        eval_delay_us,
    })
    .unwrap_or_else(|e| fail(format!("cannot start {banner}: {e}")));
    telemetry::events().emit(
        Level::Info,
        "service_started",
        &format!(
            "naas-search {banner}: {} worker thread(s), mapping budget {}x{}, \
             {} warm cache entries",
            service.threads(),
            mapping.population,
            mapping.iterations,
            service.engine().cache_stats().entries
        ),
        &[
            ("mode", Value::Str(banner.to_string())),
            ("threads", Value::U64(service.threads() as u64)),
            (
                "warm_entries",
                Value::U64(service.engine().cache_stats().entries),
            ),
        ],
    );
    service
}

/// The periodic `--metrics-file` snapshot writer for the long-lived
/// service modes (`serve`/`worker`): one metrics line every 30 seconds,
/// from a detached thread that dies with the process. Structured events
/// flow to the same sink as they happen.
fn start_metrics_snapshots(args: &Args, service: &std::sync::Arc<naas::BatchEvalService>) {
    if !init_metrics_file(args) {
        return;
    }
    let service = std::sync::Arc::clone(service);
    std::thread::spawn(move || loop {
        std::thread::sleep(std::time::Duration::from_secs(30));
        write_metrics_snapshot(service.engine());
    });
}

/// `serve`: the batch-evaluation service. One warm engine answers JSONL
/// requests on stdin/stdout; `--port` additionally accepts TCP
/// connections (on `--bind`, default loopback). A `shutdown` command
/// (from any stream) persists the cache and exits cleanly; without
/// `--port`, stdin EOF does the same.
fn cmd_serve(args: &Args) {
    let service = std::sync::Arc::new(build_service(args, "serve"));
    start_metrics_snapshots(args, &service);
    let server = naas::ServiceServer::start(std::sync::Arc::clone(&service));

    let port: Option<u16> = args.get_num("port");
    match port {
        None => {
            let stdin = std::io::BufReader::new(std::io::stdin());
            let stdout = std::io::stdout().lock();
            server
                .serve_stream(stdin, stdout)
                .unwrap_or_else(|e| fail(format!("stdio stream failed: {e}")));
            server
                .stop()
                .unwrap_or_else(|e| fail(format!("cannot persist cache: {e}")));
        }
        Some(port) => {
            let listener = bind_listener(args, port);
            let server = std::sync::Arc::new(server);
            let tcp = {
                // One thread per connection inside `serve_listener`;
                // requests from every connection coalesce in the shared
                // batcher.
                let server = std::sync::Arc::clone(&server);
                std::thread::spawn(move || match server.serve_listener(listener) {
                    Ok(_) => finish_and_exit(&server),
                    Err(e) => fail(format!("TCP listener failed: {e}")),
                })
            };
            let stdin = std::io::BufReader::new(std::io::stdin());
            let stdout = std::io::stdout().lock();
            if let Ok(true) = server.serve_stream(stdin, stdout) {
                finish_and_exit(&server);
            }
            // stdin EOF without shutdown: keep serving TCP. The listener
            // thread never returns normally (shutdown exits the process,
            // a listener failure fails it), so this join parks forever.
            let _ = tcp.join();
            unreachable!("TCP listener thread exits the process");
        }
    }
}

/// Binds the TCP listener for `serve --port` / `worker`.
fn bind_listener(args: &Args, port: u16) -> std::net::TcpListener {
    let bind = bind_addr(args);
    let listener = std::net::TcpListener::bind((bind, port))
        .unwrap_or_else(|e| fail(format!("cannot bind {bind}:{port}: {e}")));
    telemetry::events().emit(
        Level::Info,
        "listening",
        &format!("listening on {bind}:{port}"),
        &[
            ("bind", Value::Str(bind.to_string())),
            ("port", Value::U64(u64::from(port))),
        ],
    );
    listener
}

/// `worker`: the TCP-only face of `serve`, for standing behind a
/// distributed `run --workers` coordinator. Accepts connections (on
/// `--bind`, default loopback — use `--bind 0.0.0.0` for a
/// multi-machine fleet) until a `shutdown` command arrives on any of
/// them, then drains every queued request, persists the cache and
/// exits. Stdin is untouched, so workers background cleanly
/// (`naas-search worker --port 4801 &`).
fn cmd_worker(args: &Args) {
    let port: u16 = args
        .get_num("port")
        .unwrap_or_else(|| fail("worker mode requires --port"));
    let service = std::sync::Arc::new(build_service(args, "worker"));
    start_metrics_snapshots(args, &service);
    let listener = bind_listener(args, port);
    let server = std::sync::Arc::new(naas::ServiceServer::start(service));
    match server.serve_listener(listener) {
        Ok(_) => finish_and_exit(&server),
        Err(e) => fail(format!("worker listener failed: {e}")),
    }
}

/// `gateway`: the multi-tenant job multiplexer — everything `serve`
/// answers plus the `job_*` command family, running concurrent search
/// jobs interleaved on the shared engine (and, with `--workers`, a
/// shared fleet). Same stdio/TCP plumbing as `serve`.
fn cmd_gateway(args: &Args) {
    let inner = std::sync::Arc::new(build_service(args, "gateway"));
    let fleet = match args.get("workers") {
        None | Some("local") => None,
        Some(list) => {
            let addrs: Vec<String> = list
                .split(',')
                .map(str::trim)
                .filter(|a| !a.is_empty())
                .map(String::from)
                .collect();
            if addrs.is_empty() {
                fail("--workers expects a comma-separated host:port list (or `local`)");
            }
            let coordinator = naas::DistributedCoordinator::connect_fleet(&addrs)
                .unwrap_or_else(|e| fail(format!("cannot connect worker fleet: {e}")));
            // Gateway jobs pick their own populations per preset, so
            // the microshard bound cannot be checked here — the
            // coordinator clamps shard counts per generation anyway.
            // The steal-deadline check still applies.
            check_scheduler_flags(args, usize::MAX);
            let shared = naas::SharedCoordinator::new(coordinator);
            shared.configure(
                args.get_num("microshards"),
                args.get_num::<u64>("steal-deadline")
                    .map(std::time::Duration::from_millis),
            );
            if let Some(on) = overlap_flag(args) {
                shared.set_overlap(on);
            }
            println!(
                "gateway sharding over {} worker(s): {}",
                addrs.len(),
                addrs.join(", ")
            );
            Some(shared)
        }
    };
    let gateway = std::sync::Arc::new(naas::GatewayService::start(
        std::sync::Arc::clone(&inner),
        fleet,
        naas::GatewayConfig {
            max_jobs: args.get_num("max-jobs").unwrap_or(0),
            tenant_quota: args.get_num("tenant-quota").unwrap_or(0),
            executors: args.get_num("executors").unwrap_or(0),
        },
    ));
    if init_metrics_file(args) {
        let inner = std::sync::Arc::clone(&inner);
        std::thread::spawn(move || loop {
            std::thread::sleep(std::time::Duration::from_secs(30));
            write_metrics_snapshot(inner.engine());
        });
    }
    let server = naas::ServiceServer::start(std::sync::Arc::clone(&gateway));

    let port: Option<u16> = args.get_num("port");
    match port {
        None => {
            let stdin = std::io::BufReader::new(std::io::stdin());
            let stdout = std::io::stdout().lock();
            server
                .serve_stream(stdin, stdout)
                .unwrap_or_else(|e| fail(format!("stdio stream failed: {e}")));
            server
                .stop()
                .unwrap_or_else(|e| fail(format!("cannot persist cache: {e}")));
        }
        Some(port) => {
            let listener = bind_listener(args, port);
            let server = std::sync::Arc::new(server);
            let tcp = {
                let server = std::sync::Arc::clone(&server);
                std::thread::spawn(move || match server.serve_listener(listener) {
                    Ok(_) => finish_and_exit(&server),
                    Err(e) => fail(format!("TCP listener failed: {e}")),
                })
            };
            let stdin = std::io::BufReader::new(std::io::stdin());
            let stdout = std::io::stdout().lock();
            if let Ok(true) = server.serve_stream(stdin, stdout) {
                finish_and_exit(&server);
            }
            let _ = tcp.join();
            unreachable!("TCP listener thread exits the process");
        }
    }
}

/// The shutdown path shared by `serve --port`, `worker` and `gateway`:
/// drain the batcher (every queued request across all connections gets
/// its response computed and handed to its stream), persist the cache,
/// then exit 0. The stream that requested shutdown is fully flushed
/// before this runs; sibling connections get a grace period to flush
/// their final responses — best-effort, since a sibling stalled on TCP
/// backpressure cannot be waited out forever.
fn finish_and_exit<S: naas::WireService>(server: &naas::ServiceServer<S>) -> ! {
    server.drain();
    std::thread::sleep(std::time::Duration::from_millis(200));
    server
        .service()
        .persist_cache()
        .unwrap_or_else(|e| fail(format!("cannot persist cache: {e}")));
    exit(0);
}

/// `client`: bridges stdin/stdout to a serving process over TCP. With
/// the `metrics` subcommand (`naas-search client <host:port> metrics`),
/// sends one `metrics` request instead and prints the snapshot payload
/// — the one-shot health probe for scripts and dashboards.
fn cmd_client(args: &Args) {
    use std::io::{BufRead, Write};
    let addr = args
        .positional
        .get(1)
        .map(String::as_str)
        .unwrap_or_else(|| usage());
    match args.positional.get(2).map(String::as_str) {
        Some("metrics") => client_metrics(addr),
        Some(verb @ ("submit" | "status" | "events" | "cancel" | "result" | "wait")) => {
            client_job(addr, verb, args)
        }
        Some(other) => fail(format!(
            "unknown client subcommand `{other}` \
             (try `metrics`, `submit`, `status`, `events`, `cancel`, `result`, `wait`)"
        )),
        None => {}
    }
    let stream = std::net::TcpStream::connect(addr)
        .unwrap_or_else(|e| fail(format!("cannot connect to {addr}: {e}")));
    let mut write_half = stream
        .try_clone()
        .unwrap_or_else(|e| fail(format!("cannot clone socket: {e}")));
    let forward = std::thread::spawn(move || -> std::io::Result<()> {
        let stdin = std::io::stdin().lock();
        for line in stdin.lines() {
            writeln!(write_half, "{}", line?)?;
            write_half.flush()?;
        }
        // Signal request EOF so the server finishes the stream; responses
        // still drain on the read half.
        write_half.shutdown(std::net::Shutdown::Write)?;
        Ok(())
    });
    let reader = std::io::BufReader::new(stream);
    for line in reader.lines() {
        let line = line.unwrap_or_else(|e| fail(format!("connection lost: {e}")));
        println!("{line}");
    }
    // If the server closed the connection while our stdin is still open
    // (another client sent `shutdown`), the forwarder is parked in a
    // blocking stdin read — joining it would hang until the user types.
    // All responses are printed; exit cleanly instead.
    if !forward.is_finished() {
        exit(0);
    }
    match forward.join() {
        Ok(result) => result.unwrap_or_else(|e| fail(format!("cannot send request: {e}"))),
        Err(_) => fail("stdin forwarder panicked"),
    }
}

/// The gateway job verbs: each sends one (or, for `events --follow` /
/// `wait`, a polling sequence of) `job_*` requests to a running
/// `naas-search gateway` and prints the result payload as JSON, ready
/// for `jq`. `events` prints one JSON line per progress event — the
/// JSONL stream of the job's generations.
fn client_job(addr: &str, verb: &str, args: &Args) -> ! {
    let mut worker = naas_engine::RemoteWorker::new(addr);
    let mut call = |cmd: &str, params: Vec<(String, Value)>| {
        worker
            .call(cmd, params)
            .unwrap_or_else(|e| fail(format!("{cmd} against {addr} failed: {e}")))
    };
    let job_param = || -> (String, Value) {
        let job_id: u64 = args
            .get_num("job")
            .unwrap_or_else(|| fail(format!("client {verb} requires --job <id>")));
        ("job_id".to_string(), Value::U64(job_id))
    };
    let print_value = |value: &Value| {
        let line = serde_json::to_string(value)
            .unwrap_or_else(|e| fail(format!("cannot render reply: {e}")));
        println!("{line}");
    };
    match verb {
        "submit" => {
            let scenario = args
                .get("scenario")
                .unwrap_or_else(|| fail("client submit requires --scenario <name>"));
            let mut params = vec![("scenario".to_string(), Value::Str(scenario.to_string()))];
            for key in ["kind", "tenant", "preset"] {
                if let Some(value) = args.get(key) {
                    params.push((key.to_string(), Value::Str(value.to_string())));
                }
            }
            for key in ["weight", "seed"] {
                if let Some(value) = args.get_num::<u64>(key) {
                    params.push((key.to_string(), Value::U64(value)));
                }
            }
            print_value(&call("job_submit", params));
        }
        "status" => print_value(&call("job_status", vec![job_param()])),
        "cancel" => print_value(&call("job_cancel", vec![job_param()])),
        "result" => print_value(&call("job_result", vec![job_param()])),
        "events" => {
            let follow = args.get("follow") == Some("true");
            let mut since = args.get_num::<u64>("since").unwrap_or(0);
            loop {
                let reply = call(
                    "job_events",
                    vec![job_param(), ("since".to_string(), Value::U64(since))],
                );
                if let Some(events) = reply.get("events").and_then(Value::as_array) {
                    for event in events {
                        print_value(event);
                    }
                }
                since = reply.get("next").and_then(Value::as_u64).unwrap_or(since);
                let done = reply.get("done") == Some(&Value::Bool(true));
                if !follow || done {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(200));
            }
        }
        "wait" => loop {
            let status = call("job_status", vec![job_param()]);
            match status.get("status").and_then(Value::as_str) {
                Some("done") => {
                    print_value(&call("job_result", vec![job_param()]));
                    break;
                }
                Some("cancelled") => fail("job was cancelled"),
                Some("failed") => {
                    let error = status
                        .get("error")
                        .and_then(Value::as_str)
                        .unwrap_or("unknown failure");
                    fail(format!("job failed: {error}"));
                }
                _ => std::thread::sleep(std::time::Duration::from_millis(200)),
            }
        },
        other => fail(format!("unknown job verb `{other}`")),
    }
    exit(0);
}

/// One-shot `metrics` probe: fetches a registry snapshot from a live
/// serving process and prints the result payload as a single JSON
/// object (ready for `jq`). Exits nonzero if the server refuses.
fn client_metrics(addr: &str) -> ! {
    let mut worker = naas_engine::RemoteWorker::new(addr);
    let result = worker
        .call("metrics", Vec::new())
        .unwrap_or_else(|e| fail(format!("metrics probe of {addr} failed: {e}")));
    let line = serde_json::to_string(&result)
        .unwrap_or_else(|e| fail(format!("cannot render metrics snapshot: {e}")));
    println!("{line}");
    exit(0);
}

fn report(state: AccelSearchState, elapsed: std::time::Duration) {
    let stats = state.cache_stats;
    if let Some(archive) = state.archive() {
        println!("\n{}", archive.render());
    }
    // A search can legitimately end with no valid design (envelope too
    // small for the suite): exit with a diagnostic and nonzero status,
    // not a panic.
    let result = state.into_result().unwrap_or_else(|e| fail(e));
    println!("\nbest design:\n{}", result.best.accelerator.design_card());
    println!(
        "reward (geomean EDP) {:.3e} after {} evaluations [{:.1}s]",
        result.best.reward,
        result.evaluations,
        elapsed.as_secs_f64()
    );
    println!(
        "cache: {} entries, {} hits / {} misses ({:.0}% hit rate)",
        stats.entries,
        stats.hits,
        stats.misses,
        stats.hit_rate() * 100.0
    );
}
