//! # naas — Neural Accelerator Architecture Search
//!
//! A from-scratch reproduction of *NAAS: Neural Accelerator Architecture
//! Search* (Lin, Yang, Han — DAC 2021): data-driven co-search of the
//! accelerator architecture, the compiler mapping, and (optionally) the
//! neural architecture, in one nested optimization loop (paper Fig. 1).
//!
//! * the **inner loop** ([`mapping_search`]) finds, per layer, the loop
//!   order and tiling minimizing EDP on a given design;
//! * the **outer loop** ([`accel_search`]) evolves accelerator designs —
//!   sizing *and* connectivity — scoring each by its mapping-searched EDP
//!   over a benchmark suite (geomean reward);
//! * the **joint loop** ([`joint`]) adds the Once-For-All NAS level from
//!   §II-C: per accelerator candidate, an evolutionary subnet search under
//!   an accuracy floor supplies the workload.
//!
//! [`baselines`] re-implements the comparison points (sizing-only search,
//! NASAIC, NHAS) and [`cost_accounting`] reproduces the Table-IV search
//! cost model.
//!
//! Every loop executes through the [`engine`] module's
//! [`CoSearchEngine`] (the `naas-engine` subsystem): work-stealing
//! parallel candidate evaluation, a shared content-addressed cache of
//! per-layer mapping results, and serializable search state with
//! checkpoint/resume ([`AccelSearchState`]). Results are bit-identical
//! at any thread count, cold or warm cache.
//!
//! ```no_run
//! use naas::prelude::*;
//!
//! let model = CostModel::new();
//! let envelope = ResourceConstraint::from_design(&baselines::eyeriss());
//! let nets = [models::mobilenet_v2(224)];
//! let cfg = AccelSearchConfig::quick(42);
//! let result = search_accelerator(&model, &nets, &envelope, &cfg);
//! println!("best design:\n{}", result.best.accelerator.design_card());
//! ```

pub mod accel_search;
pub mod baselines;
pub mod cost_accounting;
pub mod distributed;
pub mod engine;
pub mod gateway;
pub mod joint;
pub mod layer_cache;
pub mod mapping_search;
pub mod pareto;
pub mod pipeline;
pub mod reward;
pub mod service;

pub use accel_search::{
    accel_commit_generation, accel_sample_generation, accel_search_init, accel_search_step,
    accel_search_step_with, resume_accel_search, search_accelerator, search_accelerator_seeded,
    search_accelerator_with, AccelCandidate, AccelSearchConfig, AccelSearchResult,
    AccelSearchState, CandidateEval, IterationStats, NoValidDesign, SampledGeneration,
    SearchStrategy,
};
pub use distributed::{
    validate_scheduler_flags, DistributedCoordinator, OverlapStats, SchedulerStats, ShardPlan,
    SharedCoordinator,
};
pub use engine::CoSearchEngine;
pub use gateway::{GatewayConfig, GatewayService, JobStatus};
pub use joint::{
    evaluate_joint_candidate, joint_commit_generation, joint_nas_seed, joint_sample_generation,
    joint_search_init, joint_search_step, joint_search_step_with, pareto_sweep,
    resume_joint_search, search_joint, search_joint_with, JointCandidateEval, JointConfig,
    JointResult, JointSampledGeneration, JointSearchState, ParetoEntry,
};
pub use mapping_search::{
    network_mapping_search_cached, search_layer_mapping, search_layer_mapping_with,
    MappingSearchConfig, MappingSearchResult,
};
pub use pareto::{ArchiveEntry, ParetoArchive};
pub use pipeline::{with_thread_pipeline, EvalPipeline};
pub use reward::{geomean, ObjectivePolicy, RewardKind};
pub use service::{BatchEvalService, ServiceConfig, ServiceError, ServiceServer, WireService};

/// Convenience re-exports for downstream code and examples.
pub mod prelude {
    pub use crate::accel_search::{
        search_accelerator, search_accelerator_seeded, search_accelerator_with, AccelSearchConfig,
        AccelSearchResult, SearchStrategy,
    };
    pub use crate::engine::CoSearchEngine;
    pub use crate::joint::{search_joint, JointConfig, JointResult};
    pub use crate::mapping_search::{
        network_mapping_search, network_mapping_search_cached, search_layer_mapping,
        MappingSearchConfig,
    };
    pub use naas_accel::baselines;
    pub use naas_accel::{Accelerator, ArchitecturalSizing, Connectivity, ResourceConstraint};
    pub use naas_cost::{CostModel, LayerCost, NetworkCost};
    pub use naas_ir::{models, ConvSpec, Dim, Network};
    pub use naas_mapping::Mapping;
    pub use naas_opt::EncodingScheme;
}
