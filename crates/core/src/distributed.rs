//! Distributed population sharding: the outer accelerator **and joint**
//! searches fanned over remote worker processes, with a fleet lifecycle
//! built for week-long runs.
//!
//! The paper's evolutionary co-search evaluates a sampled population per
//! generation, and every candidate's evaluation is a pure function of
//! its content (content-derived inner seeds, content-addressed mapping
//! cache). That purity is what makes distribution *trivial to get right*:
//! a [`DistributedCoordinator`] runs the ordinary sampling/optimizer
//! logic of [`accel_search_step_with`] (or [`joint_search_step_with`] for
//! the joint loop) and only relocates the candidate evaluations — each
//! generation's population is split into contiguous **micro-shards** in
//! candidate order, fanned out as `evaluate_shard` requests to
//! `naas-search worker` processes speaking the JSONL protocol of
//! `docs/PROTOCOL.md`, and the replies are merged back in candidate
//! order. The search trajectory — best design, history, evaluation
//! counts — is **bit-identical** to the single-process run at any worker
//! count, enforced by `tests/tests/distributed.rs`.
//!
//! ## The micro-shard scheduler
//!
//! A generation used to be a hard barrier: one contiguous shard per
//! worker, one blocking RPC each, and the whole fleet idled until the
//! slowest worker returned — a single slow or cold machine set the pace
//! of the entire search. The scheduler replaces that with dynamic
//! dispatch (see `--microshards` / `--steal-deadline`):
//!
//! * each worker gets a **queue** of ~[`DEFAULT_MICROSHARDS`] small
//!   contiguous ranges, sized by a per-worker throughput EWMA measured
//!   from its own completed work (unknown workers get the fleet mean);
//! * every worker's RPC pipeline is kept full with **send-ahead**
//!   requests ([`naas_engine::remote::RemoteWorker::send`] /
//!   [`naas_engine::remote::RemoteWorker::recv_next`]) — the service
//!   answers per-stream in request order, so no wire change;
//! * an idle worker **steals** the un-issued tail of a straggler's
//!   queue (re-splitting oversized tails), and a shard in flight past
//!   the steal deadline is **speculatively re-issued** — first answer
//!   wins, the loser's late reply is dropped by shard id and counted as
//!   a duplicate, never treated as a protocol error;
//! * known-slow workers are gated out of stealing, so the fast part of
//!   the fleet drains the queue while the straggler finishes what it
//!   already holds.
//!
//! Micro-shards are still contiguous candidate ranges merged in
//! candidate order, so bit-identity is preserved *by construction* no
//! matter which worker answers which shard in which order. Setting
//! `--microshards 0` restores the static one-shard-per-worker plan
//! (the baseline the `distributed_throughput` bench compares against).
//!
//! ## Version handshake
//!
//! Every worker connection (first dial *and* every rejoin re-dial) opens
//! with the `hello` handshake
//! ([`naas_engine::remote::RemoteWorker::enable_handshake`]): protocol
//! versions must match exactly, and the worker advertises capability
//! strings the coordinator gates optional behaviour on (`"joint"` for
//! joint-search shards). A mismatched build — including one swapped in
//! behind a restarted worker — is refused cleanly at dial time instead
//! of corrupting serialized state mid-run.
//!
//! ## Failure model and auto-rejoin
//!
//! A worker that dies mid-generation (connection drop, protocol
//! violation) is marked dead and its shard is re-issued to a surviving
//! worker; when none survive, the coordinator evaluates the shard on
//! its own engine. An orderly error *response* is different: the worker
//! is healthy, the request failed (e.g. a contained handler panic), so
//! the shard goes to the local fallback — where a deterministic failure
//! surfaces exactly as a single-process run would surface it — and the
//! fleet stays alive.
//!
//! Dead workers do **not** stay dead: at each generation boundary the
//! coordinator re-dials every dead worker whose retry is due — the
//! first re-dial one generation after death, then with exponential
//! backoff capped at [`REJOIN_BACKOFF_CAP`] generations. A worker that
//! answers (and passes the handshake again) is re-admitted into the
//! shard plan for that generation, and its first shard request carries
//! a **full cache snapshot** instead of an incremental delta — a
//! restarted worker lost its memo state, and replaying the backlog
//! makes it warm again immediately. A worker that fails the handshake
//! on rejoin (it was restarted with a different build) is banned for
//! the rest of the run. The shard *plan* (the worker address list) is
//! recorded in checkpoints, so a resumed run re-dials the full fleet.
//!
//! ## Cache gossip
//!
//! Shard replies piggyback a `cache_delta`: the mapping results the
//! worker computed since its last report. The coordinator absorbs every
//! delta into its own engine cache (so local fallback and `--cache-file`
//! persistence see fleet-wide results) and relays it to the other
//! workers on their next shard request — a `(design, layer-shape)` pair
//! solved anywhere is solved everywhere, without workers knowing about
//! each other. Relaying is sound for the same reason sharing the
//! in-process cache is: entries are pure functions of their keys.
//!
//! For week-long fleets the relay bookkeeping is bounded: the delta log
//! is compacted at every generation boundary (the prefix every live
//! worker has already received is dropped), and the deduplication set is
//! cleared past [`SEEN_CAP`] keys (duplicated gossip is absorbed
//! idempotently, so clearing costs bytes on the wire, never
//! correctness). Bound the caches themselves with `--cache-cap`
//! ([`naas_engine::MemoCache::set_entry_cap`]).
//!
//! # Examples
//!
//! Wiring a coordinator is two calls — everything else is the ordinary
//! step loop (here against an empty fleet list, which is refused):
//!
//! ```should_panic
//! use naas::distributed::DistributedCoordinator;
//! let scenario = naas_engine::scenario::registry()[0].clone();
//! // Panics: a fleet needs at least one worker address.
//! let _ = DistributedCoordinator::connect(&[], &scenario);
//! ```

use crate::accel_search::{
    accel_commit_generation, accel_sample_generation, evaluate_candidate, AccelSearchState,
    CandidateEval, SampledGeneration,
};
use crate::engine::CoSearchEngine;
use crate::joint::{
    evaluate_joint_candidate, joint_commit_generation, joint_nas_seed, joint_sample_generation,
    joint_search_step_with, JointCandidateEval, JointSearchState,
};
use crate::mapping_search::{design_fingerprint, network_mapping_search_memo, MappingSearchResult};
use crate::pareto::ParetoArchive;
use naas_accel::{area::AreaModel, Accelerator};
use naas_cost::{CostModel, NetworkCost, ObjectiveVector};
use naas_engine::remote::{RemoteError, RemoteWorker};
use naas_engine::telemetry::{self, Level};
use naas_engine::{CacheSnapshot, LayerKey, Scenario};
use naas_ir::Network;
use naas_nas::{AccuracyModel, NasConfig, Subnet, SubnetSearchDriver};
use serde::{Deserialize, Serialize, Value};
use std::collections::{HashMap, HashSet, VecDeque};
use std::ops::Range;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// The delta-log source marker for entries the coordinator computed
/// itself (local fallback); never matches a worker index, so such
/// entries are relayed to every worker.
const SELF_SOURCE: usize = usize::MAX;

/// Upper bound, in generations, on the re-dial backoff of a dead worker:
/// the first re-dial happens one generation after death, then the gap
/// doubles per failed attempt until it saturates here. A probe against a
/// still-down worker is one refused TCP connect — or, when the machine
/// drops SYNs silently, at most [`CONNECT_TIMEOUT`] — cheap enough to
/// keep probing a week-long run indefinitely.
pub const REJOIN_BACKOFF_CAP: usize = 8;

/// Upper bound on the gossip deduplication set; past it the set is
/// cleared (workers absorb re-relayed entries idempotently, so the cost
/// is wire bytes, not correctness). Bounds coordinator memory on runs
/// whose distinct-key universe never stops growing.
pub const SEEN_CAP: usize = 1 << 20;

/// The capability string a worker must advertise before joint-search
/// shards are routed to it.
const JOINT_CAPABILITY: &str = "joint";

/// The capability string a worker must advertise before sub-candidate
/// joint work units (`joint_unit` wire mode) are routed to it. Additive:
/// a fleet without it falls back to whole-candidate joint shards.
const JOINT_UNIT_CAPABILITY: &str = "joint_unit";

/// Default capacity of the per-job speculation map: how many jobs'
/// speculative generations an overlapped coordinator keeps banked at
/// once. Inserting past it evicts the oldest entry, which counts as a
/// rollback.
pub const DEFAULT_SPEC_CAPACITY: usize = 8;

/// Bound on every worker dial (first connect, transparent reconnect,
/// rejoin probe). Rejoin probes run on background threads, so this
/// bounds how long a probe thread lives against a machine that drops
/// SYNs silently — never an OS-default connect stall of minutes, and
/// never on the generation critical path.
pub const CONNECT_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(5);

/// Default micro-shards per live worker. Enough granularity for the
/// fleet to rebalance around a 4× straggler, few enough that the
/// per-request overhead (JSON framing, batcher wakeups) stays noise.
pub const DEFAULT_MICROSHARDS: usize = 6;

/// Default age past which an in-flight shard on a slower worker is
/// speculatively re-issued to an idle one.
pub const DEFAULT_STEAL_DEADLINE: Duration = Duration::from_millis(500);

/// The scheduler's receive/poll tick: how long an idle worker thread
/// waits before re-checking for stealable or speculatable work.
const SCHED_TICK: Duration = Duration::from_millis(5);

/// How long a generation boundary waits for in-flight rejoin probes to
/// report, so a freshly-restarted worker (connect succeeds in
/// microseconds) is admitted into the very generation that probed it
/// instead of the next one. Probes that outlive the grace keep running
/// in the background and are admitted at a later boundary.
const REJOIN_GRACE: Duration = Duration::from_millis(150);

/// The serializable record of how a run is sharded — written into
/// checkpoints so `naas-search resume` can re-dial the same fleet
/// without re-stating `--workers`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardPlan {
    /// Worker addresses (`host:port`), in shard order.
    pub workers: Vec<String>,
    /// Micro-shards per live worker (`0` = static one-shard-per-worker
    /// dispatch). `None` in checkpoints from before the scheduler
    /// existed — resumed as the default.
    pub microshards: Option<usize>,
    /// Speculative re-issue deadline, milliseconds. `None` in old
    /// checkpoints — resumed as the default.
    pub steal_deadline_ms: Option<u64>,
    /// Whether the run overlapped generations (`--overlap on`). `None`
    /// in checkpoints from before the reactor existed — resumed as off.
    pub overlap: Option<bool>,
}

/// Validates the scheduler tuning flags at configuration time — the CLI
/// calls this before any worker is dialed, so a degenerate combination
/// is a crisp diagnostic instead of a degenerate schedule.
///
/// # Errors
///
/// * `--steal-deadline 0` would mark every in-flight shard overdue the
///   moment it is issued, turning the whole run into duplicate work.
/// * `--microshards` above the population cannot be honored: shards are
///   contiguous candidate ranges, so there can never be more non-empty
///   shards than candidates.
pub fn validate_scheduler_flags(
    microshards: usize,
    steal_deadline_ms: u64,
    population: usize,
) -> Result<(), String> {
    if steal_deadline_ms == 0 {
        return Err(
            "--steal-deadline must be at least 1 ms: a zero deadline marks every in-flight \
             shard overdue immediately, so the fleet would speculatively duplicate all work"
                .to_string(),
        );
    }
    if microshards > population {
        return Err(format!(
            "--microshards {microshards} exceeds the population size {population}: micro-shards \
             are contiguous candidate ranges, so at most one per candidate can exist"
        ));
    }
    Ok(())
}

/// Counters of the overlap reactor (speculative ask/rollback), exposed
/// per coordinator for tests and benches. The core invariant — enforced
/// by `tests/tests/reactor.rs` — is `asks == hits + rollbacks` once a
/// run completes: every speculative generation is either committed
/// (its sample matched the real one) or rolled back, never both and
/// never silently dropped.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OverlapStats {
    /// Speculative generations sampled from a forked optimizer state
    /// and dispatched to idle workers.
    pub asks: u64,
    /// Speculations whose sample matched the real next generation: the
    /// fork replayed the exact post-tell stream, so its evaluations
    /// were banked.
    pub hits: u64,
    /// Speculations discarded: the merged `tell` changed the sampling
    /// trajectory (mismatch), or the speculation was evicted before its
    /// generation arrived.
    pub rollbacks: u64,
    /// Candidate evaluations reused from banked speculative work.
    pub banked: u64,
    /// Wall milliseconds of barrier time shaved: time between a
    /// speculation's install and the end of its generation's scheduler.
    pub overlap_ms: u64,
    /// Sub-candidate joint work units merged (`joint_unit` wire mode).
    pub joint_units: u64,
}

/// One banked speculative generation: the forked sample and whatever
/// results the idle fleet managed to evaluate before the real
/// generation's barrier closed (`None` slots were never evaluated).
/// Keyed per job so gateway tenants never thrash each other's forks.
struct AccelSpeculation {
    sampled: SampledGeneration,
    results: Vec<Option<CandidateOutcome>>,
}

/// Per-generation (and cumulative) counters of the micro-shard
/// scheduler, exposed for tests and benches that need exact per-run
/// numbers without racing on the process-global telemetry registry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedulerStats {
    /// Micro-shard requests issued (every copy, including speculation).
    pub microshards: u64,
    /// Micro-shards stolen from another worker's un-issued queue tail.
    pub steals: u64,
    /// Stolen tails re-split down to the stealer's fair chunk.
    pub resplits: u64,
    /// In-flight shards speculatively re-issued past the deadline.
    pub speculations: u64,
    /// Late losing replies of resolved shards, dropped by shard id.
    pub duplicate_replies: u64,
    /// Shard ranges re-routed after a worker failure or rejection.
    pub reissues: u64,
}

impl SchedulerStats {
    fn accumulate(&mut self, other: SchedulerStats) {
        self.microshards += other.microshards;
        self.steals += other.steals;
        self.resplits += other.resplits;
        self.speculations += other.speculations;
        self.duplicate_replies += other.duplicate_replies;
        self.reissues += other.reissues;
    }
}

/// One candidate's evaluation outcome, as moved over the wire: the full
/// [`CandidateEval`] (per-network costs, objective vector, scalarized
/// reward), or `None` for an infeasible design.
pub type CandidateOutcome = Option<CandidateEval>;

/// The incremental cache image piggybacked on shard replies.
type Delta = CacheSnapshot<Option<MappingSearchResult>>;

/// The parameter list of one `evaluate_shard` request.
type ShardParams = Vec<(String, Value)>;

/// Builds the mode-specific request parameters for one candidate range
/// (the coordinator appends the cache delta itself). `Sync` because the
/// scheduler's worker threads build their own requests.
type BuildShard<'a> = dyn Fn(Range<usize>) -> ShardParams + Sync + 'a;

/// Decodes one shard reply into per-candidate results plus the
/// piggybacked cache delta (`Sync`: decoded on the worker threads).
type ParseShard<T> = dyn Fn(&Value, usize) -> Result<(Vec<T>, Delta), String> + Sync;

/// Evaluates one candidate range on the coordinator's own engine.
type LocalFallback<'a, T> = dyn FnMut(Range<usize>) -> Vec<T> + 'a;

/// One speculative generation's worth of extra work, produced by a
/// [`SpecHook`] at the pool-drain event: `count` slots whose shard
/// requests `build` constructs (ranges in the speculative 0-based
/// domain — the scheduler offsets them past the primary candidates).
/// The builder owns everything it needs (`'static`): the speculative
/// generation is a self-contained bet, not a view into the primary one.
struct SpecJob {
    count: usize,
    build: Box<dyn Fn(Range<usize>) -> ShardParams + Send + Sync>,
}

/// The speculative-ask callback: given a snapshot of the primary
/// results merged so far, fork the search state, predict the commit and
/// sample the next generation. `None` declines to speculate (last
/// generation, or the fork found the search finished).
type SpecHook<'a, T> = dyn Fn(&[Option<T>]) -> Option<SpecJob> + Sync + 'a;

/// Shared speculation state of one scheduler run. The hook fires at
/// most once — the first worker thread to find no primary work left
/// claims it (`claimed`), installs the returned job, and extends the
/// merge domain; `installed` flips only after the spec ranges are
/// visible, so readers never observe a half-installed job.
struct SpecShared<'h, T> {
    hook: &'h SpecHook<'h, T>,
    job: OnceLock<SpecJob>,
    claimed: AtomicBool,
    installed: AtomicBool,
    /// When the job was installed — the overlap window's start.
    installed_at: Mutex<Option<Instant>>,
}

/// What the scheduler hands back about the speculative generation: one
/// result per speculative slot (`None` = the fleet never got to it —
/// speculation is opportunistic and is never completed locally), plus
/// how long speculative work overlapped the primary generation.
struct SpecOutcome<T> {
    results: Vec<Option<T>>,
    overlap_ms: u64,
}

struct WorkerSlot {
    remote: RemoteWorker,
    alive: bool,
    /// Prefix of `delta_log` already shipped to this worker.
    synced: usize,
    /// Set on rejoin: the next shard request carries a full cache
    /// snapshot (the restarted worker lost its memo state) instead of
    /// an incremental delta.
    full_resync: bool,
    /// Failed re-dials since this worker died (drives the backoff).
    rejoin_attempts: u32,
    /// Generation index at which the next re-dial is due.
    next_retry: usize,
    /// A rejoin handshake found an incompatible build: never re-dial.
    banned: bool,
}

impl WorkerSlot {
    /// Marks the slot dead and schedules its first re-dial for the next
    /// generation boundary (unless `ban` — version mismatch — in which
    /// case no re-dial will ever be attempted).
    fn mark_dead(&mut self, generation: usize, ban: bool) {
        self.alive = false;
        self.banned = self.banned || ban;
        self.rejoin_attempts = 0;
        self.next_retry = generation + 1;
    }
}

/// Coordinates a search whose population evaluations are sharded over
/// remote `naas-search worker` processes — [`DistributedCoordinator::step`]
/// for the accelerator search, [`DistributedCoordinator::step_joint`]
/// for the joint loop. See the module docs for the protocol, handshake,
/// rejoin and cache-gossip semantics.
pub struct DistributedCoordinator {
    workers: Vec<WorkerSlot>,
    scenario_value: Value,
    /// The generation index of the step in progress (drives rejoin
    /// scheduling and backoff arithmetic).
    generation: usize,
    /// Every cache key learned so far (worker deltas + local fallback),
    /// with the worker index it came from. Values are *not* duplicated
    /// here — they live in the coordinator's engine cache, and relay
    /// snapshots fetch them by key when a shard request is built.
    /// Compacted every generation down to the suffix some live worker
    /// still needs.
    delta_log: Vec<(usize, u64, LayerKey)>,
    seen: HashSet<(u64, LayerKey)>,
    /// Busiest worker of the generation in progress (address, busy
    /// micros) — telemetry only, surfaced in the progress event.
    last_slowest: Option<(String, u64)>,
    /// Micro-shards per live worker; `0` = static dispatch.
    microshards: usize,
    /// Age past which an in-flight shard is speculatively re-issued.
    steal_deadline: Duration,
    /// Per-worker throughput EWMA, microseconds per candidate, fed by
    /// each generation's busy-time measurements. `None` until a worker
    /// first completes work.
    rates: Vec<Option<f64>>,
    /// Scheduler counters of the most recent generation.
    stats_last: SchedulerStats,
    /// Scheduler counters accumulated over the coordinator's lifetime.
    stats_total: SchedulerStats,
    /// Background rejoin probes report here: worker index plus either a
    /// connected, handshaken replacement handle or the dial error.
    probe_tx: mpsc::Sender<(usize, Result<RemoteWorker, RemoteError>)>,
    probe_rx: mpsc::Receiver<(usize, Result<RemoteWorker, RemoteError>)>,
    /// Workers with a probe currently in flight (never double-probe).
    probing: Vec<bool>,
    /// Archive counters already published to the process-global
    /// telemetry registry (inserts, rejections): telemetry counters are
    /// process-lifetime, the archive's are state-lifetime, so only the
    /// growth since the last publication is added.
    pareto_published: (u64, u64),
    /// Barrier-free generation overlap (`--overlap on`): speculative
    /// ask/rollback for accelerator steps, sub-candidate `joint_unit`
    /// sharding for joint steps.
    overlap: bool,
    /// Banked speculative generations, keyed per job (the CLI uses key
    /// 0; the gateway keys by job id). Bounded by `spec_capacity`.
    accel_spec: HashMap<u64, AccelSpeculation>,
    /// Capacity of `accel_spec`; evictions count as rollbacks.
    spec_capacity: usize,
    /// Overlap reactor counters over this coordinator's lifetime.
    overlap_stats: OverlapStats,
}

impl DistributedCoordinator {
    /// Dials every worker address up front — a mistyped address or a
    /// mismatched build should fail the run at startup, not strand a
    /// shard mid-search. Every connection opens with the `hello`
    /// handshake. The `scenario` travels with every accelerator-search
    /// shard request (as a full object, so `--file` scenarios outside
    /// the worker's registry work too).
    ///
    /// # Errors
    ///
    /// The first [`RemoteError`] of a worker that cannot be reached or
    /// fails the handshake ([`RemoteError::Incompatible`]).
    pub fn connect(addrs: &[String], scenario: &Scenario) -> Result<Self, RemoteError> {
        Self::connect_with(addrs, serde_json::to_value(scenario))
    }

    /// [`DistributedCoordinator::connect`] for a pure joint-search fleet:
    /// joint shards carry their workload in the NAS space, so no
    /// scenario is shipped.
    pub fn connect_joint(addrs: &[String]) -> Result<Self, RemoteError> {
        Self::connect_with(addrs, Value::Null)
    }

    /// [`DistributedCoordinator::connect`] without a pinned scenario:
    /// the fleet handle the gateway shares across jobs. Accelerator
    /// steps through such a coordinator must ship their scenario per
    /// call ([`DistributedCoordinator::step_with_scenario`]) — each job
    /// may target a different scenario, so none is baked into the
    /// connection. Joint steps work unchanged.
    pub fn connect_fleet(addrs: &[String]) -> Result<Self, RemoteError> {
        Self::connect_with(addrs, Value::Null)
    }

    fn connect_with(addrs: &[String], scenario_value: Value) -> Result<Self, RemoteError> {
        assert!(!addrs.is_empty(), "need at least one worker address");
        let mut workers = Vec::with_capacity(addrs.len());
        for addr in addrs {
            let mut remote = RemoteWorker::new(addr.clone());
            remote.enable_handshake("naas-search coordinator");
            // Bound every dial — above all the rejoin probes, which run
            // synchronously at the generation barrier: a powered-off
            // worker (SYNs silently dropped) must cost this much, not
            // the OS connect timeout of minutes.
            remote.set_connect_timeout(CONNECT_TIMEOUT);
            remote.connect()?;
            workers.push(WorkerSlot {
                remote,
                alive: true,
                synced: 0,
                full_resync: false,
                rejoin_attempts: 0,
                next_retry: 0,
                banned: false,
            });
        }
        let worker_count = workers.len();
        let (probe_tx, probe_rx) = mpsc::channel();
        Ok(DistributedCoordinator {
            workers,
            scenario_value,
            generation: 0,
            delta_log: Vec::new(),
            seen: HashSet::new(),
            last_slowest: None,
            microshards: DEFAULT_MICROSHARDS,
            steal_deadline: DEFAULT_STEAL_DEADLINE,
            rates: vec![None; worker_count],
            stats_last: SchedulerStats::default(),
            stats_total: SchedulerStats::default(),
            probe_tx,
            probe_rx,
            probing: vec![false; worker_count],
            pareto_published: (0, 0),
            overlap: false,
            accel_spec: HashMap::new(),
            spec_capacity: DEFAULT_SPEC_CAPACITY,
            overlap_stats: OverlapStats::default(),
        })
    }

    /// The shard plan (worker addresses plus scheduler tuning) this
    /// coordinator was built on.
    pub fn plan(&self) -> ShardPlan {
        ShardPlan {
            workers: self
                .workers
                .iter()
                .map(|w| w.remote.addr().to_string())
                .collect(),
            microshards: Some(self.microshards),
            steal_deadline_ms: Some(
                u64::try_from(self.steal_deadline.as_millis()).unwrap_or(u64::MAX),
            ),
            overlap: Some(self.overlap),
        }
    }

    /// Sets the micro-shards-per-worker target. `0` disables the
    /// dynamic scheduler entirely: one shard per live worker, no
    /// stealing, no speculation — the pre-scheduler dispatch, kept as
    /// the measurable baseline.
    pub fn set_microshards(&mut self, microshards: usize) {
        self.microshards = microshards;
    }

    /// Sets the age past which an in-flight shard on a slower worker is
    /// speculatively re-issued to an idle one.
    pub fn set_steal_deadline(&mut self, deadline: Duration) {
        self.steal_deadline = deadline;
    }

    /// Turns barrier-free generation overlap on or off (default off —
    /// the barrier path is the oracle the reactor is verified against).
    /// With overlap on, accelerator steps speculatively `ask` the next
    /// generation from a forked optimizer state while the current one
    /// is still in flight, and joint steps shard below candidate
    /// granularity (`joint_unit`) when the fleet supports it. The
    /// trajectory stays bit-identical either way; only wall time and
    /// the `overlap_*` counters change.
    pub fn set_overlap(&mut self, on: bool) {
        self.overlap = on;
    }

    /// Whether generation overlap is on.
    pub fn overlap(&self) -> bool {
        self.overlap
    }

    /// Bounds the per-job speculation map (minimum 1). Shrinking below
    /// the current occupancy evicts on the next insert, which counts as
    /// a rollback — capacity 1 makes rollbacks deterministic in tests
    /// that interleave two jobs.
    pub fn set_spec_capacity(&mut self, capacity: usize) {
        self.spec_capacity = capacity.max(1);
    }

    /// Overlap reactor counters accumulated since the coordinator
    /// connected.
    pub fn overlap_stats(&self) -> OverlapStats {
        self.overlap_stats
    }

    /// Scheduler counters of the most recently completed generation.
    pub fn last_generation_stats(&self) -> SchedulerStats {
        self.stats_last
    }

    /// Scheduler counters accumulated since the coordinator connected.
    pub fn scheduler_stats(&self) -> SchedulerStats {
        self.stats_total
    }

    /// Workers currently considered alive.
    pub fn live_workers(&self) -> usize {
        self.workers.iter().filter(|w| w.alive).count()
    }

    /// Advances the accelerator search by one generation, with candidate
    /// evaluations sharded over the workers — the distributed
    /// counterpart of [`crate::accel_search::accel_search_step`],
    /// producing the bit-identical state trajectory. `engine` is the
    /// coordinator's own engine: it absorbs the fleet's cache deltas and
    /// evaluates fallback shards when every worker is dead.
    pub fn step(
        &mut self,
        engine: &CoSearchEngine,
        model: &CostModel,
        networks: &[Network],
        state: &mut AccelSearchState,
    ) -> bool {
        let scenario_value = self.scenario_value.clone();
        self.step_with_scenario(scenario_value, engine, model, networks, state)
    }

    /// [`DistributedCoordinator::step`] with the scenario supplied per
    /// call instead of taken from the connection — the shape a shared
    /// fleet needs, where concurrent gateway jobs targeting different
    /// scenarios interleave their generations onto one coordinator.
    /// Purity makes the interleaving invisible: each shard request is
    /// self-contained (scenario + candidates + mapping config), so the
    /// trajectory stays bit-identical to a solo run of the same job.
    pub fn step_with_scenario(
        &mut self,
        scenario_value: Value,
        engine: &CoSearchEngine,
        model: &CostModel,
        networks: &[Network],
        state: &mut AccelSearchState,
    ) -> bool {
        self.step_with_scenario_keyed(0, scenario_value, engine, model, networks, state)
    }

    /// [`DistributedCoordinator::step_with_scenario`] with an explicit
    /// speculation key: overlapped speculative generations are banked
    /// per key, so concurrent jobs interleaving their generations on one
    /// fleet (the gateway keys by job id) never consume — or thrash —
    /// each other's forks. With overlap off the key is inert.
    ///
    /// This is the reactor's accelerator-mode event loop. One step:
    ///
    /// 1. **sample** the real generation ([`accel_sample_generation`]);
    /// 2. **bank check**: a speculation stored under `key` whose sample
    ///    equals the real one (whole-struct equality — thetas, decoded
    ///    designs, rejected draws, iteration) is a *hit* and its results
    ///    are reused; anything else is a *rollback*. Equal samples imply
    ///    equal results, because every candidate evaluation is a pure
    ///    function of its content;
    /// 3. **evaluate** the slots the bank did not cover, on the fleet;
    /// 4. while that runs, an idle worker that finds the primary pool
    ///    drained fires the **speculative ask**: fork the state, commit
    ///    the results merged so far (in-flight unknowns pessimistically
    ///    infeasible), sample G+1 from the fork and feed it to the idle
    ///    fleet — see `SpecShared` in the scheduler;
    /// 5. **commit** the real generation ([`accel_commit_generation`])
    ///    and bank whatever the speculation evaluated.
    ///
    /// The real state only ever advances through the real sample and
    /// commit, so the trajectory is bit-identical to the barrier path at
    /// any completion order — speculation can only change wall time and
    /// counters.
    pub fn step_with_scenario_keyed(
        &mut self,
        key: u64,
        scenario_value: Value,
        engine: &CoSearchEngine,
        model: &CostModel,
        networks: &[Network],
        state: &mut AccelSearchState,
    ) -> bool {
        assert!(!networks.is_empty(), "need at least one benchmark network");
        let cfg = state.config;
        let started = std::time::Instant::now();
        let Some(sampled) = accel_sample_generation(state) else {
            // A speculation banked for a search that just finished can
            // never be consumed: roll it back so `asks` stays equal to
            // `hits + rollbacks`.
            if self.accel_spec.remove(&key).is_some() {
                self.overlap_stats.rollbacks += 1;
                telemetry::metrics().coordinator.overlap_rollbacks.inc();
            }
            return false;
        };
        self.generation = sampled.iteration;
        let n = sampled.slots.len();

        // Bank check: a hit replays the fork's evaluations; a mismatch
        // rolls the fork back (the merged tell changed the trajectory).
        let mut known: Vec<Option<CandidateOutcome>> = vec![None; n];
        if let Some(spec) = self.accel_spec.remove(&key) {
            if spec.sampled == sampled && spec.results.len() == n {
                self.overlap_stats.hits += 1;
                self.overlap_stats.banked +=
                    spec.results.iter().filter(|r| r.is_some()).count() as u64;
                known = spec.results;
            } else {
                self.overlap_stats.rollbacks += 1;
                telemetry::metrics().coordinator.overlap_rollbacks.inc();
            }
        }
        let unknowns: Vec<usize> = (0..n).filter(|&i| known[i].is_none()).collect();

        self.try_rejoin();
        let slots = &sampled.slots;
        let build = |range: Range<usize>| -> Vec<(String, Value)> {
            let candidates: Vec<Accelerator> = range
                .map(|i| slots[unknowns[i]].1.clone())
                .collect::<Vec<_>>();
            vec![
                ("scenario".to_string(), scenario_value.clone()),
                ("candidates".to_string(), serde_json::to_value(&candidates)),
                ("mapping".to_string(), serde_json::to_value(&cfg.mapping)),
                ("reward".to_string(), serde_json::to_value(&cfg.reward)),
            ]
        };
        let mut fallback = |range: Range<usize>| {
            let idxs: Vec<usize> = range.map(|i| unknowns[i]).collect();
            naas_engine::parallel_map(engine.threads(), &idxs, |_idx, &slot| {
                evaluate_candidate(
                    engine,
                    model,
                    &slots[slot].1,
                    networks,
                    &cfg.mapping,
                    cfg.reward,
                )
            })
        };

        // The speculative ask, fired by the scheduler at the pool-drain
        // event: predict the generation's commit from what has merged so
        // far, fork, sample G+1 and hand its candidates to the idle
        // fleet. The fork (`spec_sink`) is retrieved after the barrier.
        let spec_sink: Mutex<Option<SampledGeneration>> = Mutex::new(None);
        let state_ref: &AccelSearchState = state;
        let known_ref = &known;
        let unknowns_ref = &unknowns;
        let sampled_ref = &sampled;
        let spec_scenario = scenario_value.clone();
        let hook = |merged_now: &[Option<CandidateOutcome>]| {
            let predicted: Vec<CandidateOutcome> = (0..n)
                .map(|i| match &known_ref[i] {
                    Some(outcome) => outcome.clone(),
                    // In-flight unknowns predict as infeasible (+inf
                    // score): wrong predictions cost a rollback, never
                    // correctness — and the speculative work only ever
                    // spends cycles the tail would have left idle.
                    None => {
                        let pos = unknowns_ref
                            .binary_search(&i)
                            .expect("unknown slots index the scheduler domain");
                        merged_now[pos].clone().unwrap_or(None)
                    }
                })
                .collect();
            let mut fork = state_ref.clone();
            accel_commit_generation(&mut fork, sampled_ref.clone(), predicted);
            let next = accel_sample_generation(&mut fork)?;
            *spec_sink.lock().unwrap_or_else(|p| p.into_inner()) = Some(next.clone());
            let spec_slots = next.slots;
            let scen = spec_scenario.clone();
            Some(SpecJob {
                count: spec_slots.len(),
                build: Box::new(move |range: Range<usize>| {
                    let candidates: Vec<Accelerator> =
                        spec_slots[range].iter().map(|(_, a)| a.clone()).collect();
                    vec![
                        ("scenario".to_string(), scen.clone()),
                        ("candidates".to_string(), serde_json::to_value(&candidates)),
                        ("mapping".to_string(), serde_json::to_value(&cfg.mapping)),
                        ("reward".to_string(), serde_json::to_value(&cfg.reward)),
                    ]
                }),
            })
        };
        let spec_hook: Option<&SpecHook<'_, CandidateOutcome>> =
            if self.overlap { Some(&hook) } else { None };

        let (evaluated, spec_outcome) = self.evaluate_sharded(
            engine,
            unknowns.len(),
            None,
            &build,
            &parse_shard_reply,
            &mut fallback,
            spec_hook,
        );
        for (pos, result) in evaluated.into_iter().enumerate() {
            known[unknowns[pos]] = Some(result);
        }
        let results: Vec<CandidateOutcome> = known
            .into_iter()
            .map(|r| r.expect("every slot is banked or evaluated"))
            .collect();

        // Bank the speculation (evicting past capacity — an evicted ask
        // can never hit, so it is a rollback).
        if let Some(outcome) = spec_outcome {
            if let Some(next) = spec_sink.into_inner().unwrap_or_else(|p| p.into_inner()) {
                let coordinator = &telemetry::metrics().coordinator;
                self.overlap_stats.asks += 1;
                coordinator.overlap_asks.inc();
                self.overlap_stats.overlap_ms += outcome.overlap_ms;
                coordinator.overlap_ms.add(outcome.overlap_ms);
                while self.accel_spec.len() >= self.spec_capacity {
                    let victim = *self
                        .accel_spec
                        .keys()
                        .min()
                        .expect("non-empty map past capacity");
                    self.accel_spec.remove(&victim);
                    self.overlap_stats.rollbacks += 1;
                    coordinator.overlap_rollbacks.inc();
                }
                self.accel_spec.insert(
                    key,
                    AccelSpeculation {
                        sampled: next,
                        results: outcome.results,
                    },
                );
            }
        }

        accel_commit_generation(state, sampled, results);
        state.cache_stats = engine.cache_stats();
        self.compact_delta_log();
        if let Some(archive) = state.archive() {
            self.publish_pareto_telemetry(archive);
        }
        self.finish_generation(
            started,
            state.best().map(|b| b.reward),
            engine.cache_stats().hit_rate(),
        );
        true
    }

    /// Advances the **joint** search by one outer generation, with each
    /// candidate's whole NAS evolution sharded over the workers — the
    /// distributed counterpart of [`crate::joint::joint_search_step`] on
    /// the [`joint_search_step_with`] seam, bit-identical to the
    /// single-process joint trajectory (fixture-enforced). Only workers
    /// advertising the `"joint"` capability receive joint shards; with
    /// none in the fleet, every generation runs on the local fallback.
    /// The coordinator's `accuracy` model is shipped with every shard,
    /// so workers need no out-of-band surrogate configuration.
    pub fn step_joint(
        &mut self,
        engine: &CoSearchEngine,
        model: &CostModel,
        accuracy: &AccuracyModel,
        state: &mut JointSearchState,
    ) -> bool {
        // Overlap: shard below candidate granularity when some live
        // worker speaks `joint_unit` (additive capability — a mixed or
        // legacy fleet falls through to whole-candidate shards).
        if self.overlap
            && self
                .workers
                .iter()
                .any(|w| w.alive && w.remote.has_capability(JOINT_UNIT_CAPABILITY))
        {
            return self.step_joint_units(engine, model, accuracy, state);
        }
        let cfg = state.config;
        let iteration = state.iteration;
        self.generation = iteration;
        let started = std::time::Instant::now();
        let advanced = joint_search_step_with(state, |slots| {
            self.try_rejoin();
            let build = |range: Range<usize>| -> Vec<(String, Value)> {
                let candidates: Vec<Accelerator> = slots[range.clone()]
                    .iter()
                    .map(|(_, _, a)| a.clone())
                    .collect();
                let seeds: Vec<u64> = slots[range]
                    .iter()
                    .map(|(slot, _, _)| joint_nas_seed(&cfg, iteration, *slot))
                    .collect();
                vec![
                    ("candidates".to_string(), serde_json::to_value(&candidates)),
                    (
                        "mapping".to_string(),
                        serde_json::to_value(&cfg.accel.mapping),
                    ),
                    (
                        "joint".to_string(),
                        Value::Object(vec![
                            ("nas".to_string(), serde_json::to_value(&cfg.nas)),
                            ("seeds".to_string(), serde_json::to_value(&seeds)),
                            ("accuracy".to_string(), serde_json::to_value(accuracy)),
                        ]),
                    ),
                ]
            };
            let mut fallback = |range: Range<usize>| {
                naas_engine::parallel_map(
                    engine.threads(),
                    &slots[range],
                    |_idx, (slot, _, accel)| {
                        evaluate_joint_candidate(
                            engine,
                            model,
                            accuracy,
                            accel,
                            &cfg.accel.mapping,
                            &cfg.nas,
                            joint_nas_seed(&cfg, iteration, *slot),
                        )
                    },
                )
            };
            self.evaluate_sharded(
                engine,
                slots.len(),
                Some(JOINT_CAPABILITY),
                &build,
                &parse_joint_shard_reply,
                &mut fallback,
                None,
            )
            .0
        });
        if advanced {
            self.compact_delta_log();
            if let Some(archive) = state.archive() {
                self.publish_pareto_telemetry(archive);
            }
            self.finish_generation(
                started,
                state.best().map(|b| b.edp),
                engine.cache_stats().hit_rate(),
            );
        }
        advanced
    }

    /// The joint step with sub-candidate sharding: each candidate's NAS
    /// evolution runs as a [`SubnetSearchDriver`] state machine *on the
    /// coordinator*, and the evolutions' pending subnets are flattened
    /// into waves of `(candidate, subnet)` work units fanned over the
    /// fleet in `joint_unit` wire mode — one unit is one mapping search
    /// of one subnet on one candidate. A 4-candidate generation thus
    /// saturates a 16-worker fleet instead of pinning 4 workers.
    ///
    /// Bit-identity with [`DistributedCoordinator::step_joint`]'s
    /// whole-candidate path holds by construction: the driver consumes
    /// the NAS RNG exactly as `search_subnet` does, every unit result is
    /// the same pure function (`network_mapping_search_memo` with
    /// content-derived seeds) a worker running the whole evolution would
    /// have computed, and units merge by `(candidate, unit)` index in
    /// deterministic wave order.
    fn step_joint_units(
        &mut self,
        engine: &CoSearchEngine,
        model: &CostModel,
        accuracy: &AccuracyModel,
        state: &mut JointSearchState,
    ) -> bool {
        let cfg = state.config;
        let started = std::time::Instant::now();
        let Some(sampled) = joint_sample_generation(state) else {
            return false;
        };
        let iteration = sampled.iteration;
        self.generation = iteration;
        self.try_rejoin();

        // One driver per decoded candidate, seeded exactly as the
        // whole-candidate path seeds its remote evolutions.
        let nas_cfgs: Vec<NasConfig> = sampled
            .slots
            .iter()
            .map(|(slot, _, _)| NasConfig {
                seed: joint_nas_seed(&cfg, iteration, *slot),
                ..cfg.nas
            })
            .collect();
        let mut drivers: Vec<SubnetSearchDriver<'_>> = nas_cfgs
            .iter()
            .map(|nas_cfg| SubnetSearchDriver::new(nas_cfg, accuracy))
            .collect();
        // Per-candidate memo of unit results: a subnet scored once on a
        // design is never re-shipped (parents recur every generation).
        // `Subnet` is not hashable; populations are tiny, linear scan.
        let mut memo: Vec<Vec<(Subnet, Option<NetworkCost>)>> =
            vec![Vec::new(); sampled.slots.len()];
        let lookup = |memo: &[(Subnet, Option<NetworkCost>)], s: &Subnet| {
            memo.iter().find(|(k, _)| k == s).map(|(_, c)| c.clone())
        };

        loop {
            // This wave: every live driver's pending subnets that are
            // not yet memoized, deduplicated per candidate.
            let mut units: Vec<(usize, Subnet)> = Vec::new();
            let mut live_any = false;
            for (ci, driver) in drivers.iter().enumerate() {
                if driver.is_done() {
                    continue;
                }
                live_any = true;
                for s in driver.pending() {
                    if lookup(&memo[ci], s).is_some() {
                        continue;
                    }
                    if units.iter().any(|(c, k)| *c == ci && k == s) {
                        continue;
                    }
                    units.push((ci, *s));
                }
            }
            if !live_any {
                break;
            }

            if !units.is_empty() {
                let slots = &sampled.slots;
                let units_ref = &units;
                let build = |range: Range<usize>| -> Vec<(String, Value)> {
                    let candidates: Vec<Accelerator> = units_ref[range.clone()]
                        .iter()
                        .map(|(ci, _)| slots[*ci].2.clone())
                        .collect();
                    let subnets: Vec<Subnet> = units_ref[range].iter().map(|(_, s)| *s).collect();
                    vec![
                        ("candidates".to_string(), serde_json::to_value(&candidates)),
                        (
                            "mapping".to_string(),
                            serde_json::to_value(&cfg.accel.mapping),
                        ),
                        (
                            "joint_unit".to_string(),
                            Value::Object(vec![(
                                "subnets".to_string(),
                                serde_json::to_value(&subnets),
                            )]),
                        ),
                    ]
                };
                let mut fallback = |range: Range<usize>| {
                    naas_engine::parallel_map(
                        engine.threads(),
                        &units_ref[range],
                        |_idx, (ci, subnet)| {
                            let accel = &slots[*ci].2;
                            let fp = design_fingerprint(accel, &cfg.accel.mapping);
                            network_mapping_search_memo(
                                model,
                                &subnet.to_network(),
                                accel,
                                &cfg.accel.mapping,
                                engine.cache(),
                                fp,
                            )
                        },
                    )
                };
                let (results, _) = self.evaluate_sharded(
                    engine,
                    units.len(),
                    Some(JOINT_UNIT_CAPABILITY),
                    &build,
                    &parse_joint_unit_reply,
                    &mut fallback,
                    None,
                );
                let merged_units = results.len() as u64;
                for ((ci, subnet), result) in units.iter().zip(results) {
                    memo[*ci].push((*subnet, result));
                }
                self.overlap_stats.joint_units += merged_units;
                telemetry::metrics()
                    .coordinator
                    .joint_units
                    .add(merged_units);
            }

            // Every pending subnet is now memoized: feed each live
            // driver its generation's scores and let it breed.
            for (ci, driver) in drivers.iter_mut().enumerate() {
                if driver.is_done() {
                    continue;
                }
                let scores: Vec<Option<f64>> = driver
                    .pending()
                    .iter()
                    .map(|s| {
                        lookup(&memo[ci], s)
                            .expect("the wave covered every pending subnet")
                            .map(|cost| cost.edp())
                    })
                    .collect();
                driver.absorb(&scores);
            }
        }

        // Fold each evolution's outcome into a JointCandidateEval — the
        // winner's full cost report comes from the memo (the evolution
        // scored it moments ago), exactly as `evaluate_joint_candidate`
        // re-derives it through the cache.
        let outcomes: Vec<Option<JointCandidateEval>> = drivers
            .into_iter()
            .enumerate()
            .map(|(ci, driver)| {
                let out = driver.finish()?;
                let cost = lookup(&memo[ci], &out.subnet)
                    .flatten()
                    .expect("the winning subnet was scored feasible");
                let accel = &sampled.slots[ci].2;
                let area_um2 = AreaModel::default().area_mm2(accel) * 1e6;
                let objectives = ObjectiveVector::from_suite(
                    std::slice::from_ref(&cost),
                    area_um2,
                    out.accuracy,
                );
                Some(JointCandidateEval {
                    subnet: out.subnet,
                    reward: out.reward,
                    accuracy: out.accuracy,
                    evaluations: out.evaluations,
                    objectives,
                })
            })
            .collect();
        joint_commit_generation(state, sampled, outcomes);

        self.compact_delta_log();
        if let Some(archive) = state.archive() {
            self.publish_pareto_telemetry(archive);
        }
        self.finish_generation(
            started,
            state.best().map(|b| b.edp),
            engine.cache_stats().hit_rate(),
        );
        true
    }

    /// Publishes the archive's state to the `coordinator.pareto_*`
    /// instruments: front size and hypervolume as gauges, the
    /// state-lifetime insert/rejection counters as process-lifetime
    /// counter growth.
    fn publish_pareto_telemetry(&mut self, archive: &ParetoArchive) {
        let coordinator = &telemetry::metrics().coordinator;
        let (inserts0, rejections0) = self.pareto_published;
        coordinator
            .pareto_inserts
            .add(archive.inserts.saturating_sub(inserts0));
        coordinator
            .pareto_rejections
            .add(archive.rejections.saturating_sub(rejections0));
        self.pareto_published = (archive.inserts, archive.rejections);
        coordinator.pareto_front_size.set(archive.len() as u64);
        coordinator
            .pareto_hypervolume_bits
            .set(archive.hypervolume().to_bits());
    }

    /// Telemetry for one completed generation: records the wall time,
    /// bumps the generation counter, and emits the per-generation
    /// progress event (generation index, best reward, cache hit rate,
    /// slowest first-wave shard). Debug level: it flows to the
    /// `--metrics-file` sink without spamming stderr.
    fn finish_generation(
        &mut self,
        started: std::time::Instant,
        best_reward: Option<f64>,
        hit_rate: f64,
    ) {
        let coordinator = &telemetry::metrics().coordinator;
        coordinator.generations.inc();
        coordinator
            .generation_wall
            .observe_duration(started.elapsed());
        let mut fields = vec![
            ("generation".to_string(), Value::U64(self.generation as u64)),
            ("cache_hit_rate".to_string(), Value::F64(hit_rate)),
            (
                "wall_us".to_string(),
                Value::U64(u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX)),
            ),
        ];
        if let Some(reward) = best_reward {
            fields.push(("best_reward".to_string(), Value::F64(reward)));
        }
        if let Some((addr, micros)) = self.last_slowest.take() {
            fields.push(("slowest_shard_worker".to_string(), Value::Str(addr)));
            fields.push(("slowest_shard_us".to_string(), Value::U64(micros)));
        }
        let owned: Vec<(&str, Value)> = fields
            .iter()
            .map(|(k, v)| (k.as_str(), v.clone()))
            .collect();
        telemetry::events().emit(
            Level::Debug,
            "generation",
            &format!("generation {} complete", self.generation),
            &owned,
        );
    }

    /// Re-admits dead, unbanned workers via **background** re-dial
    /// probes. Runs at each generation boundary, before shards are
    /// assigned: first it applies every probe result that arrived since
    /// the last boundary, then it launches probes for the dead workers
    /// whose retry is due, then it grace-waits a short beat
    /// ([`REJOIN_GRACE`]) so a worker that was just restarted (its
    /// connect resolves in microseconds) takes part in the very
    /// generation that probed it. A probe against a machine that drops
    /// SYNs silently keeps running on its thread for up to
    /// [`CONNECT_TIMEOUT`] — *off* the critical path; its verdict is
    /// applied at whichever boundary it lands before.
    fn try_rejoin(&mut self) {
        // Verdicts that arrived while the previous generation ran.
        while let Ok((widx, outcome)) = self.probe_rx.try_recv() {
            self.apply_probe(widx, outcome);
        }
        // Launch probes for every dead worker whose retry is due.
        let generation = self.generation;
        let mut launched = false;
        for widx in 0..self.workers.len() {
            let slot = &self.workers[widx];
            if slot.alive || slot.banned || self.probing[widx] || generation < slot.next_retry {
                continue;
            }
            let addr = slot.remote.addr().to_string();
            let tx = self.probe_tx.clone();
            self.probing[widx] = true;
            launched = true;
            std::thread::spawn(move || {
                let mut probe = RemoteWorker::new(addr);
                probe.enable_handshake("naas-search coordinator");
                probe.set_connect_timeout(CONNECT_TIMEOUT);
                let outcome = probe.connect().map(|()| probe);
                // The coordinator may be gone by the time a slow probe
                // resolves; a dead channel just ends the thread.
                let _ = tx.send((widx, outcome));
            });
        }
        // Grace-wait for in-flight probes: a locally-refused connect
        // reports in microseconds, so a restarted worker rejoins *this*
        // generation. Probes still out after the grace (silent drops)
        // report at a later boundary.
        if !launched && !self.probing.iter().any(|&p| p) {
            return;
        }
        let deadline = Instant::now() + REJOIN_GRACE;
        while self.probing.iter().any(|&p| p) {
            let now = Instant::now();
            let Some(left) = deadline
                .checked_duration_since(now)
                .filter(|d| !d.is_zero())
            else {
                break;
            };
            match self.probe_rx.recv_timeout(left) {
                Ok((widx, outcome)) => self.apply_probe(widx, outcome),
                Err(_) => break,
            }
        }
    }

    /// Applies one background probe verdict: admit, ban, or back off.
    fn apply_probe(&mut self, widx: usize, outcome: Result<RemoteWorker, RemoteError>) {
        self.probing[widx] = false;
        let generation = self.generation;
        let slot = &mut self.workers[widx];
        if slot.alive || slot.banned {
            // The slot changed state while the probe was out (e.g. a
            // stale probe from before a ban): drop the verdict.
            return;
        }
        let addr = slot.remote.addr().to_string();
        match outcome {
            Ok(probe) => {
                slot.remote = probe;
                slot.alive = true;
                slot.full_resync = true;
                slot.synced = self.delta_log.len();
                slot.rejoin_attempts = 0;
                telemetry::metrics().coordinator.rejoins.inc();
                telemetry::events().emit(
                    Level::Info,
                    "worker_rejoined",
                    &format!(
                        "worker {addr} rejoined the fleet at generation {generation}; \
                         warming it with a full cache snapshot"
                    ),
                    &[
                        ("worker", Value::Str(addr.clone())),
                        ("generation", Value::U64(generation as u64)),
                    ],
                );
            }
            Err(e @ RemoteError::Incompatible(_)) => {
                slot.banned = true;
                telemetry::events().emit(
                    Level::Error,
                    "worker_banned",
                    &format!(
                        "worker {addr} came back with an incompatible build ({e}); \
                         not re-admitting it"
                    ),
                    &[
                        ("worker", Value::Str(addr.clone())),
                        ("generation", Value::U64(generation as u64)),
                        ("error", Value::Str(e.to_string())),
                    ],
                );
            }
            Err(e) => {
                slot.rejoin_attempts += 1;
                let backoff = (1usize << slot.rejoin_attempts.min(8)).min(REJOIN_BACKOFF_CAP);
                slot.next_retry = generation + backoff;
                telemetry::events().emit(
                    Level::Warn,
                    "worker_unreachable",
                    &format!(
                        "worker {addr} still unreachable ({e}); \
                         next re-dial in {backoff} generation(s)"
                    ),
                    &[
                        ("worker", Value::Str(addr.clone())),
                        ("generation", Value::U64(generation as u64)),
                        ("backoff_generations", Value::U64(backoff as u64)),
                        ("error", Value::Str(e.to_string())),
                    ],
                );
            }
        }
    }

    /// The generic fan-out/merge/re-issue engine under both search
    /// modes: schedules `n` candidates over the live workers (optionally
    /// only those advertising `capability`) as micro-shards with work
    /// stealing, pipelined RPC and speculative re-issue (see the module
    /// docs), decodes replies with `parse`, and falls back to `fallback`
    /// on the coordinator's own engine for work no worker could finish.
    /// Results are merged in candidate order — the property that makes
    /// distribution invisible in the trajectory.
    #[allow(clippy::too_many_arguments)]
    fn evaluate_sharded<T: Send + Clone>(
        &mut self,
        engine: &CoSearchEngine,
        n: usize,
        capability: Option<&str>,
        build: &BuildShard<'_>,
        parse: &ParseShard<T>,
        fallback: &mut LocalFallback<'_, T>,
        spec: Option<&SpecHook<'_, T>>,
    ) -> (Vec<T>, Option<SpecOutcome<T>>) {
        self.stats_last = SchedulerStats::default();
        let mut merged: Vec<Option<T>> = (0..n).map(|_| None).collect();
        let mut leftovers: Vec<Range<usize>> = Vec::new();
        let mut spec_outcome = None;

        let live: Vec<usize> = (0..self.workers.len())
            .filter(|&w| self.eligible(w, capability))
            .collect();
        if live.is_empty() {
            // No worker can take this mode's shards (fleet dead, or no
            // capability match): everything goes to the fallback path.
            // Speculation needs an idle fleet, so none happens either.
            if n > 0 {
                leftovers.push(0..n);
            }
        } else if n > 0 {
            spec_outcome = self.run_scheduler(
                engine,
                n,
                &live,
                build,
                parse,
                &mut merged,
                &mut leftovers,
                spec,
            );
        }

        // Evaluate locally whatever the fleet could not finish: orderly
        // rejections (a deterministic failure must surface exactly as a
        // single-process run would surface it) and orphans no surviving
        // worker picked up. Purity makes *where* a shard lands
        // irrelevant to the result.
        for range in leftovers {
            telemetry::events().emit(
                Level::Info,
                "local_fallback",
                "evaluating shard on the coordinator",
                &[
                    ("generation", Value::U64(self.generation as u64)),
                    ("candidates", Value::U64(range.len() as u64)),
                ],
            );
            engine.cache().enable_journal();
            let results = fallback(range.clone());
            let delta = engine.cache().take_new_entries();
            self.log_keys(
                SELF_SOURCE,
                delta.entries.iter().map(|(fp, key, _)| (*fp, *key)),
            );
            for (slot, result) in range.zip(results) {
                merged[slot] = Some(result);
            }
        }
        let results = merged
            .into_iter()
            .map(|r| r.expect("every candidate slot is covered by exactly one shard"))
            .collect();
        (results, spec_outcome)
    }

    /// Runs one generation's micro-shard scheduler over the `live`
    /// workers: plans per-worker queues by throughput, spawns one
    /// pipelining thread per worker against the shared scheduler state,
    /// then applies the post-mortem — merges, cache deltas, EWMA
    /// updates, deaths/rejections, telemetry — back onto `self`.
    /// Un-finished ranges are appended to `leftovers` for the caller's
    /// local fallback.
    #[allow(clippy::too_many_arguments)]
    fn run_scheduler<T: Send + Clone>(
        &mut self,
        engine: &CoSearchEngine,
        n: usize,
        live: &[usize],
        build: &BuildShard<'_>,
        parse: &ParseShard<T>,
        merged: &mut Vec<Option<T>>,
        leftovers: &mut Vec<Range<usize>>,
        spec: Option<&SpecHook<'_, T>>,
    ) -> Option<SpecOutcome<T>> {
        let dynamic = self.microshards > 0;
        let per_worker = if dynamic { self.microshards } else { 1 };
        // Static mode ignores the EWMA: equal shards, like the
        // pre-scheduler dispatch it exists to baseline against.
        let live_rates: Vec<Option<f64>> = if dynamic {
            live.iter().map(|&w| self.rates[w]).collect()
        } else {
            vec![None; live.len()]
        };
        let base_chunk = n.div_ceil(live.len() * per_worker).max(1);

        let worker_count = self.workers.len();
        let mut queues: Vec<VecDeque<Range<usize>>> =
            (0..worker_count).map(|_| VecDeque::new()).collect();
        // Primary work is planned identically with or without the
        // reactor — per-worker queues, EWMA-sized in dynamic mode, with
        // stealing and overdue re-issue on top. The speculation trigger
        // is `next_work` running out of *everything* (queue, pool,
        // steal victims, overdue flights): that exhaustion event is the
        // generation's tail beginning, and only then does the reactor
        // fire the ask and start handing out `spec_pool` ranges.
        let pool: VecDeque<Range<usize>> = VecDeque::new();
        let mut active = vec![false; worker_count];
        {
            let blocks = microshard_plan(n, &live_rates, per_worker);
            for (i, &w) in live.iter().enumerate() {
                queues[w] = blocks[i].iter().cloned().collect();
                active[w] = true;
            }
        }
        let sched = Mutex::new(Sched {
            queues,
            pool,
            spec_pool: VecDeque::new(),
            flights: Vec::new(),
            local: Vec::new(),
            active,
            rates: self.rates.clone(),
            base_chunk,
            n_primary: n,
            stats: SchedulerStats::default(),
        });
        let spec_shared = spec.map(|hook| SpecShared {
            hook,
            job: OnceLock::new(),
            claimed: AtomicBool::new(false),
            installed: AtomicBool::new(false),
            installed_at: Mutex::new(None),
        });
        let merge = Mutex::new(MergeState {
            merged: std::mem::take(merged),
            deltas: Vec::new(),
        });

        // Pre-compute each worker's piggybacked cache delta (and a
        // rollback snapshot of its sync point, for workers that end up
        // never receiving a single request).
        let prev_sync: Vec<(usize, bool)> = self
            .workers
            .iter()
            .map(|s| (s.synced, s.full_resync))
            .collect();
        let mut setups: Vec<Option<(Option<Value>, bool)>> =
            (0..worker_count).map(|_| None).collect();
        for &w in live {
            let cache = self.take_cache_param(engine, w);
            setups[w] = Some((cache, self.rates[w].is_some()));
        }
        let cfg = SchedCfg {
            tick: SCHED_TICK,
            deadline: self.steal_deadline,
            dynamic,
        };

        let mut ends: Vec<WorkerEnd> = Vec::new();
        std::thread::scope(|scope| {
            let sched = &sched;
            let merge = &merge;
            let spec_shared = spec_shared.as_ref();
            let mut handles = Vec::new();
            for (widx, slot) in self.workers.iter_mut().enumerate() {
                let Some((cache, rate_known)) = setups[widx].take() else {
                    continue;
                };
                let remote = &mut slot.remote;
                handles.push(scope.spawn(move || {
                    worker_loop(
                        remote,
                        widx,
                        cache,
                        rate_known,
                        cfg,
                        sched,
                        merge,
                        build,
                        parse,
                        spec_shared,
                    )
                }));
            }
            for handle in handles {
                ends.push(handle.join().expect("shard worker thread panicked"));
            }
        });

        let mut sched = sched.into_inner().unwrap_or_else(|p| p.into_inner());
        let merge = merge.into_inner().unwrap_or_else(|p| p.into_inner());
        *merged = merge.merged;
        // Split the speculative tail off the merge domain: the caller's
        // primary results stay exactly `n` slots, the tail (with `None`
        // for whatever the fleet never reached) becomes the outcome of
        // the speculative ask.
        let spec_outcome = spec_shared.and_then(|shared| {
            if !shared.installed.load(Ordering::Acquire) {
                return None;
            }
            let results = merged.split_off(n);
            let overlap_ms = (*sched_lock(&shared.installed_at))
                .map(|t| u64::try_from(t.elapsed().as_millis()).unwrap_or(u64::MAX))
                .unwrap_or(0);
            Some(SpecOutcome {
                results,
                overlap_ms,
            })
        });
        // Deltas in flight order: deterministic relay-log order no
        // matter which thread's reply landed first.
        let mut deltas = merge.deltas;
        deltas.sort_by_key(|(fid, ..)| *fid);
        for (_, widx, delta) in deltas {
            self.record_delta(engine, widx, delta);
        }

        // Per-worker post-mortem: busy-share gauges, EWMA feed, sync
        // rollback for workers that never got a request, deaths and
        // rejections (with the same operator-facing events the blocking
        // dispatcher emitted).
        let generation = self.generation;
        let coordinator = &telemetry::metrics().coordinator;
        let mut slowest: Option<(String, u64)> = None;
        for end in &ends {
            let addr = self.workers[end.widx].remote.addr().to_string();
            if slowest.as_ref().is_none_or(|(_, m)| end.busy_us > *m) {
                slowest = Some((addr.clone(), end.busy_us));
            }
            // Capped: speculative completions can push a worker past
            // its share of the primary generation.
            coordinator
                .worker_share
                .get(&addr)
                .set((end.completed.saturating_mul(1000) / n as u64).min(1000));
            if end.completed > 0 {
                let measured = end.busy_us as f64 / end.completed as f64;
                self.rates[end.widx] = Some(match self.rates[end.widx] {
                    Some(rate) => 0.4 * rate + 0.6 * measured,
                    None => measured,
                });
            }
            if !end.sent_any {
                let (synced, full_resync) = prev_sync[end.widx];
                self.workers[end.widx].synced = synced;
                self.workers[end.widx].full_resync = full_resync;
            }
            let worker_fields = |error: String| {
                [
                    ("worker", Value::Str(addr.clone())),
                    ("generation", Value::U64(generation as u64)),
                    ("error", Value::Str(error)),
                ]
            };
            for error in &end.rejections {
                telemetry::events().emit(
                    Level::Warn,
                    "shard_rejected",
                    &format!("worker {addr} rejected its shard ({error}); evaluating it locally"),
                    &worker_fields(error.clone()),
                );
            }
            match &end.death {
                None => {}
                Some(DeathCause::Incompatible(e)) => {
                    coordinator.deaths.inc();
                    telemetry::events().emit(
                        Level::Error,
                        "worker_banned",
                        &format!(
                            "worker {addr} reconnected incompatible ({e}); dropping it for good"
                        ),
                        &worker_fields(e.clone()),
                    );
                    self.workers[end.widx].mark_dead(generation, true);
                }
                Some(DeathCause::Protocol(e)) => {
                    coordinator.deaths.inc();
                    telemetry::events().emit(
                        Level::Warn,
                        "shard_protocol_violation",
                        &format!(
                            "worker {addr} violated the shard protocol ({e}); \
                             re-issuing its shard"
                        ),
                        &worker_fields(e.clone()),
                    );
                    self.workers[end.widx].mark_dead(generation, false);
                }
                Some(DeathCause::Transport(e)) => {
                    coordinator.deaths.inc();
                    telemetry::events().emit(
                        Level::Warn,
                        "worker_died",
                        &format!("worker {addr} died mid-generation ({e}); re-issuing its shard"),
                        &worker_fields(e.clone()),
                    );
                    self.workers[end.widx].mark_dead(generation, false);
                }
            }
        }
        self.last_slowest = slowest;

        let stats = sched.stats;
        coordinator.microshards.add(stats.microshards);
        coordinator.steals.add(stats.steals);
        coordinator.resplits.add(stats.resplits);
        coordinator.speculations.add(stats.speculations);
        coordinator.duplicate_replies.add(stats.duplicate_replies);
        coordinator.reissues.add(stats.reissues);
        self.stats_last = stats;
        self.stats_total.accumulate(stats);

        // Whatever the fleet never finished goes to the caller's local
        // fallback: rejected ranges, plus orphans left when every
        // worker that could have drained the pool died or deactivated.
        leftovers.append(&mut sched.local);
        leftovers.extend(sched.pool.drain(..));
        for queue in &mut sched.queues {
            leftovers.extend(queue.drain(..));
        }
        for flight in &sched.flights {
            if !flight.done {
                leftovers.push(flight.range.clone());
            }
        }
        // Speculative ranges never reach the local fallback: the bet is
        // strictly opportunistic, and un-evaluated spec slots simply
        // stay `None` in the banked results.
        leftovers.retain(|r| r.start < n);
        spec_outcome
    }

    /// Whether worker `widx` can take a shard: alive, and advertising
    /// `capability` when one is required.
    fn eligible(&self, widx: usize, capability: Option<&str>) -> bool {
        let slot = &self.workers[widx];
        slot.alive && capability.is_none_or(|c| slot.remote.has_capability(c))
    }

    /// Builds the `cache` parameter value for `widx`'s first shard
    /// request of the generation and advances its sync point: an
    /// incremental delta of every logged entry this worker has not seen
    /// and did not itself report — or, right after a rejoin, a full
    /// snapshot of the coordinator's engine cache (the restarted worker
    /// lost everything; this is the backlog replay that makes it warm
    /// again). Values are fetched from the engine cache at build time,
    /// so evicted entries simply drop out of the relay. Returns `None`
    /// when the worker is already up to date.
    fn take_cache_param(&mut self, engine: &CoSearchEngine, widx: usize) -> Option<Value> {
        let full_resync = std::mem::take(&mut self.workers[widx].full_resync);
        let synced = self.workers[widx].synced;
        let snapshot = if full_resync {
            engine.cache().snapshot()
        } else {
            let entries: Vec<(u64, LayerKey, Option<MappingSearchResult>)> = self.delta_log
                [synced..]
                .iter()
                .filter(|(source, ..)| *source != widx)
                .filter_map(|(_, fp, key)| engine.cache().peek(*fp, key).map(|v| (*fp, *key, v)))
                .collect();
            CacheSnapshot { entries }
        };
        self.workers[widx].synced = self.delta_log.len();
        if snapshot.entries.is_empty() {
            return None;
        }
        telemetry::metrics()
            .coordinator
            .deltas_gossiped
            .add(snapshot.entries.len() as u64);
        Some(serde_json::to_value(&snapshot))
    }

    /// Folds a worker's reply delta into the coordinator: absorb the
    /// values into the local engine cache and append the keys to the
    /// relay log.
    fn record_delta(&mut self, engine: &CoSearchEngine, source: usize, delta: Delta) {
        if delta.entries.is_empty() {
            return;
        }
        let keys: Vec<(u64, LayerKey)> = delta
            .entries
            .iter()
            .map(|(fp, key, _)| (*fp, *key))
            .collect();
        engine.cache().absorb(delta);
        self.log_keys(source, keys);
    }

    fn log_keys(&mut self, source: usize, keys: impl IntoIterator<Item = (u64, LayerKey)>) {
        for (fp, key) in keys {
            if self.seen.insert((fp, key)) {
                self.delta_log.push((source, fp, key));
            }
        }
    }

    /// Drops the delta-log prefix every live worker has already
    /// received (dead workers are resynced with a full snapshot on
    /// rejoin, so the log owes them nothing), and clears the dedup set
    /// past [`SEEN_CAP`]. Called at every generation boundary — this is
    /// what keeps a week-long coordinator's relay bookkeeping flat.
    fn compact_delta_log(&mut self) {
        let min_synced = self
            .workers
            .iter()
            .filter(|w| w.alive)
            .map(|w| w.synced)
            .min()
            .unwrap_or(self.delta_log.len());
        if min_synced > 0 {
            self.delta_log.drain(..min_synced);
            for slot in &mut self.workers {
                slot.synced = slot.synced.saturating_sub(min_synced);
            }
        }
        if self.seen.len() > SEEN_CAP {
            self.seen.clear();
        }
    }

    /// Test-only visibility into the relay bookkeeping.
    #[cfg(test)]
    fn delta_log_len(&self) -> usize {
        self.delta_log.len()
    }
}

/// A fleet handle sharable across concurrent jobs: the gateway's view
/// of one [`DistributedCoordinator`]. Clones share the underlying
/// coordinator behind a mutex, and every step method takes `&self` —
/// concurrent jobs serialize on the fleet one generation at a time
/// (generations are the natural quantum: each is a self-contained
/// fan-out), while the memo-cache gossip they generate is shared, so
/// tenants exploring the same design space warm each other's caches.
/// Because every candidate evaluation is a pure function of its
/// content, interleaving generations of different jobs onto one
/// coordinator leaves each job's trajectory bit-identical to a solo
/// run (fixture-enforced by `tests/tests/gateway.rs`).
#[derive(Clone)]
pub struct SharedCoordinator {
    inner: std::sync::Arc<Mutex<DistributedCoordinator>>,
}

impl SharedCoordinator {
    /// Wraps a connected coordinator for cross-job sharing.
    pub fn new(coordinator: DistributedCoordinator) -> Self {
        Self {
            inner: std::sync::Arc::new(Mutex::new(coordinator)),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, DistributedCoordinator> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// One accelerator-search generation on the shared fleet, with the
    /// job's scenario shipped per call
    /// ([`DistributedCoordinator::step_with_scenario`]).
    pub fn step_accel(
        &self,
        scenario_value: Value,
        engine: &CoSearchEngine,
        model: &CostModel,
        networks: &[Network],
        state: &mut AccelSearchState,
    ) -> bool {
        self.lock()
            .step_with_scenario(scenario_value, engine, model, networks, state)
    }

    /// [`SharedCoordinator::step_accel`] with an explicit speculation
    /// key ([`DistributedCoordinator::step_with_scenario_keyed`]) — the
    /// gateway keys by job id so interleaved tenants never consume each
    /// other's speculative forks.
    #[allow(clippy::too_many_arguments)]
    pub fn step_accel_keyed(
        &self,
        key: u64,
        scenario_value: Value,
        engine: &CoSearchEngine,
        model: &CostModel,
        networks: &[Network],
        state: &mut AccelSearchState,
    ) -> bool {
        self.lock()
            .step_with_scenario_keyed(key, scenario_value, engine, model, networks, state)
    }

    /// Switches the overlap reactor on or off for subsequent steps
    /// ([`DistributedCoordinator::set_overlap`]).
    pub fn set_overlap(&self, overlap: bool) {
        self.lock().set_overlap(overlap);
    }

    /// Bounds the per-key speculation bank
    /// ([`DistributedCoordinator::set_spec_capacity`]).
    pub fn set_spec_capacity(&self, capacity: usize) {
        self.lock().set_spec_capacity(capacity);
    }

    /// Overlap reactor counters accumulated since the coordinator
    /// connected.
    pub fn overlap_stats(&self) -> OverlapStats {
        self.lock().overlap_stats()
    }

    /// One joint-search generation on the shared fleet
    /// ([`DistributedCoordinator::step_joint`]).
    pub fn step_joint(
        &self,
        engine: &CoSearchEngine,
        model: &CostModel,
        accuracy: &AccuracyModel,
        state: &mut JointSearchState,
    ) -> bool {
        self.lock().step_joint(engine, model, accuracy, state)
    }

    /// Workers currently considered alive.
    pub fn live_workers(&self) -> usize {
        self.lock().live_workers()
    }

    /// Scheduler counters accumulated since the coordinator connected.
    pub fn scheduler_stats(&self) -> SchedulerStats {
        self.lock().scheduler_stats()
    }

    /// The shard plan the underlying coordinator was built on.
    pub fn plan(&self) -> ShardPlan {
        self.lock().plan()
    }

    /// Applies scheduler tuning to the underlying coordinator.
    pub fn configure(&self, microshards: Option<usize>, steal_deadline: Option<Duration>) {
        let mut coordinator = self.lock();
        if let Some(microshards) = microshards {
            coordinator.set_microshards(microshards);
        }
        if let Some(deadline) = steal_deadline {
            coordinator.set_steal_deadline(deadline);
        }
    }
}

// ---------------------------------------------------------------------------
// The micro-shard scheduler
// ---------------------------------------------------------------------------

/// Immutable per-generation scheduler tuning, copied into every worker
/// thread.
#[derive(Clone, Copy)]
struct SchedCfg {
    /// Receive/poll tick of the worker threads.
    tick: Duration,
    /// Age past which an in-flight shard is speculatively re-issued.
    deadline: Duration,
    /// `false` = static mode: no stealing, no speculation, no
    /// pipelining (pool pickup of orphaned work still happens).
    dynamic: bool,
}

/// One issued micro-shard: a contiguous candidate range with up to two
/// live copies in flight (the second from speculation). First answer
/// wins; a copy whose every issue failed is retired by re-routing the
/// range (pool or local) and marking the flight done.
struct Flight {
    range: Range<usize>,
    /// Worker that first issued it (speculation does not reassign —
    /// the owner's rate is what the speculation gate compares against).
    owner: usize,
    issued_at: Instant,
    /// Copies issued so far.
    issues: u32,
    /// Copies that failed (death, rejection, lost connection).
    failed: u32,
    /// Resolved: merged, or re-routed. Late replies for a done flight
    /// are duplicates — dropped, never an error.
    done: bool,
}

/// Where a failed flight's range goes when its last copy dies.
enum Reroute {
    /// Back to the shared pool — any worker may pick it up (deaths:
    /// the work itself is fine, the worker was not).
    Pool,
    /// To the coordinator's local fallback (orderly rejections: the
    /// *request* failed, and re-issuing it would fail every healthy
    /// worker in turn).
    Local,
}

/// The shared scheduler state, one instance per generation behind a
/// mutex. Lock hold times are O(queue length) pops and pushes — the
/// heavy work (serialization, I/O, parsing) happens outside.
struct Sched {
    /// Per-worker queues of un-issued ranges (indexed by worker index).
    queues: Vec<VecDeque<Range<usize>>>,
    /// Orphaned ranges any worker may take (ungated: orphan work must
    /// finish even if only slow workers remain).
    pool: VecDeque<Range<usize>>,
    /// Speculative ranges (slots `>= n_primary`): strictly lowest
    /// priority, handed out only while primary work is unresolved, and
    /// abandoned — never re-routed — on any failure.
    spec_pool: VecDeque<Range<usize>>,
    flights: Vec<Flight>,
    /// Ranges destined for the coordinator's local fallback.
    local: Vec<Range<usize>>,
    /// Workers still taking part in this generation.
    active: Vec<bool>,
    /// Throughput EWMA (µs per candidate) snapshot, for gates.
    rates: Vec<Option<f64>>,
    /// The fair chunk size stolen tails are re-split down to.
    base_chunk: usize,
    /// Slots below this index are the real generation; at or above,
    /// speculative work from an installed [`SpecJob`].
    n_primary: usize,
    stats: SchedulerStats,
}

impl Sched {
    /// Every slot resolved: nothing queued or pooled, and every issued
    /// flight answered. Issued speculative shards count — each is a
    /// single unit taken by a fast worker during an otherwise-idle tail
    /// cycle, so the residual stretch is bounded by one pipeline depth
    /// of units, and abandoning it would waste both the compute already
    /// spent and the connection it rode on. The un-issued `spec_pool`
    /// never holds the generation open, and a failed spec copy is
    /// dropped by [`Sched::fail_copy`] rather than re-routed, so a dead
    /// worker cannot hang the barrier on a bet.
    fn done(&self) -> bool {
        self.pool.is_empty()
            && self.queues.iter().all(|q| q.is_empty())
            && self.flights.iter().all(|f| f.done)
    }

    /// Whether any *primary* slot is still unresolved — queued, pooled,
    /// or in a live flight. Once this goes false the generation's
    /// barrier is effectively closed and no new speculative shard may
    /// be issued (its reply could never arrive before the commit).
    fn primary_unresolved(&self) -> bool {
        !self.pool.is_empty()
            || self.queues.iter().any(|q| !q.is_empty())
            || self
                .flights
                .iter()
                .any(|f| !f.done && f.range.start < self.n_primary)
    }

    /// Takes worker `widx` out of the generation and hands its
    /// un-issued queue to the pool.
    fn deactivate(&mut self, widx: usize) {
        self.active[widx] = false;
        let queue = std::mem::take(&mut self.queues[widx]);
        self.pool.extend(queue);
    }

    /// Records that one copy of `fid` failed; when no live copy
    /// remains, retires the flight by re-routing its range.
    fn fail_copy(&mut self, fid: usize, reroute: Reroute) {
        let flight = &mut self.flights[fid];
        if flight.done {
            return;
        }
        flight.failed += 1;
        if flight.failed >= flight.issues {
            flight.done = true;
            let range = flight.range.clone();
            // A failed speculative copy is dropped outright: re-routing
            // would make the primary generation wait on a bet, and the
            // banked ask tolerates `None` slots by construction.
            if range.start >= self.n_primary {
                return;
            }
            self.stats.reissues += 1;
            match reroute {
                Reroute::Pool => self.pool.push_back(range),
                Reroute::Local => self.local.push(range),
            }
        }
    }

    /// Registers a fresh issue of `range` by `owner` and returns the
    /// flight id.
    fn issue(&mut self, range: Range<usize>, owner: usize) -> (usize, Range<usize>) {
        let fid = self.flights.len();
        self.flights.push(Flight {
            range: range.clone(),
            owner,
            issued_at: Instant::now(),
            issues: 1,
            failed: 0,
            done: false,
        });
        self.stats.microshards += 1;
        (fid, range)
    }

    /// Picks the next shard for worker `widx`: own queue, then the
    /// shared pool, then (dynamic mode only) stealing a straggler's
    /// un-issued tail, then speculative re-issue of an overdue flight.
    /// `mine` is the set of flight ids `widx` already has in the air —
    /// a worker never speculates against itself.
    fn next_work(
        &mut self,
        widx: usize,
        mine: &HashSet<usize>,
        cfg: SchedCfg,
    ) -> Option<(usize, Range<usize>)> {
        if let Some(range) = self.queues[widx].pop_front() {
            return Some(self.issue(range, widx));
        }
        if let Some(range) = self.pool.pop_front() {
            return Some(self.issue(range, widx));
        }
        if !cfg.dynamic {
            return self.next_spec(widx);
        }
        // Gate: a known-slow worker (over 2× the best live rate) must
        // not vacuum work from faster ones — idle slow beats busy slow
        // when the fast fleet can still absorb the queue.
        let my_rate = self.rates[widx];
        let best = self
            .rates
            .iter()
            .enumerate()
            .filter(|(w, _)| self.active[*w])
            .filter_map(|(_, r)| *r)
            .fold(f64::INFINITY, f64::min);
        let known_slow = matches!(my_rate, Some(r) if best.is_finite() && r > 2.0 * best);
        if !known_slow {
            // Steal from the victim with the most un-issued work.
            let victim = (0..self.queues.len())
                .filter(|&v| v != widx && self.active[v] && !self.queues[v].is_empty())
                .max_by_key(|&v| self.queues[v].iter().map(Range::len).sum::<usize>());
            if let Some(victim) = victim {
                let mut range = self.queues[victim]
                    .pop_back()
                    .expect("victim queue checked non-empty");
                self.stats.steals += 1;
                if range.len() > 2 * self.base_chunk {
                    // Take a fair chunk off the tail, leave the rest.
                    let cut = range.end - self.base_chunk;
                    self.queues[victim].push_back(range.start..cut);
                    range = cut..range.end;
                    self.stats.resplits += 1;
                }
                return Some(self.issue(range, widx));
            }
        }
        // Speculate on an overdue single-copy flight. Gated on beating
        // the owner's known rate — except long past the deadline, when
        // any copy beats a possibly-hung owner.
        let overdue = self
            .flights
            .iter()
            .enumerate()
            .find(|(fid, f)| {
                !f.done
                    && f.issues - f.failed == 1
                    && !mine.contains(fid)
                    && f.issued_at.elapsed() > cfg.deadline
                    && (f.issued_at.elapsed() > 4 * cfg.deadline
                        || match (my_rate, self.rates[f.owner]) {
                            (Some(me), Some(owner)) => me < owner,
                            _ => true,
                        })
            })
            .map(|(fid, f)| (fid, f.range.clone()));
        if let Some((fid, range)) = overdue {
            self.flights[fid].issues += 1;
            self.stats.speculations += 1;
            return Some((fid, range));
        }
        self.next_spec(widx)
    }

    /// Last resort: speculative next-generation work, only while the
    /// primary generation could still benefit from the overlap, and
    /// only for workers not known to be slow — an issued spec unit is
    /// waited for at the barrier, so handing one to a straggler would
    /// stretch the close by exactly the rate gap the reactor exists to
    /// hide.
    fn next_spec(&mut self, widx: usize) -> Option<(usize, Range<usize>)> {
        let best = self
            .rates
            .iter()
            .enumerate()
            .filter(|(w, _)| self.active[*w])
            .filter_map(|(_, r)| *r)
            .fold(f64::INFINITY, f64::min);
        if matches!(self.rates[widx], Some(r) if best.is_finite() && r > 2.0 * best) {
            return None;
        }
        if self.primary_unresolved() {
            if let Some(range) = self.spec_pool.pop_front() {
                return Some(self.issue(range, widx));
            }
        }
        None
    }
}

/// Why a worker thread declared its worker dead.
enum DeathCause {
    /// Connection/framing failure (I/O error, EOF, bad JSON).
    Transport(String),
    /// The transparent reconnect's handshake failed: the worker was
    /// restarted with a different build mid-run. Ban it.
    Incompatible(String),
    /// A semantically malformed reply (wrong cardinality, bad fields).
    Protocol(String),
}

/// What one scheduler worker thread reports back to the coordinator.
struct WorkerEnd {
    widx: usize,
    death: Option<DeathCause>,
    /// Orderly rejection messages (the worker stays alive; its ranges
    /// went to the local fallback).
    rejections: Vec<String>,
    /// Whether at least one request was actually written — if not, the
    /// pre-computed cache sync advance is rolled back.
    sent_any: bool,
    /// Candidates this worker completed (first-answer wins only).
    completed: u64,
    /// Wall time with at least one request in flight, microseconds —
    /// the busy-fraction numerator and the EWMA denominator's clock.
    busy_us: u64,
}

fn us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

fn sched_lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// Results and reply deltas accumulated across the worker threads.
struct MergeState<T> {
    merged: Vec<Option<T>>,
    /// `(flight id, source worker, delta)` in completion order;
    /// sorted by flight id before being applied.
    deltas: Vec<(usize, usize, Delta)>,
}

/// One worker's scheduler thread: keeps the RPC pipeline full from the
/// shared queues (own → pool → steal → speculate), merges winning
/// replies, drops duplicate late replies by shard id, and reports how
/// it ended. Never touches the coordinator — deaths, events and EWMA
/// updates are applied post-scope from the returned [`WorkerEnd`].
#[allow(clippy::too_many_arguments)]
fn worker_loop<T: Send + Clone>(
    remote: &mut RemoteWorker,
    widx: usize,
    mut cache_param: Option<Value>,
    rate_known: bool,
    cfg: SchedCfg,
    sched: &Mutex<Sched>,
    merge: &Mutex<MergeState<T>>,
    build: &BuildShard<'_>,
    parse: &ParseShard<T>,
    spec: Option<&SpecShared<'_, T>>,
) -> WorkerEnd {
    let mut end = WorkerEnd {
        widx,
        death: None,
        rejections: Vec::new(),
        sent_any: false,
        completed: 0,
        busy_us: 0,
    };
    let n_primary = sched_lock(sched).n_primary;
    // Request id → flight id for this worker's in-flight requests.
    let mut my_flights: HashMap<u64, usize> = HashMap::new();
    let mut busy_start: Option<Instant> = None;
    // Send-ahead depth: 2 once this worker's rate is known, 1 before
    // (don't over-commit to an unmeasured worker), 1 in static mode.
    let depth = if cfg.dynamic && rate_known { 2 } else { 1 };

    'run: loop {
        // ---- death cleanup (entered via `continue 'run` below) ----
        if end.death.is_some() {
            let mut s = sched_lock(sched);
            s.deactivate(widx);
            for (_, fid) in my_flights.drain() {
                s.fail_copy(fid, Reroute::Pool);
            }
            drop(s);
            remote.abandon();
            if let Some(start) = busy_start.take() {
                end.busy_us += us(start.elapsed());
            }
            break 'run;
        }

        // ---- receive one reply: drain the already-arrived fast path
        // first, then wait at most a tick ----
        if remote.pending() > 0 {
            let received = match remote.recv_ready() {
                Ok(None) => remote.recv_next(cfg.tick),
                other => other,
            };
            match received {
                Ok(None) => {}
                Ok(Some((id, inner))) => {
                    let fid = my_flights
                        .remove(&id)
                        .expect("every pipelined id maps to a flight");
                    match inner {
                        Ok(reply) => {
                            // First answer wins: claim the flight, or
                            // drop a stale losing copy.
                            let claim = {
                                let mut s = sched_lock(sched);
                                let flight = &mut s.flights[fid];
                                if flight.done {
                                    s.stats.duplicate_replies += 1;
                                    None
                                } else {
                                    flight.done = true;
                                    Some(flight.range.clone())
                                }
                            };
                            if let Some(range) = claim {
                                match parse(&reply, range.len()) {
                                    Ok((results, delta)) => {
                                        end.completed += range.len() as u64;
                                        let mut m = sched_lock(merge);
                                        for (slot, result) in range.clone().zip(results) {
                                            m.merged[slot] = Some(result);
                                        }
                                        m.deltas.push((fid, widx, delta));
                                    }
                                    Err(message) => {
                                        // Un-claim so the range re-routes.
                                        let mut s = sched_lock(sched);
                                        s.flights[fid].done = false;
                                        s.fail_copy(fid, Reroute::Pool);
                                        drop(s);
                                        end.death = Some(DeathCause::Protocol(message));
                                        continue 'run;
                                    }
                                }
                            }
                        }
                        Err(e @ RemoteError::Remote(_)) => {
                            // Orderly rejection: the worker is healthy,
                            // the request failed. Deactivate it for the
                            // generation; sole-copy ranges go local.
                            end.rejections.push(e.to_string());
                            let mut s = sched_lock(sched);
                            s.deactivate(widx);
                            s.fail_copy(fid, Reroute::Local);
                        }
                        Err(e) => unreachable!("recv_next inner error is always Remote: {e}"),
                    }
                    if remote.pending() == 0 {
                        if let Some(start) = busy_start.take() {
                            end.busy_us += us(start.elapsed());
                        }
                    }
                }
                Err(e) => {
                    end.death = Some(match e {
                        RemoteError::Incompatible(_) => DeathCause::Incompatible(e.to_string()),
                        _ => DeathCause::Transport(e.to_string()),
                    });
                    continue 'run;
                }
            }
        }

        // ---- keep the pipeline full ----
        let mut progressed = false;
        while remote.pending() < depth {
            let mut work = {
                let mut s = sched_lock(sched);
                if s.active[widx] {
                    let mine: HashSet<usize> = my_flights.values().copied().collect();
                    s.next_work(widx, &mine, cfg)
                } else {
                    None
                }
            };
            // Nothing to do is the reactor's speculation event: the
            // first thread to hit it fires the speculative ask, then
            // re-polls for the freshly installed spec ranges.
            if work.is_none() && try_install_spec(sched, merge, spec, n_primary) {
                let mut s = sched_lock(sched);
                if s.active[widx] {
                    let mine: HashSet<usize> = my_flights.values().copied().collect();
                    work = s.next_work(widx, &mine, cfg);
                }
            }
            let Some((fid, range)) = work else { break };
            let mut params = if range.start >= n_primary {
                let job = spec
                    .and_then(|s| s.job.get())
                    .expect("a speculative range implies an installed job");
                (job.build)(range.start - n_primary..range.end - n_primary)
            } else {
                build(range)
            };
            if let Some(cache) = cache_param.take() {
                params.push(("cache".to_string(), cache));
            }
            match remote.send("evaluate_shard", params) {
                Ok(id) => {
                    end.sent_any = true;
                    progressed = true;
                    if busy_start.is_none() {
                        busy_start = Some(Instant::now());
                    }
                    my_flights.insert(id, fid);
                }
                Err(e) => {
                    sched_lock(sched).fail_copy(fid, Reroute::Pool);
                    end.death = Some(match e {
                        RemoteError::Incompatible(_) => DeathCause::Incompatible(e.to_string()),
                        _ => DeathCause::Transport(e.to_string()),
                    });
                    continue 'run;
                }
            }
        }

        // ---- exit / idle ----
        let (done, im_active) = {
            let s = sched_lock(sched);
            (s.done(), s.active[widx])
        };
        if remote.pending() == 0 {
            if done || !im_active {
                break 'run;
            }
            // Nothing in flight and nothing to take yet: idle a beat so
            // stealable or speculatable work can appear.
            if !progressed {
                std::thread::sleep(cfg.tick);
            }
        } else if done {
            // Every flight resolved while this worker still has replies
            // in the air — those can only be lost duplicates of ranges
            // won elsewhere, stale the moment the winner landed. Count
            // the losing copies before walking away: a duplicate is a
            // duplicate whether its reply is read-and-dropped or never
            // read at all, and operators alert on that rate.
            {
                let mut s = sched_lock(sched);
                for (_, fid) in my_flights.drain() {
                    if s.flights[fid].done {
                        s.stats.duplicate_replies += 1;
                    }
                }
            }
            // Abandon the conversation — the worker stays alive and the
            // next generation re-dials transparently.
            remote.abandon();
            if let Some(start) = busy_start.take() {
                end.busy_us += us(start.elapsed());
            }
            break 'run;
        }
    }
    end
}

/// Fires the speculative ask if this thread is the first to find no
/// primary work left to take: snapshots the primary results merged so
/// far, hands them to the hook (which forks the optimizer state,
/// predicts the commit and samples the next generation), and installs
/// the returned job's ranges as lowest-priority work. Returns `true`
/// when spec work was installed just now — the caller should re-poll
/// the scheduler.
///
/// The claim is one-shot per generation once a job installs: firing
/// again after more primary results land would sample a *different*
/// fork and the two could not both be banked. A *declined* ask (hook
/// returned `None`) releases the claim, so later idle events retry
/// against a fuller merge.
fn try_install_spec<T: Send + Clone>(
    sched: &Mutex<Sched>,
    merge: &Mutex<MergeState<T>>,
    spec: Option<&SpecShared<'_, T>>,
    n_primary: usize,
) -> bool {
    let Some(shared) = spec else {
        return false;
    };
    if shared.claimed.swap(true, Ordering::AcqRel) {
        return false;
    }
    // Fully resolved already (tiny generation, instant fleet): there is
    // no idle window left for the overlap to fill.
    if sched_lock(sched).done() {
        return false;
    }
    let snapshot: Vec<Option<T>> = sched_lock(merge).merged[..n_primary].to_vec();
    let Some(job) = (shared.hook)(&snapshot) else {
        // The hook declined (e.g. the merge is not resolved enough to
        // fork from yet): nothing was sampled, so release the claim and
        // let a later idle event retry with a fuller snapshot.
        shared.claimed.store(false, Ordering::Release);
        return false;
    };
    let count = job.count;
    if count == 0 {
        return false;
    }
    if shared.job.set(job).is_err() {
        unreachable!("the claimed gate admits exactly one installer");
    }
    // Order matters: extend the merge domain, then publish the ranges,
    // then flip `installed` — a spec range can only be issued after its
    // merge slot and its builder exist.
    sched_lock(merge).merged.extend((0..count).map(|_| None));
    *sched_lock(&shared.installed_at) = Some(Instant::now());
    {
        // Single-unit spec shards, deliberately finer than the primary
        // chunking: a spec shard in a worker's pipeline delays any
        // primary re-issue that lands behind it, and an issued spec
        // shard is waited for at the barrier — both costs scale with
        // shard size, and the tail the reactor fills is exactly when
        // per-shard RPC overhead is cheapest to afford.
        let mut s = sched_lock(sched);
        for u in 0..count {
            s.spec_pool.push_back(n_primary + u..n_primary + u + 1);
        }
    }
    shared.installed.store(true, Ordering::Release);
    true
}

/// Plans one generation's per-worker micro-shard queues: `n` candidates
/// split among `rates.len()` workers proportionally to throughput
/// (1/rate; unknown rates get the mean known weight) by largest-
/// remainder allocation, each worker's contiguous block then split into
/// at most `per_worker` micro-shards. Blocks are contiguous in
/// candidate order, so any completion order merges bit-identically.
fn microshard_plan(n: usize, rates: &[Option<f64>], per_worker: usize) -> Vec<Vec<Range<usize>>> {
    let k = rates.len();
    if k == 0 {
        return Vec::new();
    }
    let known: Vec<f64> = rates
        .iter()
        .filter_map(|r| *r)
        .filter(|r| *r > 0.0)
        .map(|r| 1.0 / r)
        .collect();
    let default_weight = if known.is_empty() {
        1.0
    } else {
        known.iter().sum::<f64>() / known.len() as f64
    };
    let weights: Vec<f64> = rates
        .iter()
        .map(|r| match r {
            Some(rate) if *rate > 0.0 => 1.0 / rate,
            _ => default_weight,
        })
        .collect();
    let total: f64 = weights.iter().sum();

    // Largest-remainder apportionment of n candidates to k workers.
    let mut alloc: Vec<usize> = Vec::with_capacity(k);
    let mut remainders: Vec<(f64, usize)> = Vec::with_capacity(k);
    let mut assigned = 0usize;
    for (i, w) in weights.iter().enumerate() {
        let exact = n as f64 * w / total;
        let floor = exact.floor() as usize;
        alloc.push(floor);
        assigned += floor;
        remainders.push((exact - floor as f64, i));
    }
    // Ties break toward the lower worker index: deterministic plans.
    remainders.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
    for (_, i) in remainders {
        if assigned >= n {
            break;
        }
        alloc[i] += 1;
        assigned += 1;
    }

    let mut out = Vec::with_capacity(k);
    let mut start = 0usize;
    for len in alloc {
        let block = start..start + len;
        start += len;
        out.push(split_range(block, per_worker));
    }
    debug_assert_eq!(start, n, "the plan covers every candidate exactly once");
    out
}

/// Splits `range` into at most `k` contiguous, near-equal sub-ranges.
fn split_range(range: Range<usize>, k: usize) -> Vec<Range<usize>> {
    shard_ranges(range.len(), k)
        .into_iter()
        .map(|r| range.start + r.start..range.start + r.end)
        .collect()
}

/// Splits `n` candidates into `k` contiguous, near-equal ranges in
/// candidate order (fewer when `n < k`; empty when `k == 0`).
fn shard_ranges(n: usize, k: usize) -> Vec<Range<usize>> {
    if k == 0 {
        return Vec::new();
    }
    let k = k.min(n.max(1));
    let base = n / k;
    let extra = n % k;
    let mut ranges = Vec::with_capacity(k);
    let mut start = 0;
    for shard in 0..k {
        let len = base + usize::from(shard < extra);
        if len == 0 {
            break;
        }
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

/// Decodes the framing shared by both shard-reply shapes: the `results`
/// array (cardinality-checked) and the piggybacked `cache_delta`.
fn parse_reply_frame(reply: &Value, expected: usize) -> Result<(&[Value], Delta), String> {
    let results = reply
        .get("results")
        .and_then(Value::as_array)
        .ok_or_else(|| "shard reply has no `results` array".to_string())?;
    if results.len() != expected {
        return Err(format!(
            "shard size mismatch: sent {expected} candidates, got {} results",
            results.len()
        ));
    }
    let delta = match reply.get("cache_delta") {
        None | Some(Value::Null) => CacheSnapshot {
            entries: Vec::new(),
        },
        Some(value) => {
            serde_json::from_value(value).map_err(|e| format!("invalid `cache_delta`: {e}"))?
        }
    };
    Ok((results, delta))
}

/// Validates wire-sourced evaluation values at the deserialization seam
/// — the trust boundary of the coordinator. `RewardKind::aggregate` and
/// the search fold assume finite positive rewards and well-formed
/// objective vectors; a worker that replies with NaN/negative poison
/// must become a shard error (death + re-issue on another worker),
/// never a panic inside the coordinator's aggregation code.
fn validate_wire_eval(reward: f64, objectives: &ObjectiveVector) -> Result<(), String> {
    if !reward.is_finite() || reward <= 0.0 {
        return Err(format!("wire reward must be finite positive, got {reward}"));
    }
    objectives
        .validate()
        .map_err(|e| format!("wire objectives rejected: {e}"))
}

/// Decodes one accelerator-search `evaluate_shard` reply (protocol v3:
/// each result carries `reward`, `per_network` **and** `objectives`)
/// into per-candidate outcomes and the piggybacked cache delta.
fn parse_shard_reply(
    reply: &Value,
    expected: usize,
) -> Result<(Vec<CandidateOutcome>, Delta), String> {
    let (results, delta) = parse_reply_frame(reply, expected)?;
    let mut outcomes = Vec::with_capacity(expected);
    for entry in results {
        outcomes.push(match entry {
            Value::Null => None,
            value => {
                let reward = value
                    .get("reward")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| "candidate result has no `reward`".to_string())?;
                let per_network: Vec<NetworkCost> = serde_json::from_value(
                    value
                        .get("per_network")
                        .ok_or_else(|| "candidate result has no `per_network`".to_string())?,
                )
                .map_err(|e| format!("invalid `per_network`: {e}"))?;
                let objectives: ObjectiveVector = serde_json::from_value(
                    value
                        .get("objectives")
                        .ok_or_else(|| "candidate result has no `objectives`".to_string())?,
                )
                .map_err(|e| format!("invalid `objectives`: {e}"))?;
                validate_wire_eval(reward, &objectives)?;
                Some(CandidateEval {
                    per_network,
                    objectives,
                    reward,
                })
            }
        });
    }
    Ok((outcomes, delta))
}

/// Decodes one joint-mode `evaluate_shard` reply: per-candidate
/// [`JointCandidateEval`]s (`null` = no feasible subnet) and the cache
/// delta. Wire values pass the same trust-boundary validation as
/// accelerator-mode replies.
fn parse_joint_shard_reply(
    reply: &Value,
    expected: usize,
) -> Result<(Vec<Option<JointCandidateEval>>, Delta), String> {
    let (results, delta) = parse_reply_frame(reply, expected)?;
    let mut outcomes = Vec::with_capacity(expected);
    for entry in results {
        outcomes.push(match entry {
            Value::Null => None,
            value => {
                let eval: JointCandidateEval = serde_json::from_value(value)
                    .map_err(|e| format!("invalid joint candidate outcome: {e}"))?;
                validate_wire_eval(eval.reward, &eval.objectives)?;
                Some(eval)
            }
        });
    }
    Ok((outcomes, delta))
}

/// Decodes one `joint_unit`-mode `evaluate_shard` reply: the raw
/// per-unit [`NetworkCost`] (`null` = no feasible mapping for that
/// subnet on that design) and the cache delta. The derived EDP passes
/// the same finite-positive check as scalar wire rewards — a poisoned
/// cost must fail the shard, never reach the NAS fold.
fn parse_joint_unit_reply(
    reply: &Value,
    expected: usize,
) -> Result<(Vec<Option<NetworkCost>>, Delta), String> {
    let (results, delta) = parse_reply_frame(reply, expected)?;
    let mut outcomes = Vec::with_capacity(expected);
    for entry in results {
        outcomes.push(match entry {
            Value::Null => None,
            value => {
                let cost: NetworkCost = serde_json::from_value(value)
                    .map_err(|e| format!("invalid joint unit cost: {e}"))?;
                let edp = cost.edp();
                if !edp.is_finite() || edp <= 0.0 {
                    return Err(format!("wire unit EDP must be finite positive, got {edp}"));
                }
                Some(cost)
            }
        });
    }
    Ok((outcomes, delta))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_ranges_cover_everything_in_order() {
        for (n, k) in [(20, 4), (7, 3), (3, 5), (1, 2), (0, 3), (16, 1)] {
            let ranges = shard_ranges(n, k);
            let mut covered = 0;
            for r in &ranges {
                assert_eq!(r.start, covered, "contiguous in candidate order");
                covered = r.end;
            }
            assert_eq!(covered, n, "n={n} k={k}");
            assert!(ranges.len() <= k.max(1));
            if n >= k && k > 0 {
                assert_eq!(ranges.len(), k);
                let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
                let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(max - min <= 1, "near-equal shards: {sizes:?}");
            }
        }
    }

    const GOOD_OBJECTIVES: &str =
        r#"{"latency_cycles": 1000, "energy_nj": 5.0, "area_um2": 2.0e6, "accuracy": 0.0}"#;

    #[test]
    fn shard_reply_parsing_rejects_malformed_replies() {
        let good: Value = serde_json::parse_str(&format!(
            r#"{{"results": [null, {{"reward": 2.5, "per_network": [{{"layers": []}}], "objectives": {GOOD_OBJECTIVES}}}]}}"#,
        ))
        .unwrap();
        let (outcomes, delta) = parse_shard_reply(&good, 2).unwrap();
        assert_eq!(outcomes.len(), 2);
        assert!(outcomes[0].is_none());
        assert_eq!(outcomes[1].as_ref().unwrap().reward, 2.5);
        assert_eq!(
            outcomes[1].as_ref().unwrap().objectives.latency_cycles,
            1000
        );
        assert!(delta.entries.is_empty());

        // Wrong cardinality: a truncated reply must not silently merge.
        assert!(parse_shard_reply(&good, 3)
            .unwrap_err()
            .contains("mismatch"));
        let no_results: Value = serde_json::parse_str(r#"{"ok": true}"#).unwrap();
        assert!(parse_shard_reply(&no_results, 1)
            .unwrap_err()
            .contains("results"));
        // Protocol v3: a v2-shaped result (no objective vector) is a
        // protocol error, not a silently defaulted vector.
        let v2_shape: Value = serde_json::parse_str(
            r#"{"results": [{"reward": 2.5, "per_network": [{"layers": []}]}]}"#,
        )
        .unwrap();
        assert!(parse_shard_reply(&v2_shape, 1)
            .unwrap_err()
            .contains("objectives"));
    }

    #[test]
    fn wire_poison_is_a_shard_error_not_a_panic() {
        // NaN reward, non-positive reward, NaN/negative objective
        // components: each must surface as Err from the deserialization
        // seam — the coordinator turns that into worker death +
        // re-issue, and `RewardKind::aggregate`'s panics stay
        // unreachable for wire data.
        for poison in [
            r#"{"reward": null, "per_network": [], "objectives": OBJ}"#.to_string(),
            r#"{"reward": -1.0, "per_network": [], "objectives": OBJ}"#.to_string(),
            r#"{"reward": 2.5, "per_network": [], "objectives": {"latency_cycles": 0, "energy_nj": 5.0, "area_um2": 2.0e6, "accuracy": 0.0}}"#.to_string(),
            r#"{"reward": 2.5, "per_network": [], "objectives": {"latency_cycles": 10, "energy_nj": -5.0, "area_um2": 2.0e6, "accuracy": 0.0}}"#.to_string(),
            r#"{"reward": 2.5, "per_network": [], "objectives": {"latency_cycles": 10, "energy_nj": 5.0, "area_um2": 2.0e6, "accuracy": -3.0}}"#.to_string(),
        ] {
            let reply: Value = serde_json::parse_str(&format!(
                r#"{{"results": [{}]}}"#,
                poison.replace("OBJ", GOOD_OBJECTIVES)
            ))
            .unwrap();
            assert!(
                parse_shard_reply(&reply, 1).is_err(),
                "poison accepted: {poison}"
            );
        }
        // NaN cannot appear in JSON text, but the seam must still hold
        // if a Value carries one (e.g. a future binary framing).
        let mut objectives = ObjectiveVector {
            latency_cycles: 10,
            energy_nj: f64::NAN,
            area_um2: 2.0e6,
            accuracy: 0.0,
        };
        assert!(validate_wire_eval(2.5, &objectives).is_err());
        objectives.energy_nj = 5.0;
        assert!(validate_wire_eval(f64::NAN, &objectives).is_err());
        assert!(validate_wire_eval(2.5, &objectives).is_ok());
    }

    fn synthetic_coordinator(worker_count: usize) -> DistributedCoordinator {
        // Handles are lazy — nothing is dialed, so the relay/compaction
        // bookkeeping can be exercised without a live fleet.
        let workers = (0..worker_count)
            .map(|i| WorkerSlot {
                remote: RemoteWorker::new(format!("127.0.0.1:{}", 1 + i)),
                alive: true,
                synced: 0,
                full_resync: false,
                rejoin_attempts: 0,
                next_retry: 0,
                banned: false,
            })
            .collect();
        let (probe_tx, probe_rx) = mpsc::channel();
        DistributedCoordinator {
            workers,
            scenario_value: Value::Null,
            generation: 0,
            delta_log: Vec::new(),
            seen: HashSet::new(),
            last_slowest: None,
            microshards: DEFAULT_MICROSHARDS,
            steal_deadline: DEFAULT_STEAL_DEADLINE,
            rates: vec![None; worker_count],
            stats_last: SchedulerStats::default(),
            stats_total: SchedulerStats::default(),
            probe_tx,
            probe_rx,
            probing: vec![false; worker_count],
            pareto_published: (0, 0),
            overlap: false,
            accel_spec: HashMap::new(),
            spec_capacity: DEFAULT_SPEC_CAPACITY,
            overlap_stats: OverlapStats::default(),
        }
    }

    fn some_key(i: u64) -> LayerKey {
        LayerKey::of(
            &naas_ir::ConvSpec::conv2d("k", 8 + i, 8, (8, 8), (3, 3), 1, 1)
                .expect("valid conv spec"),
        )
    }

    #[test]
    fn delta_log_compacts_to_the_slowest_live_worker() {
        let mut c = synthetic_coordinator(2);
        c.log_keys(0, (0..10).map(|i| (i, some_key(i))));
        assert_eq!(c.delta_log_len(), 10);

        // Worker 0 has received the first 6 entries, worker 1 the first
        // 4: only the prefix both have seen can go.
        c.workers[0].synced = 6;
        c.workers[1].synced = 4;
        c.compact_delta_log();
        assert_eq!(c.delta_log_len(), 6);
        assert_eq!((c.workers[0].synced, c.workers[1].synced), (2, 0));

        // A dead worker owes the log nothing (it is resynced with a
        // full snapshot on rejoin): compaction follows the live ones.
        c.workers[1].alive = false;
        c.workers[0].synced = 6;
        c.compact_delta_log();
        assert_eq!(c.delta_log_len(), 0);

        // Re-logging a seen key is deduplicated, so the log only grows
        // by genuinely new work.
        c.log_keys(1, [(3, some_key(3)), (99, some_key(99))]);
        assert_eq!(c.delta_log_len(), 1);
    }

    /// Flattens a plan and checks it tiles `0..n` exactly, in order.
    fn assert_plan_covers(plan: &[Vec<Range<usize>>], n: usize) {
        let mut covered = 0;
        for block in plan {
            for r in block {
                assert_eq!(r.start, covered, "contiguous in candidate order");
                covered = r.end;
            }
        }
        assert_eq!(covered, n, "the plan covers every candidate exactly once");
    }

    #[test]
    fn microshard_plan_is_near_equal_when_rates_are_unknown() {
        for (n, k, per) in [(48, 4, 6), (7, 3, 4), (3, 5, 2), (0, 3, 6), (100, 1, 8)] {
            let plan = microshard_plan(n, &vec![None; k], per);
            assert_eq!(plan.len(), k);
            assert_plan_covers(&plan, n);
            let sizes: Vec<usize> = plan
                .iter()
                .map(|b| b.iter().map(Range::len).sum())
                .collect();
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(
                max - min <= 1,
                "near-equal blocks for n={n} k={k}: {sizes:?}"
            );
            for block in &plan {
                assert!(block.len() <= per.max(1), "at most {per} micro-shards");
            }
        }
    }

    #[test]
    fn microshard_plan_shrinks_the_slow_workers_share() {
        // Three workers at 1 µs/candidate, one at 4 µs: the slow one
        // should get about 1/13 of the work (weights 1,1,1,¼).
        let rates = [Some(1.0), Some(1.0), Some(1.0), Some(4.0)];
        let plan = microshard_plan(52, &rates, 6);
        assert_plan_covers(&plan, 52);
        let sizes: Vec<usize> = plan
            .iter()
            .map(|b| b.iter().map(Range::len).sum())
            .collect();
        assert_eq!(sizes, vec![16, 16, 16, 4]);
    }

    #[test]
    fn microshard_plan_gives_unknown_workers_the_mean_known_weight() {
        // One measured fast worker, one unmeasured: the unknown one is
        // assumed to match the known mean, so the split stays even.
        let plan = microshard_plan(10, &[Some(2.0), None], 4);
        assert_plan_covers(&plan, 10);
        let sizes: Vec<usize> = plan
            .iter()
            .map(|b| b.iter().map(Range::len).sum())
            .collect();
        assert_eq!(sizes, vec![5, 5]);
    }

    #[test]
    fn split_range_offsets_preserve_the_parent_range() {
        let parts = split_range(10..25, 4);
        assert_eq!(parts.first().unwrap().start, 10);
        assert_eq!(parts.last().unwrap().end, 25);
        let mut covered = 10;
        for r in &parts {
            assert_eq!(r.start, covered);
            covered = r.end;
        }
        assert_eq!(covered, 25);
    }

    #[test]
    fn scheduler_stats_accumulate() {
        let mut total = SchedulerStats::default();
        let gen = SchedulerStats {
            microshards: 12,
            steals: 3,
            resplits: 1,
            speculations: 2,
            duplicate_replies: 1,
            reissues: 0,
        };
        total.accumulate(gen);
        total.accumulate(gen);
        assert_eq!(total.steals, 6);
        assert_eq!(total.microshards, 24);
        assert_eq!(total.duplicate_replies, 2);
    }

    #[test]
    fn joint_reply_parsing_rejects_malformed_outcomes() {
        let good: Value =
            serde_json::parse_str(r#"{"results": [null], "cache_delta": {"entries": []}}"#)
                .unwrap();
        let (outcomes, _) = parse_joint_shard_reply(&good, 1).unwrap();
        assert_eq!(outcomes, vec![None]);
        let bad: Value = serde_json::parse_str(r#"{"results": [{"nonsense": 1}]}"#).unwrap();
        assert!(parse_joint_shard_reply(&bad, 1)
            .unwrap_err()
            .contains("joint candidate outcome"));
    }
}
