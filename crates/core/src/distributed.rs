//! Distributed population sharding: the outer accelerator **and joint**
//! searches fanned over remote worker processes, with a fleet lifecycle
//! built for week-long runs.
//!
//! The paper's evolutionary co-search evaluates a sampled population per
//! generation, and every candidate's evaluation is a pure function of
//! its content (content-derived inner seeds, content-addressed mapping
//! cache). That purity is what makes distribution *trivial to get right*:
//! a [`DistributedCoordinator`] runs the ordinary sampling/optimizer
//! logic of [`accel_search_step_with`] (or [`joint_search_step_with`] for
//! the joint loop) and only relocates the candidate evaluations — each
//! generation's population is split into contiguous shards in candidate
//! order, one `evaluate_shard` request per live worker (`naas-search
//! worker` processes speaking the JSONL protocol of `docs/PROTOCOL.md`),
//! and the replies are merged back in candidate order. The search
//! trajectory — best design, history, evaluation counts — is
//! **bit-identical** to the single-process run at any worker count,
//! enforced by `tests/tests/distributed.rs`.
//!
//! ## Version handshake
//!
//! Every worker connection (first dial *and* every rejoin re-dial) opens
//! with the `hello` handshake
//! ([`naas_engine::remote::RemoteWorker::enable_handshake`]): protocol
//! versions must match exactly, and the worker advertises capability
//! strings the coordinator gates optional behaviour on (`"joint"` for
//! joint-search shards). A mismatched build — including one swapped in
//! behind a restarted worker — is refused cleanly at dial time instead
//! of corrupting serialized state mid-run.
//!
//! ## Failure model and auto-rejoin
//!
//! A worker that dies mid-generation (connection drop, protocol
//! violation) is marked dead and its shard is re-issued to a surviving
//! worker; when none survive, the coordinator evaluates the shard on
//! its own engine. An orderly error *response* is different: the worker
//! is healthy, the request failed (e.g. a contained handler panic), so
//! the shard goes to the local fallback — where a deterministic failure
//! surfaces exactly as a single-process run would surface it — and the
//! fleet stays alive.
//!
//! Dead workers do **not** stay dead: at each generation boundary the
//! coordinator re-dials every dead worker whose retry is due — the
//! first re-dial one generation after death, then with exponential
//! backoff capped at [`REJOIN_BACKOFF_CAP`] generations. A worker that
//! answers (and passes the handshake again) is re-admitted into the
//! shard plan for that generation, and its first shard request carries
//! a **full cache snapshot** instead of an incremental delta — a
//! restarted worker lost its memo state, and replaying the backlog
//! makes it warm again immediately. A worker that fails the handshake
//! on rejoin (it was restarted with a different build) is banned for
//! the rest of the run. The shard *plan* (the worker address list) is
//! recorded in checkpoints, so a resumed run re-dials the full fleet.
//!
//! ## Cache gossip
//!
//! Shard replies piggyback a `cache_delta`: the mapping results the
//! worker computed since its last report. The coordinator absorbs every
//! delta into its own engine cache (so local fallback and `--cache-file`
//! persistence see fleet-wide results) and relays it to the other
//! workers on their next shard request — a `(design, layer-shape)` pair
//! solved anywhere is solved everywhere, without workers knowing about
//! each other. Relaying is sound for the same reason sharing the
//! in-process cache is: entries are pure functions of their keys.
//!
//! For week-long fleets the relay bookkeeping is bounded: the delta log
//! is compacted at every generation boundary (the prefix every live
//! worker has already received is dropped), and the deduplication set is
//! cleared past [`SEEN_CAP`] keys (duplicated gossip is absorbed
//! idempotently, so clearing costs bytes on the wire, never
//! correctness). Bound the caches themselves with `--cache-cap`
//! ([`naas_engine::MemoCache::set_entry_cap`]).
//!
//! # Examples
//!
//! Wiring a coordinator is two calls — everything else is the ordinary
//! step loop (here against an empty fleet list, which is refused):
//!
//! ```should_panic
//! use naas::distributed::DistributedCoordinator;
//! let scenario = naas_engine::scenario::registry()[0].clone();
//! // Panics: a fleet needs at least one worker address.
//! let _ = DistributedCoordinator::connect(&[], &scenario);
//! ```

use crate::accel_search::{accel_search_step_with, evaluate_candidate, AccelSearchState};
use crate::engine::CoSearchEngine;
use crate::joint::{
    evaluate_joint_candidate, joint_nas_seed, joint_search_step_with, JointSearchState,
};
use crate::mapping_search::MappingSearchResult;
use naas_accel::Accelerator;
use naas_cost::{CostModel, NetworkCost};
use naas_engine::remote::{RemoteError, RemoteWorker};
use naas_engine::telemetry::{self, Level};
use naas_engine::{CacheSnapshot, LayerKey, Scenario};
use naas_ir::Network;
use naas_nas::search::NasOutcome;
use naas_nas::AccuracyModel;
use serde::{Deserialize, Serialize, Value};
use std::collections::HashSet;
use std::ops::Range;

/// The delta-log source marker for entries the coordinator computed
/// itself (local fallback); never matches a worker index, so such
/// entries are relayed to every worker.
const SELF_SOURCE: usize = usize::MAX;

/// Upper bound, in generations, on the re-dial backoff of a dead worker:
/// the first re-dial happens one generation after death, then the gap
/// doubles per failed attempt until it saturates here. A probe against a
/// still-down worker is one refused TCP connect — or, when the machine
/// drops SYNs silently, at most [`CONNECT_TIMEOUT`] — cheap enough to
/// keep probing a week-long run indefinitely.
pub const REJOIN_BACKOFF_CAP: usize = 8;

/// Upper bound on the gossip deduplication set; past it the set is
/// cleared (workers absorb re-relayed entries idempotently, so the cost
/// is wire bytes, not correctness). Bounds coordinator memory on runs
/// whose distinct-key universe never stops growing.
pub const SEEN_CAP: usize = 1 << 20;

/// The capability string a worker must advertise before joint-search
/// shards are routed to it.
const JOINT_CAPABILITY: &str = "joint";

/// Bound on every worker dial (first connect, transparent reconnect,
/// rejoin probe). Rejoin probes run at the generation barrier, so an
/// unreachable-but-not-refusing worker must cost a bounded beat there,
/// never an OS-default connect stall of minutes.
pub const CONNECT_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(5);

/// The serializable record of how a run is sharded — written into
/// checkpoints so `naas-search resume` can re-dial the same fleet
/// without re-stating `--workers`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardPlan {
    /// Worker addresses (`host:port`), in shard order.
    pub workers: Vec<String>,
}

/// One candidate's evaluation outcome, as moved over the wire: per-network
/// costs plus the aggregated reward, or `None` for an infeasible design.
pub type CandidateOutcome = Option<(Vec<NetworkCost>, f64)>;

/// The incremental cache image piggybacked on shard replies.
type Delta = CacheSnapshot<Option<MappingSearchResult>>;

/// The parameter list of one `evaluate_shard` request.
type ShardParams = Vec<(String, Value)>;

/// Builds the mode-specific request parameters for one candidate range
/// (the coordinator appends the cache delta itself).
type BuildShard<'a> = dyn Fn(Range<usize>) -> ShardParams + 'a;

/// Decodes one shard reply into per-candidate results plus the
/// piggybacked cache delta.
type ParseShard<T> = dyn Fn(&Value, usize) -> Result<(Vec<T>, Delta), String>;

/// Evaluates one candidate range on the coordinator's own engine.
type LocalFallback<'a, T> = dyn FnMut(Range<usize>) -> Vec<T> + 'a;

struct WorkerSlot {
    remote: RemoteWorker,
    alive: bool,
    /// Prefix of `delta_log` already shipped to this worker.
    synced: usize,
    /// Set on rejoin: the next shard request carries a full cache
    /// snapshot (the restarted worker lost its memo state) instead of
    /// an incremental delta.
    full_resync: bool,
    /// Failed re-dials since this worker died (drives the backoff).
    rejoin_attempts: u32,
    /// Generation index at which the next re-dial is due.
    next_retry: usize,
    /// A rejoin handshake found an incompatible build: never re-dial.
    banned: bool,
}

impl WorkerSlot {
    /// Marks the slot dead and schedules its first re-dial for the next
    /// generation boundary (unless `ban` — version mismatch — in which
    /// case no re-dial will ever be attempted).
    fn mark_dead(&mut self, generation: usize, ban: bool) {
        self.alive = false;
        self.banned = self.banned || ban;
        self.rejoin_attempts = 0;
        self.next_retry = generation + 1;
    }
}

/// Coordinates a search whose population evaluations are sharded over
/// remote `naas-search worker` processes — [`DistributedCoordinator::step`]
/// for the accelerator search, [`DistributedCoordinator::step_joint`]
/// for the joint loop. See the module docs for the protocol, handshake,
/// rejoin and cache-gossip semantics.
pub struct DistributedCoordinator {
    workers: Vec<WorkerSlot>,
    scenario_value: Value,
    /// The generation index of the step in progress (drives rejoin
    /// scheduling and backoff arithmetic).
    generation: usize,
    /// Every cache key learned so far (worker deltas + local fallback),
    /// with the worker index it came from. Values are *not* duplicated
    /// here — they live in the coordinator's engine cache, and relay
    /// snapshots fetch them by key when a shard request is built.
    /// Compacted every generation down to the suffix some live worker
    /// still needs.
    delta_log: Vec<(usize, u64, LayerKey)>,
    seen: HashSet<(u64, LayerKey)>,
    /// Slowest first-wave shard of the generation in progress
    /// (worker address, wall micros) — telemetry only, reset every
    /// fan-out, surfaced in the per-generation progress event.
    last_slowest: Option<(String, u64)>,
}

impl DistributedCoordinator {
    /// Dials every worker address up front — a mistyped address or a
    /// mismatched build should fail the run at startup, not strand a
    /// shard mid-search. Every connection opens with the `hello`
    /// handshake. The `scenario` travels with every accelerator-search
    /// shard request (as a full object, so `--file` scenarios outside
    /// the worker's registry work too).
    ///
    /// # Errors
    ///
    /// The first [`RemoteError`] of a worker that cannot be reached or
    /// fails the handshake ([`RemoteError::Incompatible`]).
    pub fn connect(addrs: &[String], scenario: &Scenario) -> Result<Self, RemoteError> {
        Self::connect_with(addrs, serde_json::to_value(scenario))
    }

    /// [`DistributedCoordinator::connect`] for a pure joint-search fleet:
    /// joint shards carry their workload in the NAS space, so no
    /// scenario is shipped.
    pub fn connect_joint(addrs: &[String]) -> Result<Self, RemoteError> {
        Self::connect_with(addrs, Value::Null)
    }

    fn connect_with(addrs: &[String], scenario_value: Value) -> Result<Self, RemoteError> {
        assert!(!addrs.is_empty(), "need at least one worker address");
        let mut workers = Vec::with_capacity(addrs.len());
        for addr in addrs {
            let mut remote = RemoteWorker::new(addr.clone());
            remote.enable_handshake("naas-search coordinator");
            // Bound every dial — above all the rejoin probes, which run
            // synchronously at the generation barrier: a powered-off
            // worker (SYNs silently dropped) must cost this much, not
            // the OS connect timeout of minutes.
            remote.set_connect_timeout(CONNECT_TIMEOUT);
            remote.connect()?;
            workers.push(WorkerSlot {
                remote,
                alive: true,
                synced: 0,
                full_resync: false,
                rejoin_attempts: 0,
                next_retry: 0,
                banned: false,
            });
        }
        Ok(DistributedCoordinator {
            workers,
            scenario_value,
            generation: 0,
            delta_log: Vec::new(),
            seen: HashSet::new(),
            last_slowest: None,
        })
    }

    /// The shard plan (worker addresses) this coordinator was built on.
    pub fn plan(&self) -> ShardPlan {
        ShardPlan {
            workers: self
                .workers
                .iter()
                .map(|w| w.remote.addr().to_string())
                .collect(),
        }
    }

    /// Workers currently considered alive.
    pub fn live_workers(&self) -> usize {
        self.workers.iter().filter(|w| w.alive).count()
    }

    /// Advances the accelerator search by one generation, with candidate
    /// evaluations sharded over the workers — the distributed
    /// counterpart of [`crate::accel_search::accel_search_step`],
    /// producing the bit-identical state trajectory. `engine` is the
    /// coordinator's own engine: it absorbs the fleet's cache deltas and
    /// evaluates fallback shards when every worker is dead.
    pub fn step(
        &mut self,
        engine: &CoSearchEngine,
        model: &CostModel,
        networks: &[Network],
        state: &mut AccelSearchState,
    ) -> bool {
        assert!(!networks.is_empty(), "need at least one benchmark network");
        let cfg = state.config;
        self.generation = state.iteration;
        let started = std::time::Instant::now();
        let advanced = accel_search_step_with(state, |slots| {
            self.try_rejoin();
            let scenario_value = self.scenario_value.clone();
            let build = |range: Range<usize>| -> Vec<(String, Value)> {
                let candidates: Vec<Accelerator> =
                    slots[range].iter().map(|(_, a)| a.clone()).collect();
                vec![
                    ("scenario".to_string(), scenario_value.clone()),
                    ("candidates".to_string(), serde_json::to_value(&candidates)),
                    ("mapping".to_string(), serde_json::to_value(&cfg.mapping)),
                    ("reward".to_string(), serde_json::to_value(&cfg.reward)),
                ]
            };
            let mut fallback = |range: Range<usize>| {
                naas_engine::parallel_map(engine.threads(), &slots[range], |_idx, (_, accel)| {
                    evaluate_candidate(engine, model, accel, networks, &cfg.mapping, cfg.reward)
                })
            };
            self.evaluate_sharded(
                engine,
                slots.len(),
                None,
                &build,
                &parse_shard_reply,
                &mut fallback,
            )
        });
        if advanced {
            state.cache_stats = engine.cache_stats();
            self.compact_delta_log();
            self.finish_generation(
                started,
                state.best().map(|b| b.reward),
                engine.cache_stats().hit_rate(),
            );
        }
        advanced
    }

    /// Advances the **joint** search by one outer generation, with each
    /// candidate's whole NAS evolution sharded over the workers — the
    /// distributed counterpart of [`crate::joint::joint_search_step`] on
    /// the [`joint_search_step_with`] seam, bit-identical to the
    /// single-process joint trajectory (fixture-enforced). Only workers
    /// advertising the `"joint"` capability receive joint shards; with
    /// none in the fleet, every generation runs on the local fallback.
    /// The coordinator's `accuracy` model is shipped with every shard,
    /// so workers need no out-of-band surrogate configuration.
    pub fn step_joint(
        &mut self,
        engine: &CoSearchEngine,
        model: &CostModel,
        accuracy: &AccuracyModel,
        state: &mut JointSearchState,
    ) -> bool {
        let cfg = state.config;
        let iteration = state.iteration;
        self.generation = iteration;
        let started = std::time::Instant::now();
        let advanced = joint_search_step_with(state, |slots| {
            self.try_rejoin();
            let build = |range: Range<usize>| -> Vec<(String, Value)> {
                let candidates: Vec<Accelerator> = slots[range.clone()]
                    .iter()
                    .map(|(_, _, a)| a.clone())
                    .collect();
                let seeds: Vec<u64> = slots[range]
                    .iter()
                    .map(|(slot, _, _)| joint_nas_seed(&cfg, iteration, *slot))
                    .collect();
                vec![
                    ("candidates".to_string(), serde_json::to_value(&candidates)),
                    (
                        "mapping".to_string(),
                        serde_json::to_value(&cfg.accel.mapping),
                    ),
                    (
                        "joint".to_string(),
                        Value::Object(vec![
                            ("nas".to_string(), serde_json::to_value(&cfg.nas)),
                            ("seeds".to_string(), serde_json::to_value(&seeds)),
                            ("accuracy".to_string(), serde_json::to_value(accuracy)),
                        ]),
                    ),
                ]
            };
            let mut fallback = |range: Range<usize>| {
                naas_engine::parallel_map(
                    engine.threads(),
                    &slots[range],
                    |_idx, (slot, _, accel)| {
                        evaluate_joint_candidate(
                            engine,
                            model,
                            accuracy,
                            accel,
                            &cfg.accel.mapping,
                            &cfg.nas,
                            joint_nas_seed(&cfg, iteration, *slot),
                        )
                    },
                )
            };
            self.evaluate_sharded(
                engine,
                slots.len(),
                Some(JOINT_CAPABILITY),
                &build,
                &parse_joint_shard_reply,
                &mut fallback,
            )
        });
        if advanced {
            self.compact_delta_log();
            self.finish_generation(
                started,
                state.best().map(|b| b.edp),
                engine.cache_stats().hit_rate(),
            );
        }
        advanced
    }

    /// Telemetry for one completed generation: records the wall time,
    /// bumps the generation counter, and emits the per-generation
    /// progress event (generation index, best reward, cache hit rate,
    /// slowest first-wave shard). Debug level: it flows to the
    /// `--metrics-file` sink without spamming stderr.
    fn finish_generation(
        &mut self,
        started: std::time::Instant,
        best_reward: Option<f64>,
        hit_rate: f64,
    ) {
        let coordinator = &telemetry::metrics().coordinator;
        coordinator.generations.inc();
        coordinator
            .generation_wall
            .observe_duration(started.elapsed());
        let mut fields = vec![
            ("generation".to_string(), Value::U64(self.generation as u64)),
            ("cache_hit_rate".to_string(), Value::F64(hit_rate)),
            (
                "wall_us".to_string(),
                Value::U64(u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX)),
            ),
        ];
        if let Some(reward) = best_reward {
            fields.push(("best_reward".to_string(), Value::F64(reward)));
        }
        if let Some((addr, micros)) = self.last_slowest.take() {
            fields.push(("slowest_shard_worker".to_string(), Value::Str(addr)));
            fields.push(("slowest_shard_us".to_string(), Value::U64(micros)));
        }
        let owned: Vec<(&str, Value)> = fields
            .iter()
            .map(|(k, v)| (k.as_str(), v.clone()))
            .collect();
        telemetry::events().emit(
            Level::Debug,
            "generation",
            &format!("generation {} complete", self.generation),
            &owned,
        );
    }

    /// Re-dials every dead, unbanned worker whose retry is due this
    /// generation. Runs at each generation boundary, before shards are
    /// assigned, so a rejoined worker takes part in the very generation
    /// that re-admitted it.
    fn try_rejoin(&mut self) {
        let generation = self.generation;
        let log_len = self.delta_log.len();
        for slot in &mut self.workers {
            if slot.alive || slot.banned || generation < slot.next_retry {
                continue;
            }
            let addr = slot.remote.addr().to_string();
            slot.remote.disconnect();
            match slot.remote.connect() {
                Ok(()) => {
                    slot.alive = true;
                    slot.full_resync = true;
                    slot.synced = log_len;
                    slot.rejoin_attempts = 0;
                    telemetry::metrics().coordinator.rejoins.inc();
                    telemetry::events().emit(
                        Level::Info,
                        "worker_rejoined",
                        &format!(
                            "worker {addr} rejoined the fleet at generation {generation}; \
                             warming it with a full cache snapshot"
                        ),
                        &[
                            ("worker", Value::Str(addr.clone())),
                            ("generation", Value::U64(generation as u64)),
                        ],
                    );
                }
                Err(e @ RemoteError::Incompatible(_)) => {
                    slot.banned = true;
                    telemetry::events().emit(
                        Level::Error,
                        "worker_banned",
                        &format!(
                            "worker {addr} came back with an incompatible build ({e}); \
                             not re-admitting it"
                        ),
                        &[
                            ("worker", Value::Str(addr.clone())),
                            ("generation", Value::U64(generation as u64)),
                            ("error", Value::Str(e.to_string())),
                        ],
                    );
                }
                Err(e) => {
                    slot.rejoin_attempts += 1;
                    let backoff = (1usize << slot.rejoin_attempts.min(8)).min(REJOIN_BACKOFF_CAP);
                    slot.next_retry = generation + backoff;
                    telemetry::events().emit(
                        Level::Warn,
                        "worker_unreachable",
                        &format!(
                            "worker {addr} still unreachable ({e}); \
                             next re-dial in {backoff} generation(s)"
                        ),
                        &[
                            ("worker", Value::Str(addr.clone())),
                            ("generation", Value::U64(generation as u64)),
                            ("backoff_generations", Value::U64(backoff as u64)),
                            ("error", Value::Str(e.to_string())),
                        ],
                    );
                }
            }
        }
    }

    /// The generic fan-out/merge/re-issue engine under both search
    /// modes: shards `n` candidates over the live workers (optionally
    /// only those advertising `capability`), sends one `evaluate_shard`
    /// request per shard (built by `build`, with the worker's pending
    /// cache delta appended), decodes replies with `parse`, re-issues
    /// the shards of failed workers, and falls back to `fallback` on
    /// the coordinator's own engine when no worker can take a shard.
    /// Results are merged in candidate order — the property that makes
    /// distribution invisible in the trajectory.
    fn evaluate_sharded<T>(
        &mut self,
        engine: &CoSearchEngine,
        n: usize,
        capability: Option<&str>,
        build: &BuildShard<'_>,
        parse: &ParseShard<T>,
        fallback: &mut LocalFallback<'_, T>,
    ) -> Vec<T> {
        let mut merged: Vec<Option<T>> = (0..n).map(|_| None).collect();
        let mut failed: Vec<Range<usize>> = Vec::new();

        // Assign contiguous shards (in candidate order) to eligible
        // workers and build each request up front: the request body
        // snapshots this worker's pending cache delta, and `synced`
        // advances whether or not the call later succeeds (a failed
        // worker is dead; a re-issued shard re-syncs through its new
        // worker).
        let live: Vec<usize> = (0..self.workers.len())
            .filter(|&w| self.eligible(w, capability))
            .collect();
        let mut per_worker: Vec<Option<(Range<usize>, ShardParams)>> =
            (0..self.workers.len()).map(|_| None).collect();
        if live.is_empty() {
            // No worker can take this mode's shards (fleet dead, or no
            // capability match): everything goes to the fallback path.
            failed.push(0..n);
        }
        for (shard, range) in shard_ranges(n, live.len()).into_iter().enumerate() {
            let widx = live[shard];
            let mut params = build(range.clone());
            self.append_cache_param(engine, widx, &mut params);
            per_worker[widx] = Some((range, params));
        }

        // Parallel fan-out: one blocking call per assigned worker.
        type ShardOutcome = (Result<Value, RemoteError>, std::time::Duration);
        let mut outcomes: Vec<(usize, Range<usize>, Result<Value, RemoteError>)> = Vec::new();
        let mut slowest: Option<(String, u64)> = None;
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (widx, slot) in self.workers.iter_mut().enumerate() {
                if let Some((range, params)) = per_worker[widx].take() {
                    let addr = slot.remote.addr().to_string();
                    let handle = scope.spawn(move || -> ShardOutcome {
                        let start = std::time::Instant::now();
                        let outcome = slot.remote.call("evaluate_shard", params);
                        (outcome, start.elapsed())
                    });
                    handles.push((widx, addr, range, handle));
                }
            }
            for (widx, addr, range, handle) in handles {
                let (outcome, elapsed) = handle.join().expect("shard caller panicked");
                let micros = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
                if slowest.as_ref().is_none_or(|(_, m)| micros > *m) {
                    slowest = Some((addr, micros));
                }
                outcomes.push((widx, range, outcome));
            }
        });
        self.last_slowest = slowest;

        for (widx, range, outcome) in outcomes {
            match self.fold_shard_outcome(engine, widx, range.len(), outcome, parse) {
                Ok(results) => {
                    for (slot, result) in range.clone().zip(results) {
                        merged[slot] = Some(result);
                    }
                }
                Err(()) => failed.push(range),
            }
        }

        // Re-issue failed shards to survivors; fall back to the local
        // engine when no worker can take them. Purity makes *where* a
        // shard lands irrelevant to the result.
        for range in failed {
            let results =
                self.reissue_shard(engine, range.clone(), capability, build, parse, fallback);
            for (slot, result) in range.zip(results) {
                merged[slot] = Some(result);
            }
        }
        merged
            .into_iter()
            .map(|r| r.expect("every candidate slot is covered by exactly one shard"))
            .collect()
    }

    /// Whether worker `widx` can take a shard: alive, and advertising
    /// `capability` when one is required.
    fn eligible(&self, widx: usize, capability: Option<&str>) -> bool {
        let slot = &self.workers[widx];
        slot.alive && capability.is_none_or(|c| slot.remote.has_capability(c))
    }

    /// Folds one worker's shard call outcome: merged results on success,
    /// `Err(())` ("re-issue this shard") on worker death. An orderly
    /// error *response* ([`RemoteError::Remote`]) does **not** kill the
    /// worker — the connection and process are fine, the *request*
    /// failed, and re-issuing it elsewhere would just fail (or panic)
    /// every healthy worker in turn. It is reported as a re-issue so the
    /// shard lands on the coordinator's local fallback path, where a
    /// deterministic evaluation failure surfaces exactly as it would in
    /// a single-process run. A handshake failure on a transparent
    /// reconnect ([`RemoteError::Incompatible`] — the worker was
    /// restarted with a different build mid-run) bans the worker from
    /// rejoin on top of marking it dead.
    fn fold_shard_outcome<T>(
        &mut self,
        engine: &CoSearchEngine,
        widx: usize,
        expected: usize,
        outcome: Result<Value, RemoteError>,
        parse: &ParseShard<T>,
    ) -> Result<Vec<T>, ()> {
        let generation = self.generation;
        let addr = self.workers[widx].remote.addr().to_string();
        let coordinator = &telemetry::metrics().coordinator;
        let worker_fields = |error: String| {
            [
                ("worker", Value::Str(addr.clone())),
                ("generation", Value::U64(generation as u64)),
                ("error", Value::Str(error)),
            ]
        };
        let reply = match outcome {
            Ok(reply) => reply,
            Err(e @ RemoteError::Remote(_)) => {
                coordinator.reissues.inc();
                telemetry::events().emit(
                    Level::Warn,
                    "shard_rejected",
                    &format!("worker {addr} rejected its shard ({e}); evaluating it locally"),
                    &worker_fields(e.to_string()),
                );
                return Err(());
            }
            Err(e @ RemoteError::Incompatible(_)) => {
                coordinator.reissues.inc();
                coordinator.deaths.inc();
                telemetry::events().emit(
                    Level::Error,
                    "worker_banned",
                    &format!("worker {addr} reconnected incompatible ({e}); dropping it for good"),
                    &worker_fields(e.to_string()),
                );
                self.workers[widx].mark_dead(generation, true);
                return Err(());
            }
            Err(e) => {
                coordinator.reissues.inc();
                coordinator.deaths.inc();
                telemetry::events().emit(
                    Level::Warn,
                    "worker_died",
                    &format!("worker {addr} died mid-generation ({e}); re-issuing its shard"),
                    &worker_fields(e.to_string()),
                );
                self.workers[widx].mark_dead(generation, false);
                return Err(());
            }
        };
        match parse(&reply, expected) {
            Ok((results, delta)) => {
                self.record_delta(engine, widx, delta);
                Ok(results)
            }
            Err(message) => {
                coordinator.reissues.inc();
                coordinator.deaths.inc();
                telemetry::events().emit(
                    Level::Warn,
                    "shard_protocol_violation",
                    &format!(
                        "worker {addr} violated the shard protocol ({message}); \
                         re-issuing its shard"
                    ),
                    &worker_fields(message),
                );
                self.workers[widx].mark_dead(generation, false);
                Err(())
            }
        }
    }

    /// Sends one shard to the first surviving eligible worker (marking
    /// further casualties dead as it goes); evaluates locally once none
    /// remain or a worker returns an orderly error response (see
    /// [`Self::fold_shard_outcome`]). Local fallback work is journaled
    /// and gossiped like any worker's.
    fn reissue_shard<T>(
        &mut self,
        engine: &CoSearchEngine,
        range: Range<usize>,
        capability: Option<&str>,
        build: &BuildShard<'_>,
        parse: &ParseShard<T>,
        fallback: &mut LocalFallback<'_, T>,
    ) -> Vec<T> {
        while let Some(widx) = (0..self.workers.len()).find(|&w| self.eligible(w, capability)) {
            let mut params = build(range.clone());
            self.append_cache_param(engine, widx, &mut params);
            let outcome = self.workers[widx].remote.call("evaluate_shard", params);
            let was_remote_rejection = matches!(outcome, Err(RemoteError::Remote(_)));
            match self.fold_shard_outcome(engine, widx, range.len(), outcome, parse) {
                Ok(results) => return results,
                Err(()) if was_remote_rejection => break, // worker is fine; go local
                Err(()) => continue,                      // worker died; try the next one
            }
        }
        telemetry::events().emit(
            Level::Info,
            "local_fallback",
            "evaluating shard on the coordinator",
            &[
                ("generation", Value::U64(self.generation as u64)),
                ("candidates", Value::U64(range.len() as u64)),
            ],
        );
        engine.cache().enable_journal();
        let results = fallback(range);
        let delta = engine.cache().take_new_entries();
        self.log_keys(
            SELF_SOURCE,
            delta.entries.iter().map(|(fp, key, _)| (*fp, *key)),
        );
        results
    }

    /// Appends the `cache` parameter for `widx`'s next shard request and
    /// advances its sync point: an incremental delta of every logged
    /// entry this worker has not seen and did not itself report — or,
    /// right after a rejoin, a full snapshot of the coordinator's engine
    /// cache (the restarted worker lost everything; this is the backlog
    /// replay that makes it warm again). Values are fetched from the
    /// engine cache at build time, so evicted entries simply drop out of
    /// the relay.
    fn append_cache_param(
        &mut self,
        engine: &CoSearchEngine,
        widx: usize,
        params: &mut Vec<(String, Value)>,
    ) {
        let full_resync = std::mem::take(&mut self.workers[widx].full_resync);
        let synced = self.workers[widx].synced;
        let snapshot = if full_resync {
            engine.cache().snapshot()
        } else {
            let entries: Vec<(u64, LayerKey, Option<MappingSearchResult>)> = self.delta_log
                [synced..]
                .iter()
                .filter(|(source, ..)| *source != widx)
                .filter_map(|(_, fp, key)| engine.cache().peek(*fp, key).map(|v| (*fp, *key, v)))
                .collect();
            CacheSnapshot { entries }
        };
        if !snapshot.entries.is_empty() {
            telemetry::metrics()
                .coordinator
                .deltas_gossiped
                .add(snapshot.entries.len() as u64);
            params.push(("cache".to_string(), serde_json::to_value(&snapshot)));
        }
        self.workers[widx].synced = self.delta_log.len();
    }

    /// Folds a worker's reply delta into the coordinator: absorb the
    /// values into the local engine cache and append the keys to the
    /// relay log.
    fn record_delta(&mut self, engine: &CoSearchEngine, source: usize, delta: Delta) {
        if delta.entries.is_empty() {
            return;
        }
        let keys: Vec<(u64, LayerKey)> = delta
            .entries
            .iter()
            .map(|(fp, key, _)| (*fp, *key))
            .collect();
        engine.cache().absorb(delta);
        self.log_keys(source, keys);
    }

    fn log_keys(&mut self, source: usize, keys: impl IntoIterator<Item = (u64, LayerKey)>) {
        for (fp, key) in keys {
            if self.seen.insert((fp, key)) {
                self.delta_log.push((source, fp, key));
            }
        }
    }

    /// Drops the delta-log prefix every live worker has already
    /// received (dead workers are resynced with a full snapshot on
    /// rejoin, so the log owes them nothing), and clears the dedup set
    /// past [`SEEN_CAP`]. Called at every generation boundary — this is
    /// what keeps a week-long coordinator's relay bookkeeping flat.
    fn compact_delta_log(&mut self) {
        let min_synced = self
            .workers
            .iter()
            .filter(|w| w.alive)
            .map(|w| w.synced)
            .min()
            .unwrap_or(self.delta_log.len());
        if min_synced > 0 {
            self.delta_log.drain(..min_synced);
            for slot in &mut self.workers {
                slot.synced = slot.synced.saturating_sub(min_synced);
            }
        }
        if self.seen.len() > SEEN_CAP {
            self.seen.clear();
        }
    }

    /// Test-only visibility into the relay bookkeeping.
    #[cfg(test)]
    fn delta_log_len(&self) -> usize {
        self.delta_log.len()
    }
}

/// Splits `n` candidates into `k` contiguous, near-equal ranges in
/// candidate order (fewer when `n < k`; empty when `k == 0`).
fn shard_ranges(n: usize, k: usize) -> Vec<Range<usize>> {
    if k == 0 {
        return Vec::new();
    }
    let k = k.min(n.max(1));
    let base = n / k;
    let extra = n % k;
    let mut ranges = Vec::with_capacity(k);
    let mut start = 0;
    for shard in 0..k {
        let len = base + usize::from(shard < extra);
        if len == 0 {
            break;
        }
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

/// Decodes the framing shared by both shard-reply shapes: the `results`
/// array (cardinality-checked) and the piggybacked `cache_delta`.
fn parse_reply_frame(reply: &Value, expected: usize) -> Result<(&[Value], Delta), String> {
    let results = reply
        .get("results")
        .and_then(Value::as_array)
        .ok_or_else(|| "shard reply has no `results` array".to_string())?;
    if results.len() != expected {
        return Err(format!(
            "shard size mismatch: sent {expected} candidates, got {} results",
            results.len()
        ));
    }
    let delta = match reply.get("cache_delta") {
        None | Some(Value::Null) => CacheSnapshot {
            entries: Vec::new(),
        },
        Some(value) => {
            serde_json::from_value(value).map_err(|e| format!("invalid `cache_delta`: {e}"))?
        }
    };
    Ok((results, delta))
}

/// Decodes one accelerator-search `evaluate_shard` reply into
/// per-candidate outcomes and the piggybacked cache delta.
fn parse_shard_reply(
    reply: &Value,
    expected: usize,
) -> Result<(Vec<CandidateOutcome>, Delta), String> {
    let (results, delta) = parse_reply_frame(reply, expected)?;
    let mut outcomes = Vec::with_capacity(expected);
    for entry in results {
        outcomes.push(match entry {
            Value::Null => None,
            value => {
                let reward = value
                    .get("reward")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| "candidate result has no `reward`".to_string())?;
                let per_network: Vec<NetworkCost> = serde_json::from_value(
                    value
                        .get("per_network")
                        .ok_or_else(|| "candidate result has no `per_network`".to_string())?,
                )
                .map_err(|e| format!("invalid `per_network`: {e}"))?;
                Some((per_network, reward))
            }
        });
    }
    Ok((outcomes, delta))
}

/// Decodes one joint-mode `evaluate_shard` reply: per-candidate
/// [`NasOutcome`]s (`null` = no feasible subnet) and the cache delta.
fn parse_joint_shard_reply(
    reply: &Value,
    expected: usize,
) -> Result<(Vec<Option<NasOutcome>>, Delta), String> {
    let (results, delta) = parse_reply_frame(reply, expected)?;
    let mut outcomes = Vec::with_capacity(expected);
    for entry in results {
        outcomes.push(match entry {
            Value::Null => None,
            value => Some(
                serde_json::from_value(value)
                    .map_err(|e| format!("invalid joint candidate outcome: {e}"))?,
            ),
        });
    }
    Ok((outcomes, delta))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_ranges_cover_everything_in_order() {
        for (n, k) in [(20, 4), (7, 3), (3, 5), (1, 2), (0, 3), (16, 1)] {
            let ranges = shard_ranges(n, k);
            let mut covered = 0;
            for r in &ranges {
                assert_eq!(r.start, covered, "contiguous in candidate order");
                covered = r.end;
            }
            assert_eq!(covered, n, "n={n} k={k}");
            assert!(ranges.len() <= k.max(1));
            if n >= k && k > 0 {
                assert_eq!(ranges.len(), k);
                let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
                let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(max - min <= 1, "near-equal shards: {sizes:?}");
            }
        }
    }

    #[test]
    fn shard_reply_parsing_rejects_malformed_replies() {
        let good: Value = serde_json::parse_str(
            r#"{"results": [null, {"reward": 2.5, "per_network": [{"layers": []}]}]}"#,
        )
        .unwrap();
        let (outcomes, delta) = parse_shard_reply(&good, 2).unwrap();
        assert_eq!(outcomes.len(), 2);
        assert!(outcomes[0].is_none());
        assert_eq!(outcomes[1].as_ref().unwrap().1, 2.5);
        assert!(delta.entries.is_empty());

        // Wrong cardinality: a truncated reply must not silently merge.
        assert!(parse_shard_reply(&good, 3)
            .unwrap_err()
            .contains("mismatch"));
        let no_results: Value = serde_json::parse_str(r#"{"ok": true}"#).unwrap();
        assert!(parse_shard_reply(&no_results, 1)
            .unwrap_err()
            .contains("results"));
    }

    fn synthetic_coordinator(worker_count: usize) -> DistributedCoordinator {
        // Handles are lazy — nothing is dialed, so the relay/compaction
        // bookkeeping can be exercised without a live fleet.
        let workers = (0..worker_count)
            .map(|i| WorkerSlot {
                remote: RemoteWorker::new(format!("127.0.0.1:{}", 1 + i)),
                alive: true,
                synced: 0,
                full_resync: false,
                rejoin_attempts: 0,
                next_retry: 0,
                banned: false,
            })
            .collect();
        DistributedCoordinator {
            workers,
            scenario_value: Value::Null,
            generation: 0,
            delta_log: Vec::new(),
            seen: HashSet::new(),
            last_slowest: None,
        }
    }

    fn some_key(i: u64) -> LayerKey {
        LayerKey::of(
            &naas_ir::ConvSpec::conv2d("k", 8 + i, 8, (8, 8), (3, 3), 1, 1)
                .expect("valid conv spec"),
        )
    }

    #[test]
    fn delta_log_compacts_to_the_slowest_live_worker() {
        let mut c = synthetic_coordinator(2);
        c.log_keys(0, (0..10).map(|i| (i, some_key(i))));
        assert_eq!(c.delta_log_len(), 10);

        // Worker 0 has received the first 6 entries, worker 1 the first
        // 4: only the prefix both have seen can go.
        c.workers[0].synced = 6;
        c.workers[1].synced = 4;
        c.compact_delta_log();
        assert_eq!(c.delta_log_len(), 6);
        assert_eq!((c.workers[0].synced, c.workers[1].synced), (2, 0));

        // A dead worker owes the log nothing (it is resynced with a
        // full snapshot on rejoin): compaction follows the live ones.
        c.workers[1].alive = false;
        c.workers[0].synced = 6;
        c.compact_delta_log();
        assert_eq!(c.delta_log_len(), 0);

        // Re-logging a seen key is deduplicated, so the log only grows
        // by genuinely new work.
        c.log_keys(1, [(3, some_key(3)), (99, some_key(99))]);
        assert_eq!(c.delta_log_len(), 1);
    }

    #[test]
    fn joint_reply_parsing_rejects_malformed_outcomes() {
        let good: Value =
            serde_json::parse_str(r#"{"results": [null], "cache_delta": {"entries": []}}"#)
                .unwrap();
        let (outcomes, _) = parse_joint_shard_reply(&good, 1).unwrap();
        assert_eq!(outcomes, vec![None]);
        let bad: Value = serde_json::parse_str(r#"{"results": [{"nonsense": 1}]}"#).unwrap();
        assert!(parse_joint_shard_reply(&bad, 1)
            .unwrap_err()
            .contains("joint candidate outcome"));
    }
}
