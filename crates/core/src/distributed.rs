//! Distributed population sharding: the outer accelerator search fanned
//! over remote worker processes.
//!
//! The paper's evolutionary co-search evaluates a sampled population per
//! generation, and every candidate's evaluation is a pure function of
//! its content (content-derived inner seeds, content-addressed mapping
//! cache). That purity is what makes distribution *trivial to get right*:
//! a [`DistributedCoordinator`] runs the ordinary sampling/optimizer
//! logic of [`accel_search_step_with`] and only relocates the candidate
//! evaluations — each generation's population is split into contiguous
//! shards in candidate order, one `evaluate_shard` request per live
//! worker (`naas-search worker` processes speaking the JSONL protocol of
//! `docs/PROTOCOL.md`), and the replies are merged back in candidate
//! order. The search trajectory — best design, history, evaluation
//! counts — is **bit-identical** to the single-process run at any worker
//! count, enforced by `tests/tests/distributed.rs`.
//!
//! ## Failure model
//!
//! A worker that dies mid-generation (connection drop, protocol
//! violation) is marked dead and its shard is re-issued to a surviving
//! worker; when none survive, the coordinator evaluates the shard on
//! its own engine. An orderly error *response* is different: the worker
//! is healthy, the request failed (e.g. a contained handler panic), so
//! the shard goes to the local fallback — where a deterministic failure
//! surfaces exactly as a single-process run would surface it — and the
//! fleet stays alive. Dead workers stay dead for the rest of the run —
//! the shard *plan* (the worker address list) is recorded in
//! checkpoints, so a resumed run can re-dial the full fleet.
//!
//! ## Cache gossip
//!
//! Shard replies piggyback a `cache_delta`: the mapping results the
//! worker computed since its last report. The coordinator absorbs every
//! delta into its own engine cache (so local fallback and `--cache-file`
//! persistence see fleet-wide results) and relays it to the other
//! workers on their next shard request — a `(design, layer-shape)` pair
//! solved anywhere is solved everywhere, without workers knowing about
//! each other. Relaying is sound for the same reason sharing the
//! in-process cache is: entries are pure functions of their keys.

use crate::accel_search::{
    accel_search_step_with, evaluate_candidate, AccelSearchConfig, AccelSearchState,
};
use crate::engine::CoSearchEngine;
use crate::mapping_search::MappingSearchResult;
use naas_accel::Accelerator;
use naas_cost::{CostModel, NetworkCost};
use naas_engine::remote::{RemoteError, RemoteWorker};
use naas_engine::{parallel_map, CacheSnapshot, LayerKey, Scenario};
use naas_ir::Network;
use serde::{Deserialize, Serialize, Value};
use std::collections::HashSet;
use std::ops::Range;

/// The delta-log source marker for entries the coordinator computed
/// itself (local fallback); never matches a worker index, so such
/// entries are relayed to every worker.
const SELF_SOURCE: usize = usize::MAX;

/// The serializable record of how a run is sharded — written into
/// checkpoints so `naas-search resume` can re-dial the same fleet
/// without re-stating `--workers`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardPlan {
    /// Worker addresses (`host:port`), in shard order.
    pub workers: Vec<String>,
}

/// One candidate's evaluation outcome, as moved over the wire: per-network
/// costs plus the aggregated reward, or `None` for an infeasible design.
pub type CandidateOutcome = Option<(Vec<NetworkCost>, f64)>;

/// A worker's shard assignment for one generation: the candidate range
/// plus the prebuilt request parameters.
type ShardAssignment = (Range<usize>, Vec<(String, Value)>);

struct WorkerSlot {
    remote: RemoteWorker,
    alive: bool,
    /// Prefix of `delta_log` already shipped to this worker.
    synced: usize,
}

/// Coordinates an accelerator search whose population evaluations are
/// sharded over remote `naas-search worker` processes. See the module
/// docs for the protocol, failure and cache-gossip semantics.
pub struct DistributedCoordinator {
    workers: Vec<WorkerSlot>,
    scenario_value: Value,
    /// Every cache key learned so far (worker deltas + local fallback),
    /// with the worker index it came from. Values are *not* duplicated
    /// here — they live in the coordinator's engine cache, and relay
    /// snapshots fetch them by key when a shard request is built.
    delta_log: Vec<(usize, u64, LayerKey)>,
    seen: HashSet<(u64, LayerKey)>,
}

impl DistributedCoordinator {
    /// Dials every worker address up front — a mistyped address should
    /// fail the run at startup, not strand a shard mid-search. The
    /// `scenario` travels with every shard request (as a full object, so
    /// `--file` scenarios outside the worker's registry work too).
    ///
    /// # Errors
    ///
    /// The first [`RemoteError`] of a worker that cannot be reached.
    pub fn connect(addrs: &[String], scenario: &Scenario) -> Result<Self, RemoteError> {
        assert!(!addrs.is_empty(), "need at least one worker address");
        let mut workers = Vec::with_capacity(addrs.len());
        for addr in addrs {
            let mut remote = RemoteWorker::new(addr.clone());
            remote.connect()?;
            workers.push(WorkerSlot {
                remote,
                alive: true,
                synced: 0,
            });
        }
        Ok(DistributedCoordinator {
            workers,
            scenario_value: serde_json::to_value(scenario),
            delta_log: Vec::new(),
            seen: HashSet::new(),
        })
    }

    /// The shard plan (worker addresses) this coordinator was built on.
    pub fn plan(&self) -> ShardPlan {
        ShardPlan {
            workers: self
                .workers
                .iter()
                .map(|w| w.remote.addr().to_string())
                .collect(),
        }
    }

    /// Workers still considered alive.
    pub fn live_workers(&self) -> usize {
        self.workers.iter().filter(|w| w.alive).count()
    }

    /// Advances the search by one generation, with candidate evaluations
    /// sharded over the workers — the distributed counterpart of
    /// [`crate::accel_search::accel_search_step`], producing the
    /// bit-identical state trajectory. `engine` is the coordinator's own
    /// engine: it absorbs the fleet's cache deltas and evaluates
    /// fallback shards when every worker is dead.
    pub fn step(
        &mut self,
        engine: &CoSearchEngine,
        model: &CostModel,
        networks: &[Network],
        state: &mut AccelSearchState,
    ) -> bool {
        assert!(!networks.is_empty(), "need at least one benchmark network");
        let cfg = state.config;
        let advanced = accel_search_step_with(state, |slots| {
            self.evaluate_generation(engine, model, networks, &cfg, slots)
        });
        if advanced {
            state.cache_stats = engine.cache_stats();
        }
        advanced
    }

    /// Evaluates one generation's candidates: fan out, merge in candidate
    /// order, re-issue dead workers' shards.
    fn evaluate_generation(
        &mut self,
        engine: &CoSearchEngine,
        model: &CostModel,
        networks: &[Network],
        cfg: &AccelSearchConfig,
        slots: &[(Vec<f64>, Accelerator)],
    ) -> Vec<CandidateOutcome> {
        let mut merged: Vec<Option<CandidateOutcome>> = vec![None; slots.len()];
        let mut failed: Vec<Range<usize>> = Vec::new();

        // Assign contiguous shards (in candidate order) to live workers
        // and build each request up front: the request body snapshots
        // this worker's pending cache delta, and `synced` advances
        // whether or not the call later succeeds (a failed worker is
        // dead; a re-issued shard re-syncs through its new worker).
        let live: Vec<usize> = (0..self.workers.len())
            .filter(|&w| self.workers[w].alive)
            .collect();
        let mut per_worker: Vec<Option<ShardAssignment>> =
            (0..self.workers.len()).map(|_| None).collect();
        if live.is_empty() {
            // The whole fleet died in an earlier generation: everything
            // goes straight to the fallback path.
            failed.push(0..slots.len());
        }
        for (shard, range) in shard_ranges(slots.len(), live.len())
            .into_iter()
            .enumerate()
        {
            let widx = live[shard];
            let params = self.shard_params(engine, widx, &slots[range.clone()], cfg);
            self.workers[widx].synced = self.delta_log.len();
            per_worker[widx] = Some((range, params));
        }

        // Parallel fan-out: one blocking call per assigned worker.
        let mut outcomes: Vec<(usize, Range<usize>, Result<Value, RemoteError>)> = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (widx, slot) in self.workers.iter_mut().enumerate() {
                if let Some((range, params)) = per_worker[widx].take() {
                    let handle = scope.spawn(move || slot.remote.call("evaluate_shard", params));
                    handles.push((widx, range, handle));
                }
            }
            for (widx, range, handle) in handles {
                outcomes.push((widx, range, handle.join().expect("shard caller panicked")));
            }
        });

        for (widx, range, outcome) in outcomes {
            match self.fold_shard_outcome(engine, widx, range.len(), outcome) {
                Ok(results) => {
                    for (slot, result) in range.clone().zip(results) {
                        merged[slot] = Some(result);
                    }
                }
                Err(()) => failed.push(range),
            }
        }

        // Re-issue failed shards to survivors; fall back to the local
        // engine when the whole fleet is gone. Purity makes *where* a
        // shard lands irrelevant to the result.
        for range in failed {
            let results = self.reissue_shard(engine, model, networks, cfg, &slots[range.clone()]);
            for (slot, result) in range.zip(results) {
                merged[slot] = Some(result);
            }
        }
        merged
            .into_iter()
            .map(|r| r.expect("every candidate slot is covered by exactly one shard"))
            .collect()
    }

    /// Folds one worker's shard call outcome: merged results on success,
    /// `Err(())` ("re-issue this shard") on worker death. An orderly
    /// error *response* ([`RemoteError::Remote`]) does **not** kill the
    /// worker — the connection and process are fine, the *request*
    /// failed, and re-issuing it elsewhere would just fail (or panic)
    /// every healthy worker in turn. It is reported as a re-issue so the
    /// shard lands on the coordinator's local fallback path, where a
    /// deterministic evaluation failure surfaces exactly as it would in
    /// a single-process run.
    fn fold_shard_outcome(
        &mut self,
        engine: &CoSearchEngine,
        widx: usize,
        expected: usize,
        outcome: Result<Value, RemoteError>,
    ) -> Result<Vec<CandidateOutcome>, ()> {
        let addr = self.workers[widx].remote.addr().to_string();
        let reply = match outcome {
            Ok(reply) => reply,
            Err(e @ RemoteError::Remote(_)) => {
                eprintln!("worker {addr} rejected its shard ({e}); evaluating it locally");
                return Err(());
            }
            Err(e) => {
                eprintln!("worker {addr} died mid-generation ({e}); re-issuing its shard");
                self.workers[widx].alive = false;
                return Err(());
            }
        };
        match parse_shard_reply(&reply, expected) {
            Ok((results, delta)) => {
                self.record_delta(engine, widx, delta);
                Ok(results)
            }
            Err(message) => {
                eprintln!(
                    "worker {addr} violated the shard protocol ({message}); re-issuing its shard"
                );
                self.workers[widx].alive = false;
                Err(())
            }
        }
    }

    /// Sends one shard to the first surviving worker (marking further
    /// casualties dead as it goes); evaluates locally once none remain
    /// or a worker returns an orderly error response (see
    /// [`Self::fold_shard_outcome`]).
    fn reissue_shard(
        &mut self,
        engine: &CoSearchEngine,
        model: &CostModel,
        networks: &[Network],
        cfg: &AccelSearchConfig,
        shard: &[(Vec<f64>, Accelerator)],
    ) -> Vec<CandidateOutcome> {
        while let Some(widx) = (0..self.workers.len()).find(|&w| self.workers[w].alive) {
            let params = self.shard_params(engine, widx, shard, cfg);
            self.workers[widx].synced = self.delta_log.len();
            let outcome = self.workers[widx].remote.call("evaluate_shard", params);
            let was_remote_rejection = matches!(outcome, Err(RemoteError::Remote(_)));
            match self.fold_shard_outcome(engine, widx, shard.len(), outcome) {
                Ok(results) => return results,
                Err(()) if was_remote_rejection => break, // worker is fine; go local
                Err(()) => continue,                      // worker died; try the next one
            }
        }
        eprintln!("evaluating shard on the coordinator");
        engine.cache().enable_journal();
        let results = parallel_map(engine.threads(), shard, |_idx, (_, accel)| {
            evaluate_candidate(engine, model, accel, networks, &cfg.mapping, cfg.reward)
        });
        let delta = engine.cache().take_new_entries();
        self.log_keys(
            SELF_SOURCE,
            delta.entries.iter().map(|(fp, key, _)| (*fp, *key)),
        );
        results
    }

    /// The `evaluate_shard` request body for `widx`: candidates, search
    /// config, scenario, plus every logged cache entry this worker has
    /// not seen and did not itself report (values fetched from the
    /// coordinator's engine cache at build time).
    fn shard_params(
        &self,
        engine: &CoSearchEngine,
        widx: usize,
        shard: &[(Vec<f64>, Accelerator)],
        cfg: &AccelSearchConfig,
    ) -> Vec<(String, Value)> {
        let candidates: Vec<Accelerator> = shard.iter().map(|(_, a)| a.clone()).collect();
        let mut params = vec![
            ("scenario".to_string(), self.scenario_value.clone()),
            ("candidates".to_string(), serde_json::to_value(&candidates)),
            ("mapping".to_string(), serde_json::to_value(&cfg.mapping)),
            ("reward".to_string(), serde_json::to_value(&cfg.reward)),
        ];
        let pending: Vec<(u64, LayerKey, Option<MappingSearchResult>)> = self.delta_log
            [self.workers[widx].synced..]
            .iter()
            .filter(|(source, ..)| *source != widx)
            .filter_map(|(_, fp, key)| engine.cache().peek(*fp, key).map(|v| (*fp, *key, v)))
            .collect();
        if !pending.is_empty() {
            params.push((
                "cache".to_string(),
                serde_json::to_value(&CacheSnapshot { entries: pending }),
            ));
        }
        params
    }

    /// Folds a worker's reply delta into the coordinator: absorb the
    /// values into the local engine cache and append the keys to the
    /// relay log.
    fn record_delta(
        &mut self,
        engine: &CoSearchEngine,
        source: usize,
        delta: CacheSnapshot<Option<MappingSearchResult>>,
    ) {
        if delta.entries.is_empty() {
            return;
        }
        let keys: Vec<(u64, LayerKey)> = delta
            .entries
            .iter()
            .map(|(fp, key, _)| (*fp, *key))
            .collect();
        engine.cache().absorb(delta);
        self.log_keys(source, keys);
    }

    fn log_keys(&mut self, source: usize, keys: impl IntoIterator<Item = (u64, LayerKey)>) {
        for (fp, key) in keys {
            if self.seen.insert((fp, key)) {
                self.delta_log.push((source, fp, key));
            }
        }
    }
}

/// Splits `n` candidates into `k` contiguous, near-equal ranges in
/// candidate order (fewer when `n < k`; empty when `k == 0`).
fn shard_ranges(n: usize, k: usize) -> Vec<Range<usize>> {
    if k == 0 {
        return Vec::new();
    }
    let k = k.min(n.max(1));
    let base = n / k;
    let extra = n % k;
    let mut ranges = Vec::with_capacity(k);
    let mut start = 0;
    for shard in 0..k {
        let len = base + usize::from(shard < extra);
        if len == 0 {
            break;
        }
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

/// Decodes one `evaluate_shard` reply into per-candidate outcomes and
/// the piggybacked cache delta.
fn parse_shard_reply(
    reply: &Value,
    expected: usize,
) -> Result<
    (
        Vec<CandidateOutcome>,
        CacheSnapshot<Option<MappingSearchResult>>,
    ),
    String,
> {
    let results = reply
        .get("results")
        .and_then(Value::as_array)
        .ok_or_else(|| "shard reply has no `results` array".to_string())?;
    if results.len() != expected {
        return Err(format!(
            "shard size mismatch: sent {expected} candidates, got {} results",
            results.len()
        ));
    }
    let mut outcomes = Vec::with_capacity(expected);
    for entry in results {
        outcomes.push(match entry {
            Value::Null => None,
            value => {
                let reward = value
                    .get("reward")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| "candidate result has no `reward`".to_string())?;
                let per_network: Vec<NetworkCost> = serde_json::from_value(
                    value
                        .get("per_network")
                        .ok_or_else(|| "candidate result has no `per_network`".to_string())?,
                )
                .map_err(|e| format!("invalid `per_network`: {e}"))?;
                Some((per_network, reward))
            }
        });
    }
    let delta = match reply.get("cache_delta") {
        None | Some(Value::Null) => CacheSnapshot {
            entries: Vec::new(),
        },
        Some(value) => {
            serde_json::from_value(value).map_err(|e| format!("invalid `cache_delta`: {e}"))?
        }
    };
    Ok((outcomes, delta))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_ranges_cover_everything_in_order() {
        for (n, k) in [(20, 4), (7, 3), (3, 5), (1, 2), (0, 3), (16, 1)] {
            let ranges = shard_ranges(n, k);
            let mut covered = 0;
            for r in &ranges {
                assert_eq!(r.start, covered, "contiguous in candidate order");
                covered = r.end;
            }
            assert_eq!(covered, n, "n={n} k={k}");
            assert!(ranges.len() <= k.max(1));
            if n >= k && k > 0 {
                assert_eq!(ranges.len(), k);
                let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
                let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(max - min <= 1, "near-equal shards: {sizes:?}");
            }
        }
    }

    #[test]
    fn shard_reply_parsing_rejects_malformed_replies() {
        let good: Value = serde_json::parse_str(
            r#"{"results": [null, {"reward": 2.5, "per_network": [{"layers": []}]}]}"#,
        )
        .unwrap();
        let (outcomes, delta) = parse_shard_reply(&good, 2).unwrap();
        assert_eq!(outcomes.len(), 2);
        assert!(outcomes[0].is_none());
        assert_eq!(outcomes[1].as_ref().unwrap().1, 2.5);
        assert!(delta.entries.is_empty());

        // Wrong cardinality: a truncated reply must not silently merge.
        assert!(parse_shard_reply(&good, 3)
            .unwrap_err()
            .contains("mismatch"));
        let no_results: Value = serde_json::parse_str(r#"{"ok": true}"#).unwrap();
        assert!(parse_shard_reply(&no_results, 1)
            .unwrap_err()
            .contains("results"));
    }
}
